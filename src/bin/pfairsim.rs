//! `pfairsim` — a command-line front end for the library.
//!
//! ```text
//! pfairsim --m 2 --model dvq --alg pd2 --cost 7/8 --horizon 12 1/6 1/6 1/6 1/2 1/2 1/2
//! pfairsim run --metrics --events trace.jsonl 1/6 1/6 1/6 1/2 1/2 1/2
//! pfairsim fuzz --trials 5000 --seed 1 --threads 4
//! ```
//!
//! Positional arguments are task weights (`e/p`); `run` names the default
//! mode explicitly. Options:
//!
//! * `--m <n>`        processors (default 2)
//! * `--model <x>`    `sfq` | `dvq` | `staggered` | `pdb` (default `sfq`)
//! * `--alg <x>`      `epdf` | `pd2` | `pf` | `pd` (default `pd2`; ignored for `pdb`)
//! * `--cost <r>`     fixed actual cost for every subtask, e.g. `7/8` (default 1)
//! * `--horizon <n>`  generate subtasks while `r < horizon` (default one hyperperiod-ish 24)
//! * `--res <n>`      Gantt cells per slot (default 4)
//! * `--json`         emit the trace bundle as JSON instead of text
//! * `--metrics`      attach the streaming observers and print their summary
//! * `--events <p>`   write the streamed event log to `p` as JSON Lines
//!
//! Exit code 0 always; scheduling outcomes are printed, not judged.
//!
//! The `fuzz` subcommand runs a differential conformance campaign against
//! the reference engines (see `pfair::conformance`) and exits non-zero if
//! any invariant is violated:
//!
//! * `--trials <n>`   number of generated cases (default 1000)
//! * `--seconds <s>`  wall-clock budget; stops early when exceeded
//! * `--seed <s>`     base seed; trial `k` uses seed `s + k` (default 1)
//! * `--threads <t>`  worker threads (default: available parallelism)
//! * `--no-shrink`    report violations without minimizing them

use pfair::conformance::{generate_case, run_campaign, CampaignConfig, Case, GenConfig, REFERENCE};
use pfair::core::Algorithm;
use pfair::prelude::*;

fn parse_rat(s: &str) -> Option<Rat> {
    s.parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: pfairsim [run] [--m N] [--model sfq|dvq|staggered|pdb] [--alg epdf|pd2|pf|pd]\n\
         \u{20}               [--cost R] [--horizon N] [--res N] [--json]\n\
         \u{20}               [--metrics] [--events PATH] WEIGHT [WEIGHT ...]\n\
         \u{20}      pfairsim fuzz [--trials N] [--seconds S] [--seed S] [--threads T] [--no-shrink]\n\
         example: pfairsim --m 2 --model dvq --cost 7/8 1/6 1/6 1/6 1/2 1/2 1/2"
    );
    std::process::exit(2)
}

/// The `fuzz` subcommand: a seeded differential conformance campaign
/// against the reference engines. Exits 1 on any invariant violation,
/// 0 on a clean run, 2 on bad arguments.
fn fuzz(mut args: std::env::Args) -> ! {
    let mut cfg = CampaignConfig {
        trials: 1000,
        base_seed: 1,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        gen: GenConfig::default(),
        time_limit: None,
        shrink: true,
        stop_on_first: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seconds" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--seed" => {
                cfg.base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-shrink" => cfg.shrink = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    println!(
        "fuzz: {} trials from seed {} on {} threads (shrink: {})",
        cfg.trials, cfg.base_seed, cfg.threads, cfg.shrink
    );
    let outcome = run_campaign(&cfg, &REFERENCE);
    println!("ran {} trials", outcome.trials_run);
    // One streamed-metrics line over a fixed sample of the campaign's own
    // seeds: live counters from the observers, not post-hoc analysis.
    let sample = cfg.trials.min(100);
    let (mut quanta, mut misses, mut inversions) = (0u64, 0u64, 0u64);
    let mut max_tardiness = Rat::ZERO;
    for k in 0..sample {
        let spec = generate_case(&cfg.gen, cfg.base_seed + k as u64);
        let Ok(case) = Case::build(spec) else {
            continue;
        };
        let mut obs =
            BlockingObserver::with_inner(&case.sys, &Pd2, MetricsObserver::new(case.spec.m));
        let _ = simulate_dvq_observed(
            &case.sys,
            case.spec.m,
            &Pd2,
            &mut case.cost_model(),
            &mut obs,
        );
        let (records, metrics) = obs.into_parts();
        quanta += metrics.started();
        misses += metrics.deadline_misses();
        if metrics.max_tardiness() > max_tardiness {
            max_tardiness = metrics.max_tardiness();
        }
        inversions += records.len() as u64;
    }
    println!(
        "metrics[dvq, first {sample} seeds]: {quanta} quanta, {misses} deadline misses \
         (max tardiness {max_tardiness}), {inversions} inversions"
    );
    if outcome.clean() {
        println!("no violations");
        std::process::exit(0);
    }
    for v in &outcome.violations {
        println!(
            "violation at seed {}: {} — {}",
            v.seed, v.invariant, v.detail
        );
        let spec = v.shrunk.as_ref().unwrap_or(&v.original);
        match serde_json::to_string(spec) {
            Ok(json) => println!(
                "  {} repro: {json}",
                if v.shrunk.is_some() {
                    "shrunk"
                } else {
                    "original"
                }
            ),
            Err(e) => println!("  (repro serialization failed: {e})"),
        }
        println!("  replay: pfairsim fuzz --seed {} --trials 1", v.seed);
    }
    eprintln!("{} violation(s) found", outcome.violations.len());
    std::process::exit(1)
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next();
    // Peek for the subcommand before falling back to weight parsing.
    let rest: Vec<String> = argv.collect();
    if rest.first().map(String::as_str) == Some("fuzz") {
        let mut args = std::env::args();
        let _ = args.next();
        let _ = args.next();
        fuzz(args);
    }
    let mut m: u32 = 2;
    let mut model = "sfq".to_string();
    let mut alg = Algorithm::Pd2;
    let mut cost = Rat::ONE;
    let mut horizon: i64 = 24;
    let mut res: u32 = 4;
    let mut json = false;
    let mut metrics = false;
    let mut events_path: Option<String> = None;
    let mut weights: Vec<(i64, i64)> = Vec::new();

    // `run` is the optional explicit name of the default mode.
    let skip = 1 + usize::from(rest.first().map(String::as_str) == Some("run"));
    let mut args = std::env::args().skip(skip);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--model" => model = args.next().unwrap_or_else(|| usage()),
            "--alg" => {
                alg = args
                    .next()
                    .and_then(|s| Algorithm::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--cost" => {
                cost = args
                    .next()
                    .and_then(|s| parse_rat(&s))
                    .unwrap_or_else(|| usage())
            }
            "--horizon" => {
                horizon = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--res" => {
                res = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--events" => events_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            w => {
                let r = parse_rat(w).unwrap_or_else(|| usage());
                weights.push((r.num_i64(), r.den_i64()));
            }
        }
    }
    if weights.is_empty() {
        usage();
    }
    for &(e, p) in &weights {
        if Weight::checked(e, p).is_err() {
            eprintln!("invalid weight {e}/{p}: need 0 < e <= p");
            std::process::exit(2);
        }
    }

    let sys = release::periodic(&weights, horizon);
    println!(
        "system: {} tasks, {} subtasks, utilization {} on {} cpus (feasible: {})",
        sys.num_tasks(),
        sys.num_subtasks(),
        sys.utilization(),
        m,
        sys.is_feasible(m)
    );

    let mut costs = ScaledCost(cost);
    let order = alg.order();
    let observe = metrics || events_path.is_some();
    let mut jsonl = JsonlObserver::new();
    let mut tracked = BlockingObserver::with_inner(&sys, order, MetricsObserver::new(m));
    let sched = if observe {
        let mut obs = (&mut tracked, &mut jsonl);
        match model.as_str() {
            "sfq" => simulate_sfq_observed(&sys, m, order, &mut costs, &mut obs),
            "dvq" => simulate_dvq_observed(&sys, m, order, &mut costs, &mut obs),
            "staggered" => simulate_staggered_observed(&sys, m, order, &mut costs, &mut obs),
            "pdb" => simulate_sfq_pdb_observed(&sys, m, &mut costs, &mut obs),
            other => {
                eprintln!("unknown model {other:?}");
                std::process::exit(2);
            }
        }
    } else {
        match model.as_str() {
            "sfq" => simulate_sfq(&sys, m, order, &mut costs),
            "dvq" => simulate_dvq(&sys, m, order, &mut costs),
            "staggered" => simulate_staggered(&sys, m, order, &mut costs),
            "pdb" => simulate_sfq_pdb(&sys, m, &mut costs),
            other => {
                eprintln!("unknown model {other:?}");
                std::process::exit(2);
            }
        }
    };

    if let Some(path) = &events_path {
        if let Err(e) = std::fs::write(path, jsonl.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("events: {} records -> {path}", jsonl.lines().len());
    }
    if metrics {
        let (_, streamed) = tracked.into_parts();
        print!("metrics:\n{}", streamed.summary());
    }
    if json {
        println!("{}", trace_bundle(&sys, &sched).to_json());
        return;
    }

    print!(
        "{}",
        render_gantt(
            &sys,
            &sched,
            &GanttOptions {
                resolution: res,
                horizon: sched.makespan().ceil().max(1),
            }
        )
    );
    println!(
        "model {model}  alg {}  cost {cost}",
        if model == "pdb" {
            "PD^B".to_string()
        } else {
            alg.to_string()
        },
    );
    println!("{}", schedule_report(&sys, &sched, alg.order()));
    for ev in detect_blocking(&sys, &sched, alg.order()) {
        println!(
            "  {:?} blocking: {:?} waited {} (ready {}, scheduled {})",
            ev.kind,
            sys.subtask(ev.victim).id,
            ev.duration(),
            ev.ready_at,
            ev.scheduled_at
        );
    }
}
