//! `pfairsim` — a command-line front end for the library.
//!
//! ```text
//! pfairsim --m 2 --model dvq --alg pd2 --cost 7/8 --horizon 12 1/6 1/6 1/6 1/2 1/2 1/2
//! pfairsim run --metrics --events trace.jsonl 1/6 1/6 1/6 1/2 1/2 1/2
//! pfairsim fuzz --trials 5000 --seed 1 --threads 4
//! ```
//!
//! Positional arguments are task weights (`e/p`); `run` names the default
//! mode explicitly. Options:
//!
//! * `--m <n>`        processors (default 2)
//! * `--model <x>`    `sfq` | `dvq` | `staggered` | `pdb` | `bf` | `flow` (default `sfq`)
//! * `--alg <x>`      `epdf` | `pd2` | `pf` | `pd` (default `pd2`; ignored for
//!   `pdb`, `bf` and `flow`, whose selection procedures are built in)
//! * `--cost <r>`     fixed actual cost for every subtask, e.g. `7/8` (default 1)
//! * `--horizon <n>`  generate subtasks while `r < horizon` (default one hyperperiod-ish 24)
//! * `--res <n>`      Gantt cells per slot (default 4)
//! * `--json`         emit the trace bundle as JSON instead of text
//! * `--metrics`      attach the streaming observers and print their summary
//! * `--events <p>`   write the streamed event log to `p` as JSON Lines
//!
//! Exit code 0 always; scheduling outcomes are printed, not judged.
//!
//! The `fuzz` subcommand runs a differential conformance campaign against
//! the reference engines (see `pfair::conformance`) and exits non-zero if
//! any invariant is violated:
//!
//! * `--trials <n>`     number of generated cases (default 1000)
//! * `--seconds <s>`    wall-clock budget; stops early when exceeded
//! * `--seed <s>`       base seed; trial `k` uses seed `s + k` (default 1)
//! * `--threads <t>`    worker threads (default: available parallelism)
//! * `--no-shrink`      report violations without minimizing them
//! * `--repro-out <p>`  on violation, also write the (shrunk) repro specs
//!   to `p` as a JSON array — what the CI smoke job uploads as an artifact
//!
//! The `serve-sim` subcommand runs the real multi-threaded runtime
//! (`pfair::runtime`): worker threads execute seeded jittered quanta,
//! dispatch rides a flat-combining delegation lock, and every run's
//! recorded event stream is checked against the conformance replay bank
//! before the process exits 0:
//!
//! * `--threads <n>`  worker threads = virtual processors (default 2)
//! * `--runs <k>`     generated workloads to execute (default 25)
//! * `--seed <s>`     base seed; run `k` uses seed `s + k` (default 1)
//! * `--regime <x>`   `none` | `mild` | `adversarial` jitter (default `mild`)
//! * `--mode <x>`     `free` (replay-proven) | `det` (bit-identical to
//!   `OnlineDvq`, additionally cross-checked here) (default `free`)
//! * `--spin <n>`     busy-work iterations per full quantum (default 10000)
//!
//! The `perf` subcommand is a wall-clock ratchet over the keyed DVQ hot
//! path (the bench suite's `dvq_keyed/1000` workload). `--update PATH`
//! writes `bench-baseline.json` for the current machine; `--check PATH`
//! exits 1 if ns/quantum regressed more than 15% over it. With
//! `--runtime` it ratchets the multi-threaded runtime's end-to-end
//! dispatch path instead (2 workers, free-running, separate
//! `bench-runtime-baseline.json`):
//!
//! ```text
//! cargo run --release --bin pfairsim -- perf --update bench-baseline.json
//! cargo run --release --bin pfairsim -- perf --quick --check bench-baseline.json
//! cargo run --release --bin pfairsim -- perf --runtime --quick --check bench-runtime-baseline.json
//! ```

use pfair::conformance::{
    check_runtime_run, generate_case, generate_runtime_case, run_campaign, CampaignConfig, Case,
    GenConfig, REFERENCE,
};
use pfair::core::Algorithm;
use pfair::prelude::*;

fn parse_rat(s: &str) -> Option<Rat> {
    s.parse().ok()
}

/// Boundary-Fair is defined only for synchronous periodic systems; a
/// pointed message beats the engine's assertion when the gate fails.
/// (Every system `pfairsim run` builds today is synchronous periodic, so
/// this is a guard against future release-model flags, not live paths.)
fn require_boundary_periodic(sys: &TaskSystem) {
    if !is_boundary_periodic(sys) {
        eprintln!(
            "--model bf needs a synchronous periodic system (subtasks 1..n, \
             no IS offsets, no early releases); use sfq/dvq/flow for GIS workloads"
        );
        std::process::exit(2);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pfairsim [run] [--m N] [--model sfq|dvq|staggered|pdb|bf|flow] [--alg epdf|pd2|pf|pd]\n\
         \u{20}               [--cost R] [--horizon N] [--res N] [--json]\n\
         \u{20}               [--metrics] [--events PATH] WEIGHT [WEIGHT ...]\n\
         \u{20}      pfairsim fuzz [--trials N] [--seconds S] [--seed S] [--threads T] [--no-shrink]\n\
         \u{20}                    [--repro-out PATH]\n\
         \u{20}      pfairsim serve-sim [--threads N] [--runs K] [--seed S] [--regime none|mild|adversarial]\n\
         \u{20}                         [--mode free|det] [--spin N]\n\
         \u{20}      pfairsim perf [--runtime] (--check PATH | --update PATH) [--quick] [--plant-slowdown F]\n\
         example: pfairsim --m 2 --model dvq --cost 7/8 1/6 1/6 1/6 1/2 1/2 1/2"
    );
    std::process::exit(2)
}

/// The perf ratchet's workload: the bench suite's n = 1000 keyed-PD² DVQ
/// case (`keyed_vs_comparator/dvq_keyed/1000`), bit-for-bit — same weight
/// cycle, same release seed, same stochastic cost model.
fn perf_workload() -> (TaskSystem, u32) {
    let base = [
        (1i64, 2i64),
        (1, 3),
        (2, 5),
        (3, 8),
        (1, 6),
        (5, 12),
        (1, 4),
        (7, 24),
        (2, 3),
        (1, 8),
    ];
    let weights: Vec<Weight> = (0..1000)
        .map(|i| {
            let (e, p) = base[i % base.len()];
            Weight::new(e, p)
        })
        .collect();
    let util: Rat = weights.iter().map(|w| w.as_rat()).sum();
    let m = u32::try_from(util.ceil()).expect("perf workload utilization fits u32");
    let sys = pfair::workload::releasegen::generate(
        &weights,
        &pfair::workload::ReleaseConfig::periodic(24),
        46,
    );
    (sys, m)
}

/// Regression threshold: fail when the measured ns/quantum exceeds the
/// baseline by more than this fraction. Mirrors `lint-baseline.txt`'s
/// ratchet spirit: the baseline may be re-tightened any time with
/// `--update`, but CI never lets it silently regress.
const PERF_TOLERANCE: f64 = 0.15;

/// The bench the default ratchet measures; `--check` refuses a baseline
/// naming anything else (a stale or foreign artifact must not green-light
/// CI).
const PERF_BENCH: &str = "perf/dvq_keyed/1000";

/// The bench the `--runtime` ratchet measures: the multi-threaded
/// runtime's end-to-end dispatch path at 2 workers, free-running.
const PERF_RUNTIME_BENCH: &str = "perf/runtime_free/2t";

/// Reads and validates a `--check` baseline for `bench`. Exits 2 with a
/// pointed, panic-free message on a missing file, invalid JSON, a
/// baseline naming a different bench, or a missing/non-numeric
/// `ns_per_quantum` field.
fn read_baseline(path: &str, bench: &str) -> f64 {
    let regen =
        format!("regenerate with: cargo run --release --bin pfairsim -- perf --update {path}");
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}\n{regen}");
            std::process::exit(2);
        }
    };
    let v = match serde_json::from_str::<serde_json::Value>(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {path} is not valid JSON: {e}\n{regen}");
            std::process::exit(2);
        }
    };
    match v.field("bench") {
        Ok(serde_json::Value::Str(name)) if name == bench => {}
        Ok(serde_json::Value::Str(name)) => {
            eprintln!(
                "baseline {path} is for bench {name:?}; this ratchet measures {bench:?}\n{regen}"
            );
            std::process::exit(2);
        }
        _ => {
            eprintln!("baseline {path} has no `bench` name\n{regen}");
            std::process::exit(2);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let num = match v.field("ns_per_quantum") {
        Ok(&serde_json::Value::Float(x)) => Some(x),
        Ok(&serde_json::Value::Int(n)) => Some(n as f64),
        _ => None,
    };
    num.unwrap_or_else(|| {
        eprintln!("baseline {path} has no numeric `ns_per_quantum` field\n{regen}");
        std::process::exit(2);
    })
}

/// The `perf` subcommand: a quick wall-clock ratchet over the hot keyed
/// DVQ path. `--update PATH` (re)writes the baseline for this machine;
/// `--check PATH` measures and exits 1 if ns/quantum regressed more than
/// 15% over it. `--quick` trims repetitions for CI; `--plant-slowdown F`
/// multiplies the measured time by `F` — a test hook that proves the
/// ratchet actually trips (see EXPERIMENTS.md). Exits 2 on bad args or
/// unreadable baselines.
fn perf(mut args: std::env::Args) -> ! {
    let mut check: Option<String> = None;
    let mut update: Option<String> = None;
    let mut quick = false;
    let mut runtime_path = false;
    let mut plant: f64 = 1.0;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--update" => update = Some(args.next().unwrap_or_else(|| usage())),
            "--quick" => quick = true,
            "--runtime" => runtime_path = true,
            "--plant-slowdown" => {
                plant = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if check.is_none() && update.is_none() {
        usage();
    }
    let bench = if runtime_path {
        PERF_RUNTIME_BENCH
    } else {
        PERF_BENCH
    };

    // Read and validate the baseline BEFORE measuring: a missing, corrupt
    // or mismatched baseline should fail in milliseconds with a pointed
    // message, not after thirty timed repetitions.
    let baseline: Option<f64> = check.as_deref().map(|p| read_baseline(p, bench));

    // Each rep is only a few ms, so even `--quick` can afford a deep
    // min: noise on shared CI hosts easily exceeds the 15% tolerance
    // with too few samples.
    let (warmup, reps) = if quick { (2, 12) } else { (3, 30) };
    let (quanta, best) = if runtime_path {
        // End-to-end runtime dispatch: worker spawn, delegation-lock
        // combining, dispatch passes, join — over a fixed pool of seeded
        // 2-processor workloads. `spin = 0` keeps quanta near-instant so
        // the measurement is dominated by the machinery being ratcheted.
        let cases: Vec<_> = (0..16u64)
            .map(|s| (s, generate_runtime_case(s, 2)))
            .collect();
        let cfg_for = |seed: u64| {
            let mut cfg = RuntimeConfig::new(2);
            cfg.seed = seed;
            cfg.spin = 0;
            cfg
        };
        let quanta: u64 = cases.iter().map(|(_, c)| c.sys.num_subtasks() as u64).sum();
        for _ in 0..warmup {
            for (seed, case) in &cases {
                std::hint::black_box(execute(&case.sys, &case.jobs, &cfg_for(*seed)));
            }
        }
        let mut best = std::time::Duration::MAX;
        for _ in 0..reps {
            let t = std::time::Instant::now();
            for (seed, case) in &cases {
                std::hint::black_box(execute(&case.sys, &case.jobs, &cfg_for(*seed)));
            }
            best = best.min(t.elapsed());
        }
        (quanta, best)
    } else {
        let (sys, m) = perf_workload();
        let quanta = sys.num_subtasks() as u64;
        for _ in 0..warmup {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            std::hint::black_box(simulate_dvq(&sys, m, &Pd2, &mut cost));
        }
        // Minimum over repetitions: the robust statistic on a noisy host —
        // every perturbation only ever adds time.
        let mut best = std::time::Duration::MAX;
        for _ in 0..reps {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            let t = std::time::Instant::now();
            std::hint::black_box(simulate_dvq(&sys, m, &Pd2, &mut cost));
            best = best.min(t.elapsed());
        }
        (quanta, best)
    };
    #[allow(clippy::cast_precision_loss)]
    let ns_per_quantum = best.as_nanos() as f64 / quanta as f64 * plant;
    println!(
        "perf: {} — {quanta} quanta in {best:?} (min of {reps}) \
         = {ns_per_quantum:.1} ns/quantum{}",
        bench.trim_start_matches("perf/"),
        if plant != 1.0 {
            format!(" [planted x{plant}]")
        } else {
            String::new()
        }
    );

    if let Some(path) = update {
        let body = format!(
            "{{\"bench\": \"{bench}\", \"quanta\": {quanta}, \
             \"ns_per_quantum\": {ns_per_quantum:.1}}}\n"
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("baseline written to {path}");
        std::process::exit(0);
    }

    let path = check.expect("checked above: --check or --update is present");
    let baseline = baseline.expect("baseline parsed before measuring");
    let limit = baseline * (1.0 + PERF_TOLERANCE);
    println!(
        "baseline {baseline:.1} ns/quantum, limit {limit:.1} (+{:.0}%)",
        PERF_TOLERANCE * 100.0
    );
    if ns_per_quantum > limit {
        eprintln!(
            "perf regression: {ns_per_quantum:.1} ns/quantum exceeds {limit:.1} \
             ({baseline:.1} +{:.0}%)\n\
             if intentional, regenerate with: \
             cargo run --release --bin pfairsim -- perf --update {path}",
            PERF_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    if ns_per_quantum < baseline * (1.0 - PERF_TOLERANCE) {
        println!(
            "note: {:.0}% faster than baseline — consider re-tightening with \
             `cargo run --release --bin pfairsim -- perf --update {path}`",
            (1.0 - ns_per_quantum / baseline) * 100.0
        );
    }
    println!("perf ratchet ok");
    std::process::exit(0)
}

/// The `fuzz` subcommand: a seeded differential conformance campaign
/// against the reference engines. Exits 1 on any invariant violation,
/// 0 on a clean run, 2 on bad arguments.
fn fuzz(mut args: std::env::Args) -> ! {
    let mut cfg = CampaignConfig {
        trials: 1000,
        base_seed: 1,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        gen: GenConfig::default(),
        time_limit: None,
        shrink: true,
        stop_on_first: false,
    };
    let mut repro_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--repro-out" => repro_out = Some(args.next().unwrap_or_else(|| usage())),
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seconds" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--seed" => {
                cfg.base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-shrink" => cfg.shrink = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    println!(
        "fuzz: {} trials from seed {} on {} threads (shrink: {})",
        cfg.trials, cfg.base_seed, cfg.threads, cfg.shrink
    );
    let outcome = run_campaign(&cfg, &REFERENCE);
    println!("ran {} trials", outcome.trials_run);
    // One streamed-metrics line over a fixed sample of the campaign's own
    // seeds: live counters from the observers, not post-hoc analysis.
    let sample = cfg.trials.min(100);
    let (mut quanta, mut misses, mut inversions) = (0u64, 0u64, 0u64);
    let mut max_tardiness = Rat::ZERO;
    for k in 0..sample {
        let spec = generate_case(&cfg.gen, cfg.base_seed + k as u64);
        let Ok(case) = Case::build(spec) else {
            continue;
        };
        let mut obs =
            BlockingObserver::with_inner(&case.sys, &Pd2, MetricsObserver::new(case.spec.m));
        let _ = simulate_dvq_observed(
            &case.sys,
            case.spec.m,
            &Pd2,
            &mut case.cost_model(),
            &mut obs,
        );
        let (records, metrics) = obs.into_parts();
        quanta += metrics.started();
        misses += metrics.deadline_misses();
        if metrics.max_tardiness() > max_tardiness {
            max_tardiness = metrics.max_tardiness();
        }
        inversions += records.len() as u64;
    }
    println!(
        "metrics[dvq, first {sample} seeds]: {quanta} quanta, {misses} deadline misses \
         (max tardiness {max_tardiness}), {inversions} inversions"
    );
    if outcome.clean() {
        println!("no violations");
        std::process::exit(0);
    }
    for v in &outcome.violations {
        println!(
            "violation at seed {}: {} — {}",
            v.seed, v.invariant, v.detail
        );
        let spec = v.shrunk.as_ref().unwrap_or(&v.original);
        match serde_json::to_string(spec) {
            Ok(json) => println!(
                "  {} repro: {json}",
                if v.shrunk.is_some() {
                    "shrunk"
                } else {
                    "original"
                }
            ),
            Err(e) => println!("  (repro serialization failed: {e})"),
        }
        println!("  replay: pfairsim fuzz --seed {} --trials 1", v.seed);
    }
    if let Some(path) = &repro_out {
        // One JSON array of the minimal repros (shrunk when available) —
        // the artifact CI uploads when the smoke campaign fails.
        let specs: Vec<_> = outcome
            .violations
            .iter()
            .map(|v| v.shrunk.as_ref().unwrap_or(&v.original))
            .collect();
        match serde_json::to_string(&specs) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("cannot write repros to {path}: {e}");
                } else {
                    println!("{} repro(s) written to {path}", specs.len());
                }
            }
            Err(e) => eprintln!("repro serialization failed: {e}"),
        }
    }
    eprintln!("{} violation(s) found", outcome.violations.len());
    std::process::exit(1)
}

/// The `serve-sim` subcommand: execute seeded workloads on real worker
/// threads and prove every run against the conformance replay bank
/// (plus `OnlineDvq` bit-equality in deterministic mode). Exits 1 on any
/// violation or stall, 0 on a clean sweep, 2 on bad arguments.
fn serve_sim(mut args: std::env::Args) -> ! {
    let mut cfg = RuntimeConfig::new(2);
    let mut runs: u64 = 25;
    let mut base_seed: u64 = 1;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cfg.m = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--runs" => {
                runs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--regime" => {
                cfg.regime = match args.next().as_deref() {
                    Some("none") => JitterRegime::None,
                    Some("mild") => JitterRegime::Mild,
                    Some("adversarial") => JitterRegime::Adversarial,
                    _ => usage(),
                };
            }
            "--mode" => {
                cfg.mode = match args.next().as_deref() {
                    Some("free") => Mode::FreeRunning,
                    Some("det") => Mode::Deterministic,
                    _ => usage(),
                };
            }
            "--spin" => {
                cfg.spin = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    println!(
        "serve-sim: {} runs from seed {base_seed} on {} worker thread(s), \
         {:?} jitter, {:?} mode",
        runs, cfg.m, cfg.regime, cfg.mode
    );
    let mut quanta: u64 = 0;
    for k in 0..runs {
        let seed = base_seed + k;
        cfg.seed = seed;
        let case = generate_runtime_case(seed, cfg.m);
        let run = execute(&case.sys, &case.jobs, &cfg);
        quanta += run.log.len() as u64;
        if let Err(f) = check_runtime_run(&case, &cfg, &run) {
            eprintln!("violation at seed {seed}: {} — {}", f.invariant, f.detail);
            eprintln!(
                "replay: pfairsim serve-sim --threads {} --runs 1 --seed {seed} \
                 --regime {} --mode {}",
                cfg.m,
                match cfg.regime {
                    JitterRegime::None => "none",
                    JitterRegime::Mild => "mild",
                    JitterRegime::Adversarial => "adversarial",
                },
                match cfg.mode {
                    Mode::FreeRunning => "free",
                    Mode::Deterministic => "det",
                }
            );
            std::process::exit(1);
        }
    }
    println!(
        "{runs} run(s), {quanta} quanta executed; every event stream replayed \
         clean through the conformance bank"
    );
    std::process::exit(0)
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next();
    // Peek for the subcommand before falling back to weight parsing.
    let rest: Vec<String> = argv.collect();
    if rest.first().map(String::as_str) == Some("fuzz") {
        let mut args = std::env::args();
        let _ = args.next();
        let _ = args.next();
        fuzz(args);
    }
    if rest.first().map(String::as_str) == Some("serve-sim") {
        let mut args = std::env::args();
        let _ = args.next();
        let _ = args.next();
        serve_sim(args);
    }
    if rest.first().map(String::as_str) == Some("perf") {
        let mut args = std::env::args();
        let _ = args.next();
        let _ = args.next();
        perf(args);
    }
    let mut m: u32 = 2;
    let mut model = "sfq".to_string();
    let mut alg = Algorithm::Pd2;
    let mut cost = Rat::ONE;
    let mut horizon: i64 = 24;
    let mut res: u32 = 4;
    let mut json = false;
    let mut metrics = false;
    let mut events_path: Option<String> = None;
    let mut weights: Vec<(i64, i64)> = Vec::new();

    // `run` is the optional explicit name of the default mode.
    let skip = 1 + usize::from(rest.first().map(String::as_str) == Some("run"));
    let mut args = std::env::args().skip(skip);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--model" => model = args.next().unwrap_or_else(|| usage()),
            "--alg" => {
                alg = args
                    .next()
                    .and_then(|s| Algorithm::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--cost" => {
                cost = args
                    .next()
                    .and_then(|s| parse_rat(&s))
                    .unwrap_or_else(|| usage())
            }
            "--horizon" => {
                horizon = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--res" => {
                res = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--events" => events_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            w => {
                let r = parse_rat(w).unwrap_or_else(|| usage());
                weights.push((r.num_i64(), r.den_i64()));
            }
        }
    }
    if weights.is_empty() {
        usage();
    }
    for &(e, p) in &weights {
        if Weight::checked(e, p).is_err() {
            eprintln!("invalid weight {e}/{p}: need 0 < e <= p");
            std::process::exit(2);
        }
    }

    let sys = release::periodic(&weights, horizon);
    println!(
        "system: {} tasks, {} subtasks, utilization {} on {} cpus (feasible: {})",
        sys.num_tasks(),
        sys.num_subtasks(),
        sys.utilization(),
        m,
        sys.is_feasible(m)
    );

    let mut costs = ScaledCost(cost);
    let order = alg.order();
    let observe = metrics || events_path.is_some();
    let mut jsonl = JsonlObserver::new();
    let mut tracked = BlockingObserver::with_inner(&sys, order, MetricsObserver::new(m));
    let sched = if observe {
        let mut obs = (&mut tracked, &mut jsonl);
        match model.as_str() {
            "sfq" => simulate_sfq_observed(&sys, m, order, &mut costs, &mut obs),
            "dvq" => simulate_dvq_observed(&sys, m, order, &mut costs, &mut obs),
            "staggered" => simulate_staggered_observed(&sys, m, order, &mut costs, &mut obs),
            "pdb" => simulate_sfq_pdb_observed(&sys, m, &mut costs, &mut obs),
            "bf" => {
                require_boundary_periodic(&sys);
                simulate_bf_observed(&sys, m, &mut costs, &mut obs)
            }
            "flow" => simulate_flow_observed(&sys, m, &mut costs, &mut obs),
            other => {
                eprintln!("unknown model {other:?}");
                std::process::exit(2);
            }
        }
    } else {
        match model.as_str() {
            "sfq" => simulate_sfq(&sys, m, order, &mut costs),
            "dvq" => simulate_dvq(&sys, m, order, &mut costs),
            "staggered" => simulate_staggered(&sys, m, order, &mut costs),
            "pdb" => simulate_sfq_pdb(&sys, m, &mut costs),
            "bf" => {
                require_boundary_periodic(&sys);
                simulate_bf(&sys, m, &mut costs)
            }
            "flow" => simulate_flow(&sys, m, &mut costs),
            other => {
                eprintln!("unknown model {other:?}");
                std::process::exit(2);
            }
        }
    };

    if let Some(path) = &events_path {
        if let Err(e) = std::fs::write(path, jsonl.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("events: {} records -> {path}", jsonl.lines().len());
    }
    if metrics {
        let (_, streamed) = tracked.into_parts();
        print!("metrics:\n{}", streamed.summary());
    }
    if json {
        println!("{}", trace_bundle(&sys, &sched).to_json());
        return;
    }

    print!(
        "{}",
        render_gantt(
            &sys,
            &sched,
            &GanttOptions {
                resolution: res,
                horizon: sched.makespan().ceil().max(1),
            }
        )
    );
    println!(
        "model {model}  alg {}  cost {cost}",
        match model.as_str() {
            "pdb" => "PD^B".to_string(),
            "bf" => "BF".to_string(),
            "flow" => "maxflow".to_string(),
            _ => alg.to_string(),
        },
    );
    println!("{}", schedule_report(&sys, &sched, alg.order()));
    for ev in detect_blocking(&sys, &sched, alg.order()) {
        println!(
            "  {:?} blocking: {:?} waited {} (ready {}, scheduled {})",
            ev.kind,
            sys.subtask(ev.victim).id,
            ev.duration(),
            ev.ready_at,
            ev.scheduled_at
        );
    }
}
