//! `pfairsim` — a command-line front end for the library.
//!
//! ```text
//! pfairsim --m 2 --model dvq --alg pd2 --cost 7/8 --horizon 12 1/6 1/6 1/6 1/2 1/2 1/2
//! pfairsim fuzz --trials 5000 --seed 1 --threads 4
//! ```
//!
//! Positional arguments are task weights (`e/p`); options:
//!
//! * `--m <n>`        processors (default 2)
//! * `--model <x>`    `sfq` | `dvq` | `staggered` | `pdb` (default `sfq`)
//! * `--alg <x>`      `epdf` | `pd2` | `pf` | `pd` (default `pd2`; ignored for `pdb`)
//! * `--cost <r>`     fixed actual cost for every subtask, e.g. `7/8` (default 1)
//! * `--horizon <n>`  generate subtasks while `r < horizon` (default one hyperperiod-ish 24)
//! * `--res <n>`      Gantt cells per slot (default 4)
//! * `--json`         emit the trace bundle as JSON instead of text
//!
//! Exit code 0 always; scheduling outcomes are printed, not judged.
//!
//! The `fuzz` subcommand runs a differential conformance campaign against
//! the reference engines (see `pfair::conformance`) and exits non-zero if
//! any invariant is violated:
//!
//! * `--trials <n>`   number of generated cases (default 1000)
//! * `--seconds <s>`  wall-clock budget; stops early when exceeded
//! * `--seed <s>`     base seed; trial `k` uses seed `s + k` (default 1)
//! * `--threads <t>`  worker threads (default: available parallelism)
//! * `--no-shrink`    report violations without minimizing them

use pfair::conformance::{run_campaign, CampaignConfig, GenConfig, REFERENCE};
use pfair::core::Algorithm;
use pfair::prelude::*;

fn parse_rat(s: &str) -> Option<Rat> {
    s.parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: pfairsim [--m N] [--model sfq|dvq|staggered|pdb] [--alg epdf|pd2|pf|pd]\n\
         \u{20}               [--cost R] [--horizon N] [--res N] [--json] WEIGHT [WEIGHT ...]\n\
         \u{20}      pfairsim fuzz [--trials N] [--seconds S] [--seed S] [--threads T] [--no-shrink]\n\
         example: pfairsim --m 2 --model dvq --cost 7/8 1/6 1/6 1/6 1/2 1/2 1/2"
    );
    std::process::exit(2)
}

/// The `fuzz` subcommand: a seeded differential conformance campaign
/// against the reference engines. Exits 1 on any invariant violation,
/// 0 on a clean run, 2 on bad arguments.
fn fuzz(mut args: std::env::Args) -> ! {
    let mut cfg = CampaignConfig {
        trials: 1000,
        base_seed: 1,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        gen: GenConfig::default(),
        time_limit: None,
        shrink: true,
        stop_on_first: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => {
                cfg.trials = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seconds" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--seed" => {
                cfg.base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-shrink" => cfg.shrink = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    println!(
        "fuzz: {} trials from seed {} on {} threads (shrink: {})",
        cfg.trials, cfg.base_seed, cfg.threads, cfg.shrink
    );
    let outcome = run_campaign(&cfg, &REFERENCE);
    println!("ran {} trials", outcome.trials_run);
    if outcome.clean() {
        println!("no violations");
        std::process::exit(0);
    }
    for v in &outcome.violations {
        println!(
            "violation at seed {}: {} — {}",
            v.seed, v.invariant, v.detail
        );
        let spec = v.shrunk.as_ref().unwrap_or(&v.original);
        match serde_json::to_string(spec) {
            Ok(json) => println!(
                "  {} repro: {json}",
                if v.shrunk.is_some() {
                    "shrunk"
                } else {
                    "original"
                }
            ),
            Err(e) => println!("  (repro serialization failed: {e})"),
        }
        println!("  replay: pfairsim fuzz --seed {} --trials 1", v.seed);
    }
    eprintln!("{} violation(s) found", outcome.violations.len());
    std::process::exit(1)
}

fn main() {
    let mut argv = std::env::args();
    let _ = argv.next();
    // Peek for the subcommand before falling back to weight parsing.
    let rest: Vec<String> = argv.collect();
    if rest.first().map(String::as_str) == Some("fuzz") {
        let mut args = std::env::args();
        let _ = args.next();
        let _ = args.next();
        fuzz(args);
    }
    let mut m: u32 = 2;
    let mut model = "sfq".to_string();
    let mut alg = Algorithm::Pd2;
    let mut cost = Rat::ONE;
    let mut horizon: i64 = 24;
    let mut res: u32 = 4;
    let mut json = false;
    let mut weights: Vec<(i64, i64)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--model" => model = args.next().unwrap_or_else(|| usage()),
            "--alg" => {
                alg = args
                    .next()
                    .and_then(|s| Algorithm::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--cost" => {
                cost = args
                    .next()
                    .and_then(|s| parse_rat(&s))
                    .unwrap_or_else(|| usage())
            }
            "--horizon" => {
                horizon = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--res" => {
                res = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            w => {
                let r = parse_rat(w).unwrap_or_else(|| usage());
                weights.push((r.num(), r.den()));
            }
        }
    }
    if weights.is_empty() {
        usage();
    }
    for &(e, p) in &weights {
        if Weight::checked(e, p).is_err() {
            eprintln!("invalid weight {e}/{p}: need 0 < e <= p");
            std::process::exit(2);
        }
    }

    let sys = release::periodic(&weights, horizon);
    println!(
        "system: {} tasks, {} subtasks, utilization {} on {} cpus (feasible: {})",
        sys.num_tasks(),
        sys.num_subtasks(),
        sys.utilization(),
        m,
        sys.is_feasible(m)
    );

    let mut costs = ScaledCost(cost);
    let sched = match model.as_str() {
        "sfq" => simulate_sfq(&sys, m, alg.order(), &mut costs),
        "dvq" => simulate_dvq(&sys, m, alg.order(), &mut costs),
        "staggered" => simulate_staggered(&sys, m, alg.order(), &mut costs),
        "pdb" => simulate_sfq_pdb(&sys, m, &mut costs),
        other => {
            eprintln!("unknown model {other:?}");
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", trace_bundle(&sys, &sched).to_json());
        return;
    }

    print!(
        "{}",
        render_gantt(
            &sys,
            &sched,
            &GanttOptions {
                resolution: res,
                horizon: sched.makespan().ceil().max(1),
            }
        )
    );
    println!(
        "model {model}  alg {}  cost {cost}",
        if model == "pdb" {
            "PD^B".to_string()
        } else {
            alg.to_string()
        },
    );
    println!("{}", schedule_report(&sys, &sched, alg.order()));
    for ev in detect_blocking(&sys, &sched, alg.order()) {
        println!(
            "  {:?} blocking: {:?} waited {} (ready {}, scheduled {})",
            ev.kind,
            sys.subtask(ev.victim).id,
            ev.duration(),
            ev.ready_at,
            ev.scheduled_at
        );
    }
}
