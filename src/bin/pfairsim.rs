//! `pfairsim` — a command-line front end for the library.
//!
//! ```text
//! pfairsim --m 2 --model dvq --alg pd2 --cost 7/8 --horizon 12 1/6 1/6 1/6 1/2 1/2 1/2
//! ```
//!
//! Positional arguments are task weights (`e/p`); options:
//!
//! * `--m <n>`        processors (default 2)
//! * `--model <x>`    `sfq` | `dvq` | `staggered` | `pdb` (default `sfq`)
//! * `--alg <x>`      `epdf` | `pd2` | `pf` | `pd` (default `pd2`; ignored for `pdb`)
//! * `--cost <r>`     fixed actual cost for every subtask, e.g. `7/8` (default 1)
//! * `--horizon <n>`  generate subtasks while `r < horizon` (default one hyperperiod-ish 24)
//! * `--res <n>`      Gantt cells per slot (default 4)
//! * `--json`         emit the trace bundle as JSON instead of text
//!
//! Exit code 0 always; scheduling outcomes are printed, not judged.

use pfair::core::Algorithm;
use pfair::prelude::*;

fn parse_rat(s: &str) -> Option<Rat> {
    s.parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: pfairsim [--m N] [--model sfq|dvq|staggered|pdb] [--alg epdf|pd2|pf|pd]\n\
         \u{20}               [--cost R] [--horizon N] [--res N] [--json] WEIGHT [WEIGHT ...]\n\
         example: pfairsim --m 2 --model dvq --cost 7/8 1/6 1/6 1/6 1/2 1/2 1/2"
    );
    std::process::exit(2)
}

fn main() {
    let mut m: u32 = 2;
    let mut model = "sfq".to_string();
    let mut alg = Algorithm::Pd2;
    let mut cost = Rat::ONE;
    let mut horizon: i64 = 24;
    let mut res: u32 = 4;
    let mut json = false;
    let mut weights: Vec<(i64, i64)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--model" => model = args.next().unwrap_or_else(|| usage()),
            "--alg" => {
                alg = args
                    .next()
                    .and_then(|s| Algorithm::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--cost" => {
                cost = args
                    .next()
                    .and_then(|s| parse_rat(&s))
                    .unwrap_or_else(|| usage())
            }
            "--horizon" => {
                horizon = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--res" => {
                res = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            w => {
                let r = parse_rat(w).unwrap_or_else(|| usage());
                weights.push((r.num(), r.den()));
            }
        }
    }
    if weights.is_empty() {
        usage();
    }
    for &(e, p) in &weights {
        if Weight::checked(e, p).is_err() {
            eprintln!("invalid weight {e}/{p}: need 0 < e <= p");
            std::process::exit(2);
        }
    }

    let sys = release::periodic(&weights, horizon);
    println!(
        "system: {} tasks, {} subtasks, utilization {} on {} cpus (feasible: {})",
        sys.num_tasks(),
        sys.num_subtasks(),
        sys.utilization(),
        m,
        sys.is_feasible(m)
    );

    let mut costs = ScaledCost(cost);
    let sched = match model.as_str() {
        "sfq" => simulate_sfq(&sys, m, alg.order(), &mut costs),
        "dvq" => simulate_dvq(&sys, m, alg.order(), &mut costs),
        "staggered" => simulate_staggered(&sys, m, alg.order(), &mut costs),
        "pdb" => simulate_sfq_pdb(&sys, m, &mut costs),
        other => {
            eprintln!("unknown model {other:?}");
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", trace_bundle(&sys, &sched).to_json());
        return;
    }

    print!(
        "{}",
        render_gantt(
            &sys,
            &sched,
            &GanttOptions {
                resolution: res,
                horizon: sched.makespan().ceil().max(1),
            }
        )
    );
    println!(
        "model {model}  alg {}  cost {cost}",
        if model == "pdb" {
            "PD^B".to_string()
        } else {
            alg.to_string()
        },
    );
    println!("{}", schedule_report(&sys, &sched, alg.order()));
    for ev in detect_blocking(&sys, &sched, alg.order()) {
        println!(
            "  {:?} blocking: {:?} waited {} (ready {}, scheduled {})",
            ev.kind,
            sys.subtask(ev.victim).id,
            ev.duration(),
            ev.ready_at,
            ev.scheduled_at
        );
    }
}
