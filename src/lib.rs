//! Workspace root: examples and integration tests live here.
//!
//! The library surface is the [`pfair`] umbrella crate, re-exported.
pub use pfair;
