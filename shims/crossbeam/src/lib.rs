//! Offline stand-in for `crossbeam`.
//!
//! Only [`scope`] is provided (the workspace uses scoped threads for
//! experiment sweeps); it delegates to `std::thread::scope`, which has
//! subsumed crossbeam's implementation since Rust 1.63.

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to each spawned
/// thread's closure (crossbeam passes the scope again so spawned threads
/// can spawn).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (unused by
    /// most callers, hence commonly `|_|`).
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reborrowed = Scope { inner: self.inner };
        self.inner.spawn(move || f(&reborrowed));
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; joins
/// them all before returning.
///
/// # Errors
/// Mirrors crossbeam's signature. `std::thread::scope` propagates child
/// panics by resuming them on the calling thread, so the `Err` arm is
/// never constructed here; callers' `.expect(..)` behaves equivalently
/// (the process still dies with the panic payload).
#[allow(clippy::missing_panics_doc)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
