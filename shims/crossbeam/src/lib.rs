//! Offline stand-in for `crossbeam`.
//!
//! [`scope`] delegates to `std::thread::scope`, which has subsumed
//! crossbeam's implementation since Rust 1.63. [`queue::ArrayQueue`]
//! grew with `pfair-runtime`: the delegation lock's per-worker request
//! slots need a bounded MPMC queue. The shim keeps crossbeam's API
//! (`push` hands the value back on a full queue) but backs it with a
//! mutexed ring — the workspace forbids `unsafe`, so the lock-free
//! original is out of reach; FIFO-per-producer and drop behaviour are
//! identical and covered by tests below.

#![forbid(unsafe_code)]

use std::any::Any;

pub mod queue {
    //! Bounded queue subset of `crossbeam-queue`.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        /// Panics if `cap` is zero, matching crossbeam.
        pub fn new(cap: usize) -> ArrayQueue<T> {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Appends `value`; on a full queue the value comes back as
        /// `Err` so the caller can retry or drop it deliberately.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if q.len() == self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Removes and returns the oldest element, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }

        /// `true` when no elements are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The fixed capacity given at construction.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

/// A scope handle passed to [`scope`]'s closure and to each spawned
/// thread's closure (crossbeam passes the scope again so spawned threads
/// can spawn).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (unused by
    /// most callers, hence commonly `|_|`).
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reborrowed = Scope { inner: self.inner };
        self.inner.spawn(move || f(&reborrowed));
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; joins
/// them all before returning.
///
/// # Errors
/// Mirrors crossbeam's signature. `std::thread::scope` propagates child
/// panics by resuming them on the calling thread, so the `Err` arm is
/// never constructed here; callers' `.expect(..)` behaves equivalently
/// (the process still dies with the panic payload).
#[allow(clippy::missing_panics_doc)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop_semantics() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.is_empty());
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3), "full queue hands the value back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = ArrayQueue::<u8>::new(0);
    }

    /// Satellite obligation: FIFO per producer. Each producer pushes a
    /// strictly increasing sequence tagged with its id; consumers drain
    /// concurrently. Whatever the global interleaving, each producer's
    /// items must come out in the order that producer pushed them.
    #[test]
    fn fifo_per_producer_under_contention() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;

        let q = Arc::new(ArrayQueue::new(64));
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));

        std::thread::scope(|s| {
            for producer in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        let mut item = (producer, seq);
                        while let Err(back) = q.push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match q.pop() {
                            Some(item) => local.push(item),
                            None => {
                                let total: usize =
                                    popped.lock().unwrap().iter().map(Vec::len).sum();
                                if total + local.len() >= PRODUCERS * PER_PRODUCER {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped.lock().unwrap().push(local);
                });
            }
        });

        let batches = popped.lock().unwrap();
        let mut all: Vec<(usize, usize)> = batches.iter().flatten().copied().collect();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "no item lost");
        // Per consumer, a producer's items appear in push order; the
        // cross-consumer merge can interleave, so check the multiset and
        // the per-batch monotonicity rather than one global order.
        for batch in batches.iter() {
            let mut last_seq = [None; PRODUCERS];
            for &(producer, seq) in batch {
                if let Some(prev) = last_seq[producer] {
                    assert!(
                        seq > prev,
                        "producer {producer} reordered: {prev} then {seq}"
                    );
                }
                last_seq[producer] = Some(seq);
            }
        }
        all.sort_unstable();
        let expect: Vec<(usize, usize)> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |s| (p, s)))
            .collect();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }

    /// Satellite obligation: drop-safety. Items still queued when the
    /// queue is dropped must themselves be dropped — an `Arc` clone per
    /// item makes leaks visible as a strong-count residue.
    #[test]
    fn dropping_queue_drops_queued_items() {
        let tracker = Arc::new(AtomicUsize::new(0));
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let q = ArrayQueue::new(8);
        for _ in 0..5 {
            assert!(q.push(Tracked(Arc::clone(&tracker))).is_ok());
        }
        drop(q.pop());
        assert_eq!(tracker.load(Ordering::SeqCst), 1);
        drop(q);
        assert_eq!(tracker.load(Ordering::SeqCst), 5, "queued items leaked");
        assert_eq!(Arc::strong_count(&tracker), 1);
    }
}
