//! Offline stand-in for `serde`.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the real `serde` cannot be vendored. This shim provides the
//! subset the workspace uses — `#[derive(Serialize, Deserialize)]` on plain
//! structs, newtype structs, and fieldless enums, plus manual impls — over a
//! simple self-describing [`Value`] tree instead of serde's visitor
//! machinery. `serde_json` (the sibling shim) renders and parses that tree.
//!
//! The JSON data model matches what the real serde+serde_json pair would
//! produce for the shapes used here: structs as objects, newtypes as their
//! inner value, unit enum variants as strings, tuples and `Vec`s as arrays,
//! `Option` as `null`/value.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error support (`serde::de` in the real crate).
pub mod de {
    use core::fmt;

    /// A deserialization error: a plain message.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// Builds an error from any displayable message (mirrors
        /// `serde::de::Error::custom`).
        pub fn custom<T: fmt::Display>(msg: T) -> Error {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (`None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (all of Rust's fixed-width integers fit in `i128`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, tuple, multi-field tuple struct).
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order (named-field struct).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    ///
    /// # Errors
    /// If `self` is not a map or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, de::Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| de::Error::custom(format!("missing field `{name}`"))),
            other => Err(de::Error::custom(format!(
                "expected a map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a sequence.
    ///
    /// # Errors
    /// If `self` is not a sequence.
    pub fn as_seq(&self) -> Result<&[Value], de::Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(de::Error::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an integer.
    ///
    /// # Errors
    /// If `self` is not an integer.
    pub fn as_int(&self) -> Result<i128, de::Error> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(de::Error::custom(format!(
                "expected an integer, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    /// If `self` is not a string.
    pub fn as_str(&self) -> Result<&str, de::Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value.
    ///
    /// # Errors
    /// [`de::Error`] on shape or range mismatches.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i128::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, de::Error> {
                let n = v.as_int()?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<usize, de::Error> {
        let n = v.as_int()?;
        usize::try_from(n)
            .map_err(|_| de::Error::custom(format!("integer {n} out of range for usize")))
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<i128, de::Error> {
        v.as_int()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, de::Error> {
        match v {
            Value::Float(x) => Ok(*x),
            // Integral JSON numbers parse as Int; accept them here.
            Value::Int(n) => Ok(*n as f64),
            other => Err(de::Error::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, de::Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, de::Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let items = v.as_seq()?;
                let want = [$(stringify!($idx)),+].len();
                if items.len() != want {
                    return Err(de::Error::custom(format!(
                        "expected a tuple of {want}, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
