//! Offline stand-in for `rand` 0.8.
//!
//! Deterministic, seedable pseudo-randomness for workload generation. The
//! workspace only ever uses `StdRng::seed_from_u64` plus
//! `Rng::gen_range`/`Rng::gen_bool`, so that is the whole surface. The
//! generator is splitmix64 — statistically fine for sampling task
//! parameters; the *stream differs* from the real crate's ChaCha-based
//! `StdRng`, so seeds do not reproduce upstream streams (nothing in the
//! workspace depends on that — all golden values are derived from this
//! crate's own output).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core uniform-bits source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (splitmix64 in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Ranges a value can be drawn from uniformly (subset of
/// `rand::distributions::uniform::SampleRange`). Generic over the element
/// type (rather than an associated type) so integer-literal inference flows
/// from the call site, as with the real crate.
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, as the real implementation does.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}
