//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure in a warmup pass, then measures enough
//! batches to estimate a stable mean, and prints `name ... time: <mean>`
//! lines. No statistical machinery (outlier rejection, plots, HTML
//! report) — just wall-clock means, which is enough for the relative
//! comparisons this repo reports. If the `CRITERION_SHIM_OUT` environment
//! variable names a file, every measurement is appended to it as one JSON
//! object per line (`{"bench": .., "ns_per_iter": .., "throughput_elems": ..}`)
//! so scripts can collect machine-readable results.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Throughput annotation attached to a group; folded into reported rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ~25ms.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(25) || n >= 1 << 20 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n = n.saturating_mul(4);
        };
        // Measurement: three batches at the calibrated count, keep the best
        // (least-interfered) batch mean.
        let mut best = per_iter;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let mean = start.elapsed().as_nanos() as f64 / n as f64;
            if mean < best {
                best = mean;
            }
        }
        self.ns_per_iter = best;
    }
}

/// Mirrors criterion's CLI: bare (non-flag) arguments are substring
/// filters; a benchmark runs when no filter is given or any filter
/// matches its full `group/id` name.
fn filtered_out(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str()))
}

fn record(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(e)) => {
            let per_sec = e as f64 * 1e9 / ns_per_iter;
            format!(" thrpt: {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(b)) => {
            let per_sec = b as f64 * 1e9 / ns_per_iter;
            format!(" thrpt: {per_sec:.0} B/s")
        }
        None => String::new(),
    };
    println!("{name:<48} time: {ns_per_iter:.0} ns/iter{rate}");
    if let Ok(path) = std::env::var("CRITERION_SHIM_OUT") {
        if !path.is_empty() {
            let elems = match throughput {
                Some(Throughput::Elements(e)) => e.to_string(),
                _ => "null".to_string(),
            };
            let line = format!(
                "{{\"bench\": \"{name}\", \"ns_per_iter\": {ns_per_iter:.1}, \"throughput_elems\": {elems}}}\n"
            );
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; the shim
    /// auto-calibrates instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        if filtered_out(&name) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        record(&name, b.ns_per_iter, self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        if filtered_out(&name) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        record(&name, b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op beyond dropping).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let name = id.to_string();
        if filtered_out(&name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        record(&name, b.ns_per_iter, None);
    }
}

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (bare CLI args act as substring
/// filters, flags are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
