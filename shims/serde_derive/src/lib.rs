//! Derive macros for the offline `serde` shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build environment has
//! no registry access). Supports exactly the shapes this workspace derives
//! on: structs with named fields, tuple structs, and fieldless enums, all
//! without generic parameters. Anything else is a compile error with a
//! pointed message rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (Value-based; see the `serde` shim crate).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))",
                        name = item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (Value-based; see the `serde` shim crate).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", "),
                name = item.name
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))",
            name = item.name
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_seq()?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))",
                name = item.name,
                inits = inits.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v})",
                        name = item.name
                    )
                })
                .collect();
            format!(
                "match v.as_str()? {{\n\
                     {arms},\n\
                     other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}",
                arms = arms.join(",\n"),
                name = item.name
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

enum Shape {
    /// Field names, in declaration order.
    NamedStruct(Vec<String>),
    /// Field count.
    TupleStruct(usize),
    /// Variant names, in declaration order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Leading attributes (#[...], doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected a type name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        other => panic!("serde_derive shim: unsupported item shape for `{name}`: {other:?}"),
    };
    Item { name, shape }
}

/// Field names of a named-field struct body: skip attributes and
/// visibility, take the ident before `:`, then skip the type (tracking `<`
/// `>` depth so commas inside generics don't split fields — parenthesized
/// and bracketed types arrive as single groups already).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde_derive shim: expected a field name, found {tree:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        for tree in tokens.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("serde_derive shim: expected a variant name in `{name}`, found {tree:?}");
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "serde_derive shim: enum `{name}` has a non-unit variant \
                 `{variant}` ({other:?}); only fieldless enums are supported"
            ),
        }
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0usize;
    let mut saw_tokens = false;
    for tree in body {
        saw_tokens = true;
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // N-1 commas for N fields, unless there is a trailing comma; a lone
    // trailing comma after the last field is rare in practice — handle it
    // by never counting an empty trailing segment.
    if saw_tokens {
        count + 1
    } else {
        0
    }
}
