//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; a poisoned std lock — only
//! possible after another thread panicked — propagates the inner value).
//! The subset grew with `pfair-runtime`: the delegation lock needs
//! `try_lock` (combiner election) and `Condvar` (worker mailboxes), so
//! the guard is now a local type that `Condvar::wait` can temporarily
//! take apart without `unsafe`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`]
/// can move it into `std::sync::Condvar::wait` and put the re-acquired
/// guard back — all in safe code. The slot is `None` only inside that
/// window, never observably from outside.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        ))
    }

    /// Acquires the lock only if it is free right now.
    ///
    /// `None` means another thread holds it — parking_lot returns an
    /// `Option`, not std's poison-carrying `Result`.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> MutexGuard<'_, T> {
    fn inner(&self) -> &std::sync::MutexGuard<'_, T> {
        self.0
            .as_ref()
            .expect("guard invariant: slot is only empty inside Condvar::wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard invariant: slot is only empty inside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.inner(), f)
    }
}

/// Result of a [`Condvar::wait_for`]: did the wait hit its timeout?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed rather
    /// than because of a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's guard-in-place API: `wait`
/// takes `&mut MutexGuard` instead of consuming and returning it.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning. Spurious wakeups are
    /// possible — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .0
            .take()
            .expect("guard invariant: slot is only empty inside Condvar::wait");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`; the lock is
    /// re-acquired before returning either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard
            .0
            .take()
            .expect("guard invariant: slot is only empty inside Condvar::wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter, if any.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_try_lock_into_inner_roundtrip() {
        let m = Mutex::new(7_i64);
        {
            let mut g = m.lock();
            *g += 1;
            assert_eq!(*g, 8);
            assert!(m.try_lock().is_none(), "lock is held, try_lock must fail");
            assert_eq!(format!("{g:?}"), "8");
        }
        {
            let g = m.try_lock().expect("lock is free, try_lock must succeed");
            assert_eq!(*g, 8);
        }
        assert_eq!(m.into_inner(), 8);
    }

    /// Satellite obligation: no lost wakeups. N consumers block on the
    /// condvar; one producer pushes N·K items with a `notify_one` per
    /// item. Every item must be consumed well within the watchdog
    /// timeout — a lost wakeup would strand a consumer and trip the
    /// `timed_out` assertion instead of hanging the test binary.
    #[test]
    fn condvar_no_lost_wakeup_under_contention() {
        const CONSUMERS: usize = 8;
        const ITEMS_PER_CONSUMER: usize = 200;
        const TOTAL: usize = CONSUMERS * ITEMS_PER_CONSUMER;

        let queue = Arc::new(Mutex::new(VecDeque::new()));
        let ready = Arc::new(Condvar::new());
        let consumed = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for _ in 0..CONSUMERS {
                let queue = Arc::clone(&queue);
                let ready = Arc::clone(&ready);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    for _ in 0..ITEMS_PER_CONSUMER {
                        let mut q = queue.lock();
                        while q.is_empty() {
                            let res = ready.wait_for(&mut q, Duration::from_secs(20));
                            assert!(!res.timed_out(), "consumer starved: wakeup lost");
                        }
                        let item: usize = q.pop_front().expect("queue non-empty after wait");
                        assert!(item < TOTAL);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            s.spawn(|| {
                for item in 0..TOTAL {
                    queue.lock().push_back(item);
                    ready.notify_one();
                }
            });
        });

        assert_eq!(consumed.load(Ordering::SeqCst), TOTAL);
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_all_releases_every_waiter() {
        const WAITERS: usize = 4;
        let gate = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let woke = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for _ in 0..WAITERS {
                let gate = Arc::clone(&gate);
                let cv = Arc::clone(&cv);
                let woke = Arc::clone(&woke);
                s.spawn(move || {
                    let mut open = gate.lock();
                    while !*open {
                        let res = cv.wait_for(&mut open, Duration::from_secs(20));
                        assert!(!res.timed_out(), "broadcast never arrived");
                    }
                    woke.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.spawn(|| {
                // Let the waiters reach the condvar first (best-effort;
                // the predicate loop keeps this correct regardless).
                std::thread::sleep(Duration::from_millis(5));
                *gate.lock() = true;
                cv.notify_all();
            });
        });

        assert_eq!(woke.load(Ordering::SeqCst), WAITERS);
    }
}
