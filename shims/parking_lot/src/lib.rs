//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; a poisoned std lock — only
//! possible after another thread panicked — propagates that panic).

#![forbid(unsafe_code)]

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
