//! Offline stand-in for `proptest`.
//!
//! Deterministic random-input property testing. Supports the subset the
//! workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(..)]`), integer range strategies, tuple strategies,
//! `prop_map`, `collection::vec`, `Just`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Differences from
//! the real crate: no shrinking (a failing case reports its inputs via the
//! assertion message only), and the input stream is this crate's own
//! deterministic splitmix64 sequence seeded from the test's module path, so
//! every run explores the same cases.
//!
//! A failing case panics with the per-test seed and the draw number that
//! produced it. Setting the `PFAIR_PROPTEST_SEED` environment variable
//! overrides the per-test seed for *every* property test in the run, which
//! replays a reported failure:
//!
//! ```text
//! PFAIR_PROPTEST_SEED=12345 cargo test -p pfair-analysis some_property
//! ```

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Deterministic bit source driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash used to derive a per-test seed from its path.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed a property test should run with: the `PFAIR_PROPTEST_SEED`
/// environment variable when set (and parseable as `u64`), otherwise the
/// test's own path-derived default. A set-but-unparseable value panics
/// rather than silently exploring the wrong cases.
#[must_use]
pub fn resolve_seed(path_default: u64) -> u64 {
    match std::env::var("PFAIR_PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PFAIR_PROPTEST_SEED is not a u64: {s:?}")),
        Err(_) => path_default,
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// A `prop_assert*!` failed; the test fails with this message.
    Fail(String),
}

/// Per-test configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to this strategy's values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::resolve_seed($crate::fnv1a(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            let mut accepted: u32 = 0;
            let mut draws: u32 = 0;
            while accepted < config.cases {
                draws += 1;
                assert!(
                    draws <= config.cases.saturating_mul(64).max(4096),
                    "proptest: too many rejected cases in {} ({} draws for {} accepted)",
                    stringify!($name),
                    draws,
                    accepted,
                );
                let mut rng = $crate::TestRng::new(
                    seed ^ 0xd6e8_feb8_6659_fd93u64.wrapping_mul(u64::from(draws)),
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed (seed {}, draw {}; replay with \
                             PFAIR_PROPTEST_SEED={}): {}",
                            accepted + 1,
                            stringify!($name),
                            seed,
                            draws,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Rejects the current case (it is re-drawn and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property; failure reports the condition (plus an
/// optional formatted message) and the case inputs are not shrunk.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}\n  both: {:?}",
                ::std::format!($($fmt)+),
                l
            )));
        }
    }};
}
