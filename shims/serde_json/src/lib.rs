//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` shim's [`Value`] tree to JSON text and parses it
//! back. Output formatting matches real `serde_json` for the shapes the
//! workspace uses: `to_string_pretty` indents by two spaces with `": "`
//! key separators.

#![forbid(unsafe_code)]

use core::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Never fails for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                // Keep a float marker so the value round-trips as a float.
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_str(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, val) = &entries[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
