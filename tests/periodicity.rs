//! Hyperperiod laws: windows and schedules of synchronous periodic
//! systems repeat with period `H = lcm{T.p}`.
//!
//! These are classical facts the paper's §2 presumes ("this pattern
//! repeats for every job", Fig. 1(a)); verifying them end-to-end exercises
//! the window formulas, the generators and the simulators together.

use pfair::prelude::*;
use pfair::taskmodel::hyperperiod::{hyperperiod, subtasks_per_hyperperiod, windows_repeat};

fn two_hyperperiods(weights: &[(i64, i64)]) -> (TaskSystem, i64) {
    let ws: Vec<Weight> = weights.iter().map(|&(e, p)| Weight::new(e, p)).collect();
    let h = pfair::taskmodel::hyperperiod::hyperperiod_of_weights(&ws);
    (release::periodic(weights, 2 * h), h)
}

#[test]
fn window_repetition_across_weights() {
    for &(e, p) in &[
        (3i64, 4i64),
        (1, 2),
        (2, 3),
        (5, 6),
        (1, 6),
        (7, 8),
        (1, 1),
        (5, 12),
    ] {
        let w = Weight::new(e, p);
        assert!(windows_repeat(w, p, 4), "wt {e}/{p}");
        assert!(windows_repeat(w, 2 * p, 2), "wt {e}/{p} at 2p");
    }
}

#[test]
fn subtask_counts_over_two_hyperperiods() {
    let (sys, h) = two_hyperperiods(&[(1, 2), (1, 3), (1, 6)]);
    assert_eq!(h, 6);
    // util = 1 ⇒ 2·H·1 subtasks over two hyperperiods.
    assert_eq!(sys.num_subtasks() as i64, 2 * h);
    for task in sys.tasks() {
        assert_eq!(
            sys.task_subtasks(task.id).len() as i64,
            2 * subtasks_per_hyperperiod(task.weight, h)
        );
    }
}

#[test]
fn pd2_schedule_repeats_with_hyperperiod_full_utilization() {
    let (sys, h) = two_hyperperiods(&[(1, 2), (1, 3), (1, 6), (1, 1)]);
    assert_eq!(sys.utilization(), Rat::int(2));
    let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    // For every subtask scheduled in [0, H), the corresponding subtask one
    // hyperperiod later is scheduled exactly H slots later.
    for task in sys.tasks() {
        let k = subtasks_per_hyperperiod(task.weight, h) as usize;
        let refs: Vec<_> = sys.task_subtask_refs(task.id).collect();
        for i in 0..k {
            let early = sched.start(refs[i]);
            let late = sched.start(refs[i + k]);
            assert_eq!(
                late,
                early + Rat::int(h),
                "task {:?} subtask {}",
                task.id,
                i + 1
            );
        }
    }
}

#[test]
fn pd2_schedule_repeats_with_hyperperiod_partial_utilization() {
    // The law holds below full utilization too: the system returns to its
    // initial state at H.
    let (sys, h) = two_hyperperiods(&[(1, 2), (1, 4)]);
    assert_eq!(sys.utilization(), Rat::new(3, 4));
    let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
    for task in sys.tasks() {
        let k = subtasks_per_hyperperiod(task.weight, h) as usize;
        let refs: Vec<_> = sys.task_subtask_refs(task.id).collect();
        for i in 0..k {
            assert_eq!(sched.start(refs[i + k]), sched.start(refs[i]) + Rat::int(h));
        }
    }
}

#[test]
fn epdf_schedule_also_periodic() {
    let (sys, h) = two_hyperperiods(&[(2, 3), (1, 3), (1, 1)]);
    let sched = simulate_sfq(&sys, 2, &Epdf, &mut FullQuantum);
    for task in sys.tasks() {
        let k = subtasks_per_hyperperiod(task.weight, h) as usize;
        let refs: Vec<_> = sys.task_subtask_refs(task.id).collect();
        for i in 0..k {
            assert_eq!(sched.start(refs[i + k]), sched.start(refs[i]) + Rat::int(h));
        }
    }
}

#[test]
fn hyperperiod_of_generated_system_matches() {
    let (sys, h) = two_hyperperiods(&[(3, 4), (1, 6), (1, 2)]);
    assert_eq!(hyperperiod(&sys), h);
    assert_eq!(h, 12);
}
