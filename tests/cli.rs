//! Integration tests for the `pfairsim` CLI surface that CI leans on:
//! the perf-ratchet `--check` edge cases (a broken baseline must fail in
//! milliseconds with a pointed message and exit 2 — never a panic, never
//! thirty timed repetitions first) and the `fuzz --repro-out` artifact
//! path the smoke job uploads on failure.

use std::process::{Command, Output};

fn pfairsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pfairsim"))
        .args(args)
        .output()
        .expect("pfairsim runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch file path unique to this test binary run.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pfairsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn perf_check_missing_baseline_fails_fast_and_pointed() {
    let out = pfairsim(&[
        "perf",
        "--quick",
        "--check",
        "/nonexistent/bench-baseline.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("cannot read baseline"),
        "pointed message expected, got: {err}"
    );
    assert!(
        err.contains("perf --update"),
        "must tell the user how to regenerate: {err}"
    );
    assert!(!err.contains("panicked"), "no panic: {err}");
    // Fail-fast contract: no measurement output before the error.
    assert!(!stdout(&out).contains("ns/quantum"));
}

#[test]
fn perf_check_corrupt_json_is_reported_not_panicked() {
    let path = scratch("corrupt.json");
    std::fs::write(&path, "{\"bench\": \"perf/dvq_keyed/1000\", ns_per").unwrap();
    let out = pfairsim(&["perf", "--quick", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("not valid JSON"), "got: {err}");
    assert!(!err.contains("panicked"), "no panic: {err}");
}

#[test]
fn perf_check_foreign_bench_name_is_refused() {
    // A stale artifact from some other bench must not green-light the
    // ratchet just because it happens to carry a plausible number.
    let path = scratch("foreign.json");
    std::fs::write(
        &path,
        "{\"bench\": \"perf/other_engine/9\", \"ns_per_quantum\": 1.0}\n",
    )
    .unwrap();
    let out = pfairsim(&["perf", "--quick", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("perf/other_engine/9") && err.contains("perf/dvq_keyed/1000"),
        "must name both benches: {err}"
    );
}

#[test]
fn perf_check_missing_bench_name_is_refused() {
    let path = scratch("unnamed.json");
    std::fs::write(&path, "{\"ns_per_quantum\": 424.6}\n").unwrap();
    let out = pfairsim(&["perf", "--quick", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no `bench` name"));
}

#[test]
fn perf_check_non_numeric_ns_field_is_refused() {
    let path = scratch("nonnumeric.json");
    std::fs::write(
        &path,
        "{\"bench\": \"perf/dvq_keyed/1000\", \"ns_per_quantum\": \"fast\"}\n",
    )
    .unwrap();
    let out = pfairsim(&["perf", "--quick", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no numeric `ns_per_quantum`"));
}

#[test]
fn perf_update_writes_a_baseline_check_accepts() {
    // Wall-clock round trip: the two measurements can land >15% apart on
    // a noisy single-core host, so allow a few attempts — if the ratchet
    // is actually broken (always rejects its own baseline) every attempt
    // fails identically.
    let path = scratch("roundtrip.json");
    let mut last = String::new();
    for _ in 0..4 {
        let up = pfairsim(&["perf", "--quick", "--update", path.to_str().unwrap()]);
        assert!(up.status.success(), "update failed: {}", stderr(&up));
        let check = pfairsim(&["perf", "--quick", "--check", path.to_str().unwrap()]);
        if check.status.success() {
            assert!(stdout(&check).contains("perf ratchet ok"));
            return;
        }
        last = format!("{} {}", stdout(&check), stderr(&check));
    }
    panic!("self-check failed on every attempt: {last}");
}

#[test]
fn fuzz_clean_run_writes_no_repro_artifact() {
    let path = scratch("clean-repros.json");
    let out = pfairsim(&[
        "fuzz",
        "--trials",
        "25",
        "--seed",
        "1",
        "--threads",
        "1",
        "--repro-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "clean fuzz failed: {}", stderr(&out));
    // The CI artifact step only runs on failure; a clean campaign must not
    // leave a stale file behind for it to pick up.
    assert!(!path.exists(), "repro file written on a clean campaign");
}

#[test]
fn run_rejects_unknown_model_with_usage() {
    let out = pfairsim(&["run", "--m", "2", "--model", "zigzag", "1/2"]);
    assert!(!out.status.success());
}

#[test]
fn run_bf_and_flow_models_meet_deadlines_on_fig2() {
    for model in ["bf", "flow"] {
        let out = pfairsim(&[
            "run", "--m", "2", "--model", model, "1/6", "1/6", "1/6", "1/2", "1/2", "1/2",
        ]);
        assert!(out.status.success(), "{model} run failed: {}", stderr(&out));
        let text = stdout(&out);
        assert!(
            text.contains("misses 0/"),
            "{model} should meet every deadline on fig2: {text}"
        );
    }
}
