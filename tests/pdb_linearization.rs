//! Ablation of PD^B's tie linearization: Table 1 leaves the order between
//! a `DB` subtask and a higher-priority `EB` subtask open during the first
//! `M − p` decisions. The paper's worst case resolves every such tie
//! toward blocking; resolving them benignly (strict PD²) should eliminate
//! the Fig. 2(c) miss entirely — quantifying how much of the one-quantum
//! bound is the *adversary's* doing rather than the partition's.

use pfair::core::pdb::PdbLinearization;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

#[test]
fn benign_linearization_eliminates_the_fig2_miss() {
    let sys = fig2_system();
    let max_blocking = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    let min_blocking =
        simulate_sfq_pdb_with(&sys, 2, &mut FullQuantum, PdbLinearization::MinBlocking);
    assert_eq!(tardiness_stats(&sys, &max_blocking).max, Rat::ONE);
    assert_eq!(tardiness_stats(&sys, &min_blocking).max, Rat::ZERO);
}

#[test]
fn both_linearizations_respect_the_bound() {
    for m in [2u32, 4] {
        for seed in 0..12u64 {
            let ws = random_weights(&TaskGenConfig::full(m, 10), 71_500 + seed);
            let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(20), seed);
            for lin in [PdbLinearization::MaxBlocking, PdbLinearization::MinBlocking] {
                let sched = simulate_sfq_pdb_with(&sys, m, &mut FullQuantum, lin);
                let t = tardiness_stats(&sys, &sched).max;
                assert!(t <= Rat::ONE, "m={m} seed={seed} {lin:?}: {t}");
            }
        }
    }
}

#[test]
fn min_blocking_never_tardier_than_max_blocking() {
    for seed in 0..12u64 {
        let ws = random_weights(&TaskGenConfig::full(4, 10), 72_900 + seed);
        let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(20), seed);
        let max_b = tardiness_stats(
            &sys,
            &simulate_sfq_pdb_with(&sys, 4, &mut FullQuantum, PdbLinearization::MaxBlocking),
        )
        .max;
        let min_b = tardiness_stats(
            &sys,
            &simulate_sfq_pdb_with(&sys, 4, &mut FullQuantum, PdbLinearization::MinBlocking),
        )
        .max;
        assert!(
            min_b <= max_b,
            "seed={seed}: benign {min_b} vs adversarial {max_b}"
        );
    }
}
