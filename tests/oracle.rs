//! Cross-validation of the max-flow schedulability oracle against the
//! PD² simulator — two independent implementations of §2's feasibility
//! claim that must agree.

use std::collections::HashMap;

use pfair::analysis::schedulability::{flow_schedulable, WindowMode};
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn random_feasible(m: u32, seed: u64, horizon: i64) -> TaskSystem {
    let ws = random_weights(&TaskGenConfig::full(m, 10), seed);
    releasegen::generate(&ws, &ReleaseConfig::periodic(horizon), seed)
}

#[test]
fn oracle_and_pd2_agree_on_feasible_systems() {
    for m in [2u32, 3, 4] {
        for seed in 0..12u64 {
            let sys = random_feasible(m, 10_000 + seed, 20);
            let fs = flow_schedulable(&sys, m, WindowMode::PfWindow);
            assert!(
                fs.schedulable,
                "m={m} seed={seed}: oracle rejected a feasible system"
            );
            let sched = simulate_sfq(&sys, m, &Pd2, &mut FullQuantum);
            assert!(
                check_window_containment(&sys, &sched).is_empty(),
                "m={m} seed={seed}: PD² missed on an oracle-accepted system"
            );
        }
    }
}

#[test]
fn oracle_witness_is_a_valid_windowed_schedule() {
    for seed in 0..8u64 {
        let sys = random_feasible(3, 20_000 + seed, 16);
        let fs = flow_schedulable(&sys, 3, WindowMode::PfWindow);
        assert!(fs.schedulable);
        let mut per_slot: HashMap<i64, usize> = HashMap::new();
        let mut per_task_slot: HashMap<(u32, i64), usize> = HashMap::new();
        assert_eq!(fs.assignment.len(), sys.num_subtasks());
        for (st, t) in &fs.assignment {
            let s = sys.subtask(*st);
            assert!(s.release <= *t && *t < s.deadline);
            *per_slot.entry(*t).or_default() += 1;
            *per_task_slot.entry((s.id.task.0, *t)).or_default() += 1;
        }
        assert!(per_slot.values().all(|&k| k <= 3));
        assert!(per_task_slot.values().all(|&k| k == 1));
    }
}

#[test]
fn oracle_rejects_overload_where_pd2_misses() {
    // util = m + 1/2 on m processors: infeasible; both the oracle and the
    // simulator must flag it (on a horizon long enough for the overload to
    // bite).
    for m in [1u32, 2, 3] {
        let mut weights: Vec<(i64, i64)> = vec![(1, 1); m as usize];
        weights.push((1, 2));
        let sys = release::periodic(&weights, 8);
        assert!(sys.utilization() > Rat::int(i64::from(m)));
        let fs = flow_schedulable(&sys, m, WindowMode::PfWindow);
        assert!(!fs.schedulable, "m={m}");
        let sched = simulate_sfq(&sys, m, &Pd2, &mut FullQuantum);
        assert!(!check_window_containment(&sys, &sched).is_empty(), "m={m}");
    }
}

#[test]
fn oracle_accepts_every_k_compliant_system() {
    // The Lemma 6 walk, revalidated by the independent oracle (IS-window
    // mode: k-compliant systems are early-released).
    let sys_b = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );
    let sched_b = simulate_sfq_pdb(&sys_b, 2, &mut FullQuantum);
    let order = ranks(&sched_b);
    for k in 0..=sys_b.num_subtasks() {
        let tau_k = k_compliant_system(&sys_b, &order, k);
        assert!(
            flow_schedulable(&tau_k, 2, WindowMode::PfWindow).schedulable,
            "τ^{k} rejected by oracle"
        );
    }
}

#[test]
fn oracle_handles_gis_drops_and_delays() {
    for seed in 0..8u64 {
        let ws = random_weights(&TaskGenConfig::full(3, 10), 30_000 + seed);
        let sys = releasegen::generate(
            &ws,
            &ReleaseConfig {
                kind: ReleaseKind::Gis,
                horizon: 20,
                delay_percent: 20,
                drop_percent: 10,
                early: 0,
                max_join: 0,
            },
            seed,
        );
        assert!(
            flow_schedulable(&sys, 3, WindowMode::PfWindow).schedulable,
            "seed={seed}"
        );
    }
}
