//! Property-based cross-crate tests: the paper's bounds and the
//! simulators' structural invariants, under proptest-generated workloads.
//!
//! These complement `tests/theorems.rs` (fixed sweeps) by letting proptest
//! explore the input space — weights, release perturbations, cost
//! patterns — and shrink any counterexample it finds.

use proptest::collection::vec;
use proptest::prelude::*;

use pfair::prelude::*;
use pfair::workload::releasegen;

/// Strategy: a feasible weight set for `m` processors (weights e/p with
/// p ≤ 8, total ≤ m).
fn weight_set(m: i64) -> impl Strategy<Value = Vec<Weight>> {
    vec((1i64..=8, 1i64..=8), 1..12).prop_map(move |pairs| {
        let mut total = Rat::ZERO;
        let mut out = Vec::new();
        for (a, b) in pairs {
            let (e, p) = if a <= b { (a, b) } else { (b, a) };
            let w = Weight::new(e, p);
            if total + w.as_rat() <= Rat::int(m) {
                total += w.as_rat();
                out.push(w);
            }
        }
        if out.is_empty() {
            out.push(Weight::new(1, 2));
        }
        out
    })
}

fn periodic_system(weights: &[Weight], horizon: i64) -> TaskSystem {
    let pairs: Vec<(i64, i64)> = weights.iter().map(|w| (w.e(), w.p())).collect();
    release::periodic(&pairs, horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PD² under SFQ misses nothing on any feasible periodic system.
    #[test]
    fn prop_pd2_sfq_optimal(ws in weight_set(3)) {
        let sys = periodic_system(&ws, 16);
        prop_assume!(sys.num_subtasks() > 0);
        let sched = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
        prop_assert!(check_window_containment(&sys, &sched).is_empty());
        prop_assert!(check_structural(&sys, &sched).is_empty());
    }

    /// Theorem 3 as a property: PD² under DVQ has tardiness ≤ 1 on any
    /// feasible system under any (seeded) cost pattern.
    #[test]
    fn prop_pd2_dvq_tardiness_at_most_one(ws in weight_set(3), seed in 0u64..1_000_000, min_num in 1i64..8) {
        let sys = periodic_system(&ws, 16);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(min_num, 8), seed);
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut cost);
        let stats = tardiness_stats(&sys, &sched);
        prop_assert!(stats.max <= Rat::ONE, "tardiness {}", stats.max);
        prop_assert!(check_structural(&sys, &sched).is_empty());
    }

    /// Theorem 2 as a property: PD^B has tardiness ≤ 1.
    #[test]
    fn prop_pdb_tardiness_at_most_one(ws in weight_set(3)) {
        let sys = periodic_system(&ws, 16);
        prop_assume!(sys.num_subtasks() > 0);
        let sched = simulate_sfq_pdb(&sys, 3, &mut FullQuantum);
        let stats = tardiness_stats(&sys, &sched);
        prop_assert!(stats.max <= Rat::ONE, "tardiness {}", stats.max);
    }

    /// The staggered model is structurally sound and its quantum starts
    /// honour the fixed per-processor offsets.
    #[test]
    fn prop_staggered_structure(ws in weight_set(2), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 12);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 2), seed);
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut cost);
        prop_assert!(check_structural(&sys, &sched).is_empty());
        for p in sched.placements() {
            prop_assert_eq!(p.start.fract(), Rat::new(i64::from(p.proc), 2));
        }
    }

    /// DVQ work conservation: whenever a subtask waits past its ready
    /// time, every processor is busy at the moment it became ready.
    #[test]
    fn prop_dvq_work_conserving(ws in weight_set(2), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 12);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 2), seed);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut cost);
        for (st, s) in sys.iter_refs() {
            let ready = match s.pred {
                Some(p) => sched.completion(p).max(Rat::int(s.eligible)),
                None => Rat::int(s.eligible),
            };
            let start = sched.start(st);
            if start > ready {
                // Every processor busy at `ready` (strictly covering it).
                let busy = sched
                    .placements()
                    .iter()
                    .filter(|p| p.start <= ready && p.completion() > ready)
                    .count();
                prop_assert_eq!(busy, 2, "{:?} waited while a processor idled", s.id);
            }
        }
    }

    /// The DVQ completion of every subtask is never later than its SFQ
    /// completion... is NOT a theorem (inversions can delay subtasks), but
    /// the total work and busy time agree across models.
    #[test]
    fn prop_models_agree_on_total_work(ws in weight_set(2), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 12);
        prop_assume!(sys.num_subtasks() > 0);
        let mk = || UniformCost::new(Rat::new(1, 2), seed);
        let sfq = waste_stats(&simulate_sfq(&sys, 2, &Pd2, &mut mk()));
        let dvq = waste_stats(&simulate_dvq(&sys, 2, &Pd2, &mut mk()));
        let stag = waste_stats(&simulate_staggered(&sys, 2, &Pd2, &mut mk()));
        prop_assert_eq!(sfq.busy, dvq.busy);
        prop_assert_eq!(sfq.busy, stag.busy);
        // DVQ reclaims all yield tails.
        prop_assert_eq!(dvq.wasted, Rat::ZERO);
    }

    /// Full costs collapse DVQ onto SFQ decisions.
    #[test]
    fn prop_full_costs_dvq_equals_sfq(ws in weight_set(3)) {
        let sys = periodic_system(&ws, 12);
        prop_assume!(sys.num_subtasks() > 0);
        let dvq = simulate_dvq(&sys, 3, &Pd2, &mut FullQuantum);
        let sfq = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            prop_assert_eq!(dvq.start(st), sfq.start(st));
        }
    }

    /// The Aligned/Olapped/Free classification is exhaustive and the S_B
    /// postponement never moves a quantum by a full slot or more.
    #[test]
    fn prop_classification_exhaustive(ws in weight_set(2), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 12);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 4), seed);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut cost);
        let classes = classify_subtasks(&sched);
        prop_assert_eq!(classes.len(), sys.num_subtasks());
        for (st, postponed) in postpone_charged(&sched) {
            let shift = postponed - sched.start(st);
            prop_assert!(!shift.is_negative() && shift < Rat::ONE);
        }
    }

    /// Right-shifting windows preserves feasibility and utilization.
    #[test]
    fn prop_shift_preserves_feasibility(ws in weight_set(3), k in 1i64..4) {
        let sys = periodic_system(&ws, 12);
        let shifted = sys.shifted(k, k);
        prop_assert_eq!(shifted.utilization(), sys.utilization());
        prop_assert_eq!(shifted.num_subtasks(), sys.num_subtasks());
        prop_assert_eq!(shifted.is_feasible(3), sys.is_feasible(3));
    }

    /// EPDF never beats PD² by more than ties on two processors (both are
    /// optimal there), i.e. EPDF also meets every deadline on M = 2.
    #[test]
    fn prop_epdf_optimal_on_two_processors(ws in weight_set(2)) {
        let sys = periodic_system(&ws, 16);
        prop_assume!(sys.num_subtasks() > 0);
        let sched = simulate_sfq(&sys, 2, &Epdf, &mut FullQuantum);
        prop_assert!(check_window_containment(&sys, &sched).is_empty());
    }

    /// Every priority order is a genuine total order: antisymmetric and
    /// transitive on random subtask triples (sorting correctness depends
    /// on this).
    #[test]
    fn prop_priority_orders_transitive(ws in weight_set(3), idx in proptest::collection::vec(0usize..64, 3)) {
        use pfair::core::{Algorithm, Pd2NoBBit, Pd2NoGroupDeadline};
        let sys = periodic_system(&ws, 16);
        let n = sys.num_subtasks();
        prop_assume!(n >= 3);
        let pick = |k: usize| SubtaskRef((idx[k] % n) as u32);
        let (a, b, c) = (pick(0), pick(1), pick(2));
        let mut orders: Vec<&dyn PriorityOrder> = vec![&Pd2NoBBit, &Pd2NoGroupDeadline];
        for alg in Algorithm::all() {
            orders.push(alg.order());
        }
        for ord in orders {
            let ab = ord.cmp(&sys, a, b);
            let ba = ord.cmp(&sys, b, a);
            prop_assert_eq!(ab, ba.reverse(), "{} antisymmetry", ord.name());
            let bc = ord.cmp(&sys, b, c);
            let ac = ord.cmp(&sys, a, c);
            if ab == bc && ab != std::cmp::Ordering::Equal {
                prop_assert_eq!(ac, ab, "{} transitivity", ord.name());
            }
            if a != b {
                prop_assert_ne!(ab, std::cmp::Ordering::Equal, "{} totality", ord.name());
            }
        }
    }

    /// Lemma 4 / Theorem 1's mechanism: the tardiness of a DVQ schedule is
    /// at most the ceiling of the worst tardiness of its Charged subtasks
    /// under the S_B postponement.
    #[test]
    fn prop_lemma4_postponement_bounds_tardiness(ws in weight_set(3), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 14);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 2), seed);
        let dvq = simulate_dvq(&sys, 3, &Pd2, &mut cost);
        let dvq_max = tardiness_stats(&sys, &dvq).max;
        // Tardiness of each Charged subtask in the postponed schedule S_B
        // (same actual costs, commencements moved to ⌈S(T_i)⌉).
        let mut sb_max = Rat::ZERO;
        for (st, postponed) in postpone_charged(&dvq) {
            let s = sys.subtask(st);
            let completion = postponed + dvq.placement(st).cost;
            sb_max = sb_max.max((completion - Rat::int(s.deadline)).max(Rat::ZERO));
        }
        prop_assert!(dvq_max <= Rat::int(sb_max.ceil()),
            "DVQ max {dvq_max} exceeds ⌈S_B max⌉ = {}", sb_max.ceil());
    }

    /// Lemma 5's shape: the S_B postponement never stacks more than M
    /// Charged commencements into one slot, and preserves per-task order.
    #[test]
    fn prop_postponement_respects_capacity(ws in weight_set(2), seed in 0u64..100_000) {
        let sys = periodic_system(&ws, 14);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 2), seed);
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut cost);
        let postponed = postpone_charged(&dvq);
        let mut per_slot: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        let mut per_task_last: std::collections::HashMap<u32, Rat> = std::collections::HashMap::new();
        for (st, start) in &postponed {
            *per_slot.entry(start.floor()).or_default() += 1;
            let task = sys.subtask(*st).id.task.0;
            if let Some(prev) = per_task_last.get(&task) {
                prop_assert!(start >= prev, "per-task order broken");
            }
            per_task_last.insert(task, *start);
        }
        for (&slot, &k) in &per_slot {
            prop_assert!(k <= 2, "slot {slot} holds {k} > M postponed commencements");
        }
    }

    /// Theorem 3 over proptest-driven **GIS** systems (delays + drops +
    /// joins), not just periodic ones.
    #[test]
    fn prop_pd2_dvq_bound_on_gis(ws in weight_set(3), seed in 0u64..100_000,
                                 delay in 0u8..30, drop in 0u8..20, join in 0i64..6) {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon: 14,
            delay_percent: delay,
            drop_percent: drop,
            early: 0,
            max_join: join,
        };
        let sys = releasegen::generate(&ws, &cfg, seed);
        prop_assume!(sys.num_subtasks() > 0);
        let mut cost = UniformCost::new(Rat::new(1, 2), seed);
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut cost);
        prop_assert!(tardiness_stats(&sys, &sched).max <= Rat::ONE);
        prop_assert!(check_structural(&sys, &sched).is_empty());
    }

    /// PD² optimality over proptest-driven GIS systems under SFQ.
    #[test]
    fn prop_pd2_sfq_optimal_on_gis(ws in weight_set(3), seed in 0u64..100_000,
                                   delay in 0u8..30, drop in 0u8..20) {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon: 14,
            delay_percent: delay,
            drop_percent: drop,
            early: 0,
            max_join: 0,
        };
        let sys = releasegen::generate(&ws, &cfg, seed);
        prop_assume!(sys.num_subtasks() > 0);
        let sched = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
        prop_assert!(check_window_containment(&sys, &sched).is_empty());
    }

    /// Demand-bound analysis never produces a witness on a feasible
    /// system, and any witness it does produce is confirmed infeasible by
    /// the exact oracle.
    #[test]
    fn prop_demand_consistent_with_oracle(ws in weight_set(3), extra in 0usize..3) {
        use pfair::analysis::schedulability::{flow_schedulable, WindowMode};
        // Sometimes overload deliberately by adding weight-1 tasks.
        let mut pairs: Vec<(i64, i64)> = ws.iter().map(|w| (w.e(), w.p())).collect();
        for _ in 0..extra {
            pairs.push((1, 1));
        }
        let sys = release::periodic(&pairs, 10);
        prop_assume!(sys.num_subtasks() > 0);
        let witness = find_overload(&sys, 3);
        let exact = flow_schedulable(&sys, 3, WindowMode::PfWindow).schedulable;
        if let Some(w) = witness {
            prop_assert!(w.demand > w.supply);
            prop_assert!(!exact, "witness {w:?} on an oracle-accepted system");
        }
        if sys.is_feasible(3) {
            prop_assert!(witness.is_none());
        }
    }

    /// The max-flow oracle accepts every feasible periodic system and its
    /// witness respects windows (cross-check against the simulator's
    /// input universe rather than fixed seeds).
    #[test]
    fn prop_oracle_accepts_feasible(ws in weight_set(3)) {
        use pfair::analysis::schedulability::{flow_schedulable, WindowMode};
        let sys = periodic_system(&ws, 14);
        prop_assume!(sys.num_subtasks() > 0);
        let fs = flow_schedulable(&sys, 3, WindowMode::PfWindow);
        prop_assert!(fs.schedulable);
        for (st, t) in &fs.assignment {
            let s = sys.subtask(*st);
            prop_assert!(s.release <= *t && *t < s.deadline);
        }
    }
}
