//! Stress tests: larger machines, longer horizons, extreme weights —
//! every invariant must hold at scale, not just on toy instances.

use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen, AdversarialYield};

#[test]
fn sixteen_processors_long_horizon() {
    let ws = random_weights(&TaskGenConfig::full(16, 12), 123);
    let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(60), 123);
    assert!(sys.num_subtasks() > 500, "want a heavyweight instance");
    let mut cost = AdversarialYield::new(Rat::new(1, 256), 60, 9);
    let sched = simulate_dvq(&sys, 16, &Pd2, &mut cost);
    let stats = tardiness_stats(&sys, &sched);
    assert!(stats.max <= Rat::ONE, "tardiness {}", stats.max);
    assert!(check_structural(&sys, &sched).is_empty());
}

#[test]
fn extreme_weights_mix() {
    // Near-1 heavies next to near-0 lights: window math at both ends.
    let sys = release::periodic(
        &[(99, 100), (97, 100), (1, 100), (1, 100), (1, 100), (1, 1)],
        100,
    );
    assert!(sys.is_feasible(3));
    let sched = simulate_sfq(&sys, 3, &Pd2, &mut FullQuantum);
    assert!(check_window_containment(&sys, &sched).is_empty());
    let mut half = ScaledCost(Rat::new(1, 2));
    let dvq = simulate_dvq(&sys, 3, &Pd2, &mut half);
    assert!(tardiness_stats(&sys, &dvq).max <= Rat::ONE);
}

#[test]
fn window_formulas_survive_lcm_scale_weights() {
    // Exact-fill remainders can carry lcm-scale reduced periods; the
    // window formulas must not overflow silently (they compute in i128).
    let w = Weight::new(2_184_060_317_093, 16_044_839_210_400);
    // Far past the old i64 overflow point:
    let i = 600_000u64;
    let r = pfair::taskmodel::window::release(w, i);
    let d = pfair::taskmodel::window::deadline(w, i);
    assert!(r > 0 && d > r);
    // Monotonicity holds out there too.
    assert!(pfair::taskmodel::window::release(w, i + 1) >= r);
    assert!(pfair::taskmodel::window::deadline(w, i + 1) >= d);
}

#[test]
fn deep_subtask_indices() {
    // A weight-1 task ground through 10⁵ subtasks: sequential chain, no
    // drift, constant-time per-subtask bookkeeping.
    let sys = release::periodic(&[(1, 1)], 20_000);
    let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
    assert_eq!(sched.placements().len(), 20_000);
    assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ZERO);
}

#[test]
fn two_thousand_tasks_dvq_full_utilization_adversarial_yields() {
    // A fully-utilized 640-processor machine packed with ~2000+ light
    // tasks, every subtask yielding δ early with 60% probability: the
    // largest DVQ instance in the suite. Theorem 3's tardiness bound and
    // exact allocation conservation must both survive the scale.
    let cfg = TaskGenConfig {
        target_util: Rat::int(640),
        max_period: 12,
        dist: WeightDist::Light,
        fill_exact: true,
    };
    let ws = random_weights(&cfg, 20_260_806);
    let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(12), 20_260_806);
    assert!(sys.num_tasks() >= 2000, "only {} tasks", sys.num_tasks());
    assert!(sys.is_feasible(640));

    // Materialize the stochastic yields up front so the exact per-subtask
    // costs are known for the conservation check afterwards.
    let mut adversarial = AdversarialYield::new(Rat::new(1, 16), 60, 0xFEED);
    let mut fixed = FixedCosts::new(Rat::ONE);
    for (st, s) in sys.iter_refs() {
        fixed = fixed.with(s.id.task, s.id.index, adversarial.cost(&sys, st));
    }
    let mut costs = fixed.clone();
    let sched = simulate_dvq(&sys, 640, &Pd2, &mut costs);

    let stats = tardiness_stats(&sys, &sched);
    assert!(stats.max <= Rat::ONE, "Theorem 3 violated: {}", stats.max);
    for (st, _) in sys.iter_refs() {
        let pl = sched.placement(st);
        assert_eq!(pl.cost, fixed.cost(&sys, st), "allocation not conserved");
    }
    assert!(check_structural(&sys, &sched).is_empty());
}

#[test]
fn online_scheduler_scales() {
    let mut s = OnlineDvq::new(8);
    let ws = random_weights(&TaskGenConfig::full(8, 10), 321);
    let ids: Vec<TaskId> = ws.iter().map(|&w| s.add_task(w)).collect();
    for (&t, &w) in ids.iter().zip(&ws) {
        for j in 0..20 {
            s.submit_job(t, j * w.p()).unwrap();
        }
    }
    let log = s.run_until_idle(&mut |_, _| Rat::new(63, 64));
    // Every submitted job must be fully allocated: Σ jobs × e per task.
    let expected: u64 = ws.iter().map(|w| 20 * w.e() as u64).sum();
    assert_eq!(log.len() as u64, expected);
    for a in &log {
        let t = (a.start + a.cost - Rat::int(a.deadline)).max(Rat::ZERO);
        assert!(t <= Rat::ONE);
    }
}
