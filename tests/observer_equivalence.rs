//! Differential equivalence of the streaming observers and the post-hoc
//! analyses: over hundreds of seeded random task systems (periodic,
//! sporadic, intra-sporadic and GIS releases alike), under both
//! simulators and several actual-cost regimes, the metrics produced
//! *during* the run by [`LagObserver`], [`MetricsObserver`] and
//! [`BlockingObserver`] must agree — by exact rational equality, never a
//! tolerance — with `pfair-analysis` recomputing the same quantities from
//! the finished [`Schedule`].
//!
//! The broad sweeps run small-denominator (≤ 8) cost regimes; a dedicated
//! regression drives the GRID-resolution (denominator 720720) cost model
//! whose lag sums exceeded the old i64-backed `Rat` outright — the
//! i128-backed `Rat` now carries them exactly, so the same rational
//! equality holds with no representability carve-out anywhere.

use pfair::analysis::{max_lag_over_slots, tardiness_histogram, total_lag};
use pfair::conformance::{generate_case, Case, GenConfig};
use pfair::obs::DEFAULT_BUCKETS;
use pfair::prelude::*;

/// Seeded systems per engine sweep. Together with three cost regimes each
/// this crosses well over the 500-system floor the suite promises.
const SYSTEMS: u64 = 600;

/// The actual-cost regimes each system runs under. All denominators are
/// ≤ 8, keeping exact lag arithmetic far from `Rat` overflow.
fn regimes(seed: u64) -> Vec<(&'static str, Box<dyn CostModel>)> {
    vec![
        ("full-quantum", Box::new(FullQuantum)),
        ("scaled-5/8", Box::new(ScaledCost(Rat::new(5, 8)))),
        (
            "adversarial-1/8",
            Box::new(AdversarialYield::new(
                Rat::new(1, 8),
                60,
                seed ^ 0x0b5e_711e,
            )),
        ),
    ]
}

fn system_for(seed: u64) -> (TaskSystem, u32) {
    let spec = generate_case(&GenConfig::default(), seed);
    let m = spec.m;
    (Case::build(spec).expect("generated spec builds").sys, m)
}

/// Checks every streaming-vs-post-hoc relation for one finished run.
fn assert_run_agrees(
    ctx: &str,
    sys: &TaskSystem,
    sched: &Schedule,
    mut lag: LagObserver,
    metrics: &MetricsObserver,
    blocking: Option<Vec<BlockingRecord>>,
) {
    let h = sys.horizon();
    lag.finish(h);
    assert_eq!(
        lag.series().len(),
        usize::try_from(h + 1).unwrap(),
        "{ctx}: lag series covers slots 0..={h}"
    );
    for &(t, l) in lag.series() {
        assert_eq!(
            l,
            total_lag(sys, sched, Rat::int(t)),
            "{ctx}: streaming LAG at slot {t}"
        );
    }
    assert_eq!(
        lag.max_lag(),
        max_lag_over_slots(sys, sched, h),
        "{ctx}: streaming max LAG"
    );

    let stats = tardiness_stats(sys, sched);
    assert_eq!(
        metrics.deadline_misses(),
        stats.misses as u64,
        "{ctx}: miss count"
    );
    assert_eq!(
        metrics.total_tardiness(),
        stats.total,
        "{ctx}: total tardiness"
    );
    assert_eq!(metrics.max_tardiness(), stats.max, "{ctx}: max tardiness");
    assert_eq!(
        metrics.worst(),
        stats.worst.map(|st| sys.subtask(st).id),
        "{ctx}: worst subtask"
    );
    let want_hist = tardiness_histogram(sys, sched, DEFAULT_BUCKETS);
    let got_hist: Vec<usize> = metrics.histogram().iter().map(|&c| c as usize).collect();
    assert_eq!(got_hist, want_hist, "{ctx}: tardiness histogram");

    if let Some(records) = blocking {
        let posthoc = detect_blocking(sys, sched, &Pd2);
        assert_eq!(
            records.len(),
            posthoc.len(),
            "{ctx}: inversion count (streaming victims {:?}, post-hoc {:?})",
            records.iter().map(|r| r.victim).collect::<Vec<_>>(),
            posthoc.iter().map(|e| e.victim).collect::<Vec<_>>(),
        );
        for (r, e) in records.iter().zip(&posthoc) {
            assert_eq!(r.victim, e.victim, "{ctx}: inversion victim");
            assert_eq!(r.ready_at, e.ready_at, "{ctx}: ready time");
            assert_eq!(r.scheduled_at, e.scheduled_at, "{ctx}: dispatch time");
            assert!(
                matches!(
                    (r.kind, e.kind),
                    (InversionKind::Eligibility, BlockingKind::Eligibility)
                        | (InversionKind::Predecessor, BlockingKind::Predecessor)
                ),
                "{ctx}: inversion kind {:?} vs {:?}",
                r.kind,
                e.kind
            );
            assert_eq!(r.blockers, e.blockers, "{ctx}: blocker set");
        }
    }
}

/// Regression for the former `Rat` overflow: on the generator's
/// GRID-resolution (720720) cost grid, DVQ lag terms `(t − start)/cost`
/// have near-coprime reduced denominators around `GRID · cost_numerator`,
/// and per-slot sums over a few straddling quanta exceed `i64` — the
/// i64-backed `Rat` panicked here, and the conformance invariant carried a
/// `den ≤ 32` carve-out to dodge it. The i128-backed `Rat` must carry the
/// full comparison exactly, and the sweep must actually visit beyond-i64
/// denominators (else this test guards nothing).
#[test]
fn grid_resolution_lag_agrees_exactly_beyond_i64() {
    let mut saw_beyond_i64 = false;
    for seed in 0..60u64 {
        let (sys, m) = system_for(seed);
        let mut cost = UniformCost::new(Rat::new(1, 4), seed ^ 0x9e37);
        let mut lag = LagObserver::new(&sys);
        let sched = simulate_dvq_observed(&sys, m, &Pd2, &mut cost, &mut lag);
        let h = sys.horizon();
        lag.finish(h);
        for &(t, l) in lag.series() {
            assert_eq!(
                l,
                total_lag(&sys, &sched, Rat::int(t)),
                "seed {seed}: streaming LAG at slot {t}"
            );
            saw_beyond_i64 |= l.den() > i128::from(i64::MAX);
        }
        assert_eq!(
            lag.max_lag(),
            max_lag_over_slots(&sys, &sched, h),
            "seed {seed}: streaming max LAG"
        );
    }
    assert!(
        saw_beyond_i64,
        "sweep never produced a lag denominator beyond i64 — the regression lost its witness"
    );
}

#[test]
fn sfq_streaming_observers_match_posthoc_analysis() {
    for seed in 0..SYSTEMS {
        let (sys, m) = system_for(seed);
        for (regime, mut cost) in regimes(seed) {
            let mut obs = (LagObserver::new(&sys), MetricsObserver::new(m));
            let sched = simulate_sfq_observed(&sys, m, &Pd2, cost.as_mut(), &mut obs);
            let (lag, metrics) = obs;
            let ctx = format!("seed {seed} / sfq / {regime}");
            assert_run_agrees(&ctx, &sys, &sched, lag, &metrics, None);
        }
    }
}

#[test]
fn dvq_streaming_observers_match_posthoc_analysis() {
    for seed in 0..SYSTEMS {
        let (sys, m) = system_for(seed);
        for (regime, mut cost) in regimes(seed ^ 0xd5c0) {
            let mut obs = (
                LagObserver::new(&sys),
                (MetricsObserver::new(m), BlockingObserver::new(&sys, &Pd2)),
            );
            let sched = simulate_dvq_observed(&sys, m, &Pd2, cost.as_mut(), &mut obs);
            let (lag, (metrics, blocking)) = obs;
            let (records, _) = blocking.into_parts();
            let ctx = format!("seed {seed} / dvq / {regime}");
            assert_run_agrees(&ctx, &sys, &sched, lag, &metrics, Some(records));
        }
    }
}
