//! Stress sweep for the real multi-threaded runtime.
//!
//! Every combination of worker count × jitter regime × seed is executed
//! twice — once in deterministic mode (proof: bit-equality against the
//! single-threaded `OnlineDvq`) and once free-running (proof: the
//! recorded event stream replays through `slotplay` into the conformance
//! bank clean) — and the three planted concurrency mutants must each be
//! caught by the bank, with the *expected* invariant firing first.
//!
//! Failures print the `(workers, regime, seed)` triple; re-run any single
//! seed across the whole sweep with
//! `PFAIR_PROPTEST_SEED=<seed> cargo test --test runtime_stress`.

use std::time::Duration;

use pfair::conformance::{check_runtime_run, generate_runtime_case, runtime_bank, runtime_mutants};
use pfair::prelude::*;
use proptest::{fnv1a, resolve_seed};

const WORKERS: [u32; 4] = [1, 2, 4, 8];
const REGIMES: [JitterRegime; 3] = [
    JitterRegime::None,
    JitterRegime::Mild,
    JitterRegime::Adversarial,
];
const SEEDS_PER_COMBO: u64 = 50;

/// The sweep's seed list: 50 path-derived seeds, or exactly the one seed
/// pinned by `PFAIR_PROPTEST_SEED` when replaying a failure.
fn sweep_seeds() -> Vec<u64> {
    let base = fnv1a("tests/runtime_stress.rs");
    let pinned = resolve_seed(base);
    if pinned == base {
        (base..base + SEEDS_PER_COMBO).collect()
    } else {
        vec![pinned]
    }
}

fn config(m: u32, regime: JitterRegime, seed: u64, mode: Mode) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(m);
    cfg.seed = seed;
    cfg.regime = regime;
    cfg.mode = mode;
    // Small but nonzero: quanta still burn real CPU proportional to their
    // jittered cost, so free-running completions arrive in roughly
    // physical order, without making 1200 runs take minutes.
    cfg.spin = 64;
    cfg
}

/// The tentpole sweep: 4 worker counts × 3 jitter regimes × 50 seeds,
/// each run executed on real threads in both modes and checked against
/// the full replay bank (deterministic mode additionally proves
/// bit-equality with `OnlineDvq` — 600 equality checks, well past the
/// 200-system floor; the 600 free-running runs all replay clean).
#[test]
fn every_sweep_combination_passes_the_replay_bank_in_both_modes() {
    for &m in &WORKERS {
        for &regime in &REGIMES {
            for &seed in &sweep_seeds() {
                let case = generate_runtime_case(seed, m);
                for mode in [Mode::Deterministic, Mode::FreeRunning] {
                    let cfg = config(m, regime, seed, mode);
                    let run = execute(&case.sys, &case.jobs, &cfg);
                    if let Err(f) = check_runtime_run(&case, &cfg, &run) {
                        panic!(
                            "workers={m} regime={regime:?} seed={seed} mode={mode:?}: \
                             {} fired: {}\n\
                             replay with: PFAIR_PROPTEST_SEED={seed} \
                             cargo test --test runtime_stress",
                            f.invariant, f.detail
                        );
                    }
                }
            }
        }
    }
}

/// The bank's order is load-bearing for the mutation tests below: cheap
/// stream-level checks come before the replay-heavy ones, and the
/// reference-equality check (the only one that re-runs a scheduler) comes
/// last.
#[test]
fn the_replay_bank_is_ordered_cheap_first() {
    let names: Vec<&str> = runtime_bank().iter().map(|inv| inv.name).collect();
    assert_eq!(
        names,
        [
            "replay-completeness",
            "replay-conservation",
            "replay-structural",
            "replay-tardiness",
            "determinism-equality",
        ]
    );
}

/// Every planted concurrency mutant is caught by the replay bank within
/// the stress sweep, and for each the documented invariant is the one
/// that fires first in bank order — three faults, three *different*
/// invariants, proving the checks are independent.
#[test]
fn each_planted_concurrency_mutant_is_caught_by_its_own_invariant() {
    for mutant in runtime_mutants() {
        let mut fired: Vec<(u64, &'static str)> = Vec::new();
        let mut expected_seed = None;
        for seed in 0..300u64 {
            let m = 2;
            let case = generate_runtime_case(seed, m);
            let mut cfg = config(m, JitterRegime::Mild, seed, mutant.mode);
            cfg.fault = mutant.fault;
            if matches!(mutant.fault, FaultPlan::LostWakeupCombiner) {
                // The run is *supposed* to stall; keep the watchdog short.
                cfg.stall_timeout = Duration::from_millis(200);
            }
            let run = execute(&case.sys, &case.jobs, &cfg);
            if let Err(f) = check_runtime_run(&case, &cfg, &run) {
                fired.push((seed, f.invariant));
                if f.invariant == mutant.expect {
                    expected_seed = Some(seed);
                    break;
                }
            }
        }
        let caught = expected_seed.unwrap_or_else(|| {
            panic!(
                "mutant {}: no seed in 0..300 fired {} (fired: {:?})",
                mutant.name, mutant.expect, fired
            )
        });
        // A mutant may trip *later* invariants on other seeds (a stale
        // key read can push tardiness past the bound before the equality
        // check ever runs), but never an invariant the fault cannot
        // reach: a lost wakeup always truncates (completeness), and a
        // torn batch never changes costs (conservation stays clean).
        for &(seed, invariant) in &fired {
            assert!(
                runtime_bank().iter().any(|inv| inv.name == invariant),
                "mutant {} seed {seed} fired unknown invariant {invariant}",
                mutant.name
            );
        }
        println!(
            "mutant {} caught at seed {caught} by {} ({} firing seed(s) scanned)",
            mutant.name,
            mutant.expect,
            fired.len()
        );
    }
}

/// Deterministic mode is bit-stable across *repeated* runs: thread
/// scheduling varies between executions, but the logical-time barrier
/// makes the recorded artifacts a pure function of the workload.
#[test]
fn deterministic_artifacts_are_bit_stable_across_repeated_runs() {
    for &seed in sweep_seeds().iter().take(8) {
        for &m in &[2, 4] {
            let case = generate_runtime_case(seed, m);
            let cfg = config(m, JitterRegime::Adversarial, seed, Mode::Deterministic);
            let runs: Vec<RuntimeRun> = (0..4)
                .map(|_| execute(&case.sys, &case.jobs, &cfg))
                .collect();
            for run in &runs[1..] {
                assert_eq!(
                    run.log, runs[0].log,
                    "workers={m} seed={seed}: logs diverge across repeated runs"
                );
                assert_eq!(
                    run.events, runs[0].events,
                    "workers={m} seed={seed}: event streams diverge across repeated runs"
                );
            }
        }
    }
}
