//! Cross-check: the online heap-based scheduler must produce *exactly*
//! the schedule of the offline DVQ simulator on identical workloads.
//!
//! The two implementations share the window formulas and nothing else —
//! the offline simulator scans a ready vector with the comparator, the
//! online one pops a binary heap of static keys — so agreement here
//! certifies both the `Pd2Key` encoding and the event-loop semantics.

use std::collections::HashMap;

use pfair::prelude::*;
use pfair::workload::{random_weights, UniformCost};

/// Submits one periodic job stream per task and runs the online scheduler
/// with costs drawn from the same per-subtask map as the offline run.
fn run_online(
    weights: &[Weight],
    jobs_per_task: u64,
    costs: &HashMap<(u32, u64), Rat>,
    m: u32,
) -> Vec<OnlineAssignment> {
    let mut s = OnlineDvq::new(m);
    let ids: Vec<TaskId> = weights.iter().map(|&w| s.add_task(w)).collect();
    for (&t, &w) in ids.iter().zip(weights) {
        for j in 0..jobs_per_task {
            s.submit_job(t, j as i64 * w.p()).unwrap();
        }
    }
    s.run_until_idle(&mut |task, index| costs.get(&(task.0, index)).copied().unwrap_or(Rat::ONE))
}

/// Builds the equivalent offline system (periodic, same job count).
fn offline_system(weights: &[Weight], jobs_per_task: u64) -> TaskSystem {
    let mut b = TaskSystemBuilder::new();
    for &w in weights {
        let t = b.add_task(w);
        for i in 1..=jobs_per_task * w.e() as u64 {
            b.push(t, i, 0, None).unwrap();
        }
    }
    b.build()
}

fn check_equivalence(weights: &[Weight], jobs: u64, m: u32, seed: u64) {
    let sys = offline_system(weights, jobs);
    // Draw per-subtask costs once, deterministically.
    let mut draw = UniformCost::new(Rat::new(1, 3), seed);
    let mut cost_map: HashMap<(u32, u64), Rat> = HashMap::new();
    for (st, s) in sys.iter_refs() {
        cost_map.insert((s.id.task.0, s.id.index), draw.cost(&sys, st));
    }
    let mut offline_costs = FixedCosts::new(Rat::ONE);
    for (&(task, index), &c) in &cost_map {
        offline_costs.set(
            SubtaskId {
                task: TaskId(task),
                index,
            },
            c,
        );
    }

    let offline = simulate_dvq(&sys, m, &Pd2, &mut offline_costs);
    let online = run_online(weights, jobs, &cost_map, m);

    assert_eq!(online.len(), sys.num_subtasks(), "assignment counts differ");
    for a in &online {
        let st = sys
            .find(SubtaskId {
                task: a.task,
                index: a.index,
            })
            .expect("subtask exists offline");
        assert_eq!(
            a.start,
            offline.start(st),
            "start of T{}_{} differs (seed {seed})",
            a.task.0,
            a.index
        );
        assert_eq!(
            a.proc,
            offline.placement(st).proc,
            "processor of T{}_{} differs (seed {seed})",
            a.task.0,
            a.index
        );
        assert_eq!(a.deadline, sys.subtask(st).deadline);
    }
}

#[test]
fn online_matches_offline_on_fig2_set() {
    let weights: Vec<Weight> = [(1i64, 6i64), (1, 6), (1, 6), (1, 2), (1, 2), (1, 2)]
        .iter()
        .map(|&(e, p)| Weight::new(e, p))
        .collect();
    for seed in 0..5 {
        check_equivalence(&weights, 2, 2, seed);
    }
}

#[test]
fn online_matches_offline_on_random_systems() {
    for m in [2u32, 3, 4] {
        for seed in 0..6u64 {
            let ws = random_weights(&TaskGenConfig::full(m, 8), 60_000 + seed);
            check_equivalence(&ws, 2, m, seed);
        }
    }
}

#[test]
fn online_bound_holds_on_sporadic_arrivals() {
    // Sporadic (late) arrivals with early yields: Theorem 3's bound must
    // hold for the online scheduler directly.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut s = OnlineDvq::new(3);
    let weights = [
        Weight::new(1, 2),
        Weight::new(2, 3),
        Weight::new(3, 4),
        Weight::new(1, 3),
        Weight::new(1, 4),
    ];
    let ids: Vec<TaskId> = weights.iter().map(|&w| s.add_task(w)).collect();
    for (&t, &w) in ids.iter().zip(&weights) {
        let mut at = rng.gen_range(0..3);
        for _ in 0..5 {
            s.submit_job(t, at).unwrap();
            at += w.p() + rng.gen_range(0..3i64); // sporadic slack
        }
    }
    let delta = Rat::new(1, 64);
    let log = s.run_until_idle(&mut |_, _| {
        if rng.gen_bool(0.6) {
            Rat::ONE - delta
        } else {
            Rat::ONE
        }
    });
    let expected: u64 = weights.iter().map(|w| 5 * w.e() as u64).sum();
    assert_eq!(log.len() as u64, expected); // Σ jobs × e per task
    let mut max_tard = Rat::ZERO;
    for a in &log {
        let t = (a.start + a.cost - Rat::int(a.deadline)).max(Rat::ZERO);
        max_tard = max_tard.max(t);
    }
    assert!(max_tard <= Rat::ONE, "online tardiness {max_tard}");
}
