//! Ablation study: which of PD²'s tie-breaks are load-bearing?
//!
//! PD² = EPDF + (b-bit rule) + (group-deadline rule). The paper relies on
//! PD²'s optimality; these tests pin concrete feasible task systems, found
//! by seeded random search (see EXPERIMENTS.md, "Ablations"), showing that
//! removing tie-breaks genuinely loses optimality:
//!
//! * EPDF (both rules removed) misses deadlines at M = 6;
//! * deadline + b-bit (group deadline removed) misses deadlines on a
//!   cascade-heavy instance at M = 6;
//! * full PD² misses nothing on either instance.
//!
//! The searches also *failed* to find misses for the deadline +
//! group-deadline variant (b-bit removed) across ~54k random systems —
//! recorded as an empirical observation, not a theorem.

use pfair::core::{Pd2NoBBit, Pd2NoGroupDeadline};
use pfair::prelude::*;

/// EPDF counterexample found at seed 529 of the heavy-weight search:
/// M = 6, utilization exactly 6.
fn epdf_counterexample() -> TaskSystem {
    release::periodic(
        &[
            (2, 3),
            (5, 6),
            (1, 1),
            (3, 5),
            (2, 3),
            (1, 1),
            (3, 5),
            (19, 30),
        ],
        30,
    )
}

/// Group-deadline counterexample found at seed 1951 of the cascade-heavy
/// search: M = 6, utilization exactly 6, weights of the form k/(k+1)
/// (long unit-slack cascades) plus fillers.
fn no_gd_counterexample() -> TaskSystem {
    release::periodic(
        &[
            (5, 6),
            (4, 5),
            (5, 6),
            (4, 5),
            (11, 12),
            (1, 2),
            (1, 2),
            (49, 60),
        ],
        60,
    )
}

#[test]
fn epdf_misses_where_pd2_does_not() {
    let sys = epdf_counterexample();
    assert_eq!(sys.utilization(), Rat::int(6));
    let epdf = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Epdf, &mut FullQuantum));
    let pd2 = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Pd2, &mut FullQuantum));
    assert_eq!(pd2.max, Rat::ZERO, "PD² must be optimal");
    assert_eq!(epdf.max, Rat::ONE, "pinned EPDF miss regressed");
    assert!(epdf.misses > 0);
}

#[test]
fn dropping_group_deadline_loses_optimality() {
    let sys = no_gd_counterexample();
    assert_eq!(sys.utilization(), Rat::int(6));
    let ablated = tardiness_stats(
        &sys,
        &simulate_sfq(&sys, 6, &Pd2NoGroupDeadline, &mut FullQuantum),
    );
    let pd2 = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Pd2, &mut FullQuantum));
    assert_eq!(pd2.max, Rat::ZERO, "PD² must be optimal");
    assert_eq!(ablated.max, Rat::ONE, "pinned no-GD miss regressed");
}

#[test]
fn no_bbit_variant_survives_the_pinned_instances() {
    // Not a theorem — just the recorded observation that the
    // deadline+group-deadline variant handles both pinned instances
    // (random search found no counterexample for it either).
    for sys in [epdf_counterexample(), no_gd_counterexample()] {
        let stats = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Pd2NoBBit, &mut FullQuantum));
        assert_eq!(stats.max, Rat::ZERO);
    }
}

#[test]
fn ablated_variants_still_bounded_under_dvq() {
    // Even ablated, tardiness under DVQ stays small on the pinned
    // instances (consistent with the paper's claim that DVQ worsens any
    // Pfair scheme's bound by at most one quantum: SFQ-max + 1).
    for sys in [epdf_counterexample(), no_gd_counterexample()] {
        for (name, order) in [
            ("EPDF", &Epdf as &dyn PriorityOrder),
            ("noGD", &Pd2NoGroupDeadline as &dyn PriorityOrder),
            ("noB", &Pd2NoBBit as &dyn PriorityOrder),
        ] {
            let sfq = tardiness_stats(&sys, &simulate_sfq(&sys, 6, order, &mut FullQuantum)).max;
            let mut adv = AdversarialYield::new(Rat::new(1, 64), 70, 99);
            let dvq = tardiness_stats(&sys, &simulate_dvq(&sys, 6, order, &mut adv)).max;
            assert!(dvq <= sfq + Rat::ONE, "{name}: DVQ {dvq} vs SFQ {sfq} + 1");
        }
    }
}

#[test]
fn pd2_handles_the_cascade_instance_under_dvq_too() {
    let sys = no_gd_counterexample();
    let mut adv = AdversarialYield::new(Rat::new(1, 64), 70, 7);
    let sched = simulate_dvq(&sys, 6, &Pd2, &mut adv);
    let stats = tardiness_stats(&sys, &sched);
    assert!(stats.max <= Rat::ONE);
}
