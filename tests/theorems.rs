//! Statistical validation of the paper's theorems over randomized
//! workloads (experiments E1–E4 and E6 of DESIGN.md).
//!
//! Each test sweeps randomly generated *feasible* GIS task systems through
//! the relevant simulator and asserts the theorem's bound on every trial.
//! The heavy-duty sweeps (more processors, more trials) live in the bench
//! harness; these are the always-on regression versions.

use pfair::prelude::*;
use pfair::workload::experiment::CostKind;

fn cfg(
    m: u32,
    model: ModelKind,
    cost: CostKind,
    release: ReleaseConfig,
    trials: usize,
    base_seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        m,
        algorithm: pfair::core::Algorithm::Pd2,
        model,
        taskgen: TaskGenConfig {
            target_util: Rat::int(i64::from(m)),
            max_period: 12,
            dist: WeightDist::Uniform,
            fill_exact: true,
        },
        release,
        cost,
        trials,
        base_seed,
    }
}

const THREADS: usize = 4;

// ------------------------------------------------------------ Theorem 3
// PD² under the DVQ model: tardiness ≤ one quantum for every feasible GIS
// system.

#[test]
fn thm3_dvq_pd2_tardiness_at_most_one_uniform_costs() {
    for m in [2u32, 4, 8] {
        let c = cfg(
            m,
            ModelKind::Dvq,
            CostKind::Uniform {
                min: Rat::new(1, 4),
            },
            ReleaseConfig::periodic(24),
            30,
            7_000 + u64::from(m),
        );
        let sweep = run_sweep(&c, THREADS);
        assert!(
            sweep.max_tardiness() <= Rat::ONE,
            "m = {m}: max tardiness {} exceeds one quantum",
            sweep.max_tardiness()
        );
    }
}

#[test]
fn thm3_dvq_pd2_tardiness_at_most_one_adversarial_costs() {
    // Near-boundary yields (1 − δ) maximize the blocking windows.
    for m in [2u32, 4] {
        let c = cfg(
            m,
            ModelKind::Dvq,
            CostKind::Adversarial {
                delta: Rat::new(1, 128),
                yield_percent: 70,
            },
            ReleaseConfig::periodic(24),
            30,
            11_000 + u64::from(m),
        );
        let sweep = run_sweep(&c, THREADS);
        assert!(sweep.max_tardiness() <= Rat::ONE, "m = {m}");
        // The adversarial regime does produce inversions — the bound is
        // not holding vacuously.
        assert!(sweep.total_blocking_events() > 0);
    }
}

#[test]
fn thm3_dvq_pd2_tardiness_at_most_one_gis_releases() {
    // The theorem covers every feasible GIS system: delays + drops + a
    // bimodal heavy/light mix.
    let mut c = cfg(
        4,
        ModelKind::Dvq,
        CostKind::Bimodal {
            full_percent: 60,
            low: Rat::new(1, 3),
        },
        ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon: 24,
            delay_percent: 15,
            drop_percent: 10,
            early: 0,
            max_join: 0,
        },
        40,
        23_000,
    );
    c.taskgen.dist = WeightDist::Bimodal { heavy_percent: 40 };
    let sweep = run_sweep(&c, THREADS);
    assert!(sweep.max_tardiness() <= Rat::ONE);
}

#[test]
fn thm3_bound_not_vacuous_misses_do_occur() {
    // The DVQ model genuinely misses deadlines under PD² (that is why the
    // theorem is interesting): across an adversarial sweep at full
    // utilization, at least one trial must show positive tardiness.
    let c = cfg(
        2,
        ModelKind::Dvq,
        CostKind::Adversarial {
            delta: Rat::new(1, 128),
            yield_percent: 80,
        },
        ReleaseConfig::periodic(24),
        40,
        31_000,
    );
    let sweep = run_sweep(&c, THREADS);
    assert!(sweep.total_misses() > 0, "expected some DVQ misses");
    assert!(sweep.max_tardiness() <= Rat::ONE);
    assert!(sweep.max_tardiness().is_positive());
}

#[test]
fn thm3_holds_with_dynamic_joins() {
    // Tasks joining at staggered times (dynamic task arrival, expressed
    // as initial IS offsets) stay within the bound.
    let c = cfg(
        4,
        ModelKind::Dvq,
        CostKind::Adversarial {
            delta: Rat::new(1, 64),
            yield_percent: 60,
        },
        ReleaseConfig {
            kind: ReleaseKind::IntraSporadic,
            horizon: 28,
            delay_percent: 10,
            drop_percent: 0,
            early: 0,
            max_join: 8,
        },
        30,
        37_000,
    );
    let sweep = run_sweep(&c, THREADS);
    assert!(sweep.max_tardiness() <= Rat::ONE);
}

// ------------------------------------------------------------ Theorem 2
// PD^B under the SFQ model: tardiness ≤ one quantum.

#[test]
fn thm2_pdb_tardiness_at_most_one() {
    for m in [2u32, 4, 8] {
        let c = cfg(
            m,
            ModelKind::SfqPdb,
            CostKind::Full,
            ReleaseConfig::periodic(24),
            30,
            43_000 + u64::from(m),
        );
        let sweep = run_sweep(&c, THREADS);
        assert!(
            sweep.max_tardiness() <= Rat::ONE,
            "m = {m}: PD^B exceeded one quantum"
        );
    }
}

#[test]
fn thm2_pdb_bound_is_attained() {
    // Fig. 6(a): the bound is tight — the Fig. 2 set attains exactly one
    // quantum of tardiness under PD^B.
    let sys = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );
    let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ONE);
}

// ------------------------------------------------ E3: PD² SFQ optimality

#[test]
fn pd2_optimal_under_sfq_periodic() {
    for m in [2u32, 4, 8] {
        let c = cfg(
            m,
            ModelKind::Sfq,
            CostKind::Full,
            ReleaseConfig::periodic(24),
            30,
            59_000 + u64::from(m),
        );
        let sweep = run_sweep(&c, THREADS);
        assert_eq!(
            sweep.max_tardiness(),
            Rat::ZERO,
            "m = {m}: PD² missed a deadline under SFQ"
        );
        assert_eq!(sweep.total_blocking_events(), 0);
    }
}

#[test]
fn pd2_optimal_under_sfq_gis() {
    let c = cfg(
        4,
        ModelKind::Sfq,
        CostKind::Full,
        ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon: 24,
            delay_percent: 15,
            drop_percent: 10,
            early: 0,
            max_join: 0,
        },
        40,
        61_000,
    );
    let sweep = run_sweep(&c, THREADS);
    assert_eq!(sweep.max_tardiness(), Rat::ZERO);
}

#[test]
fn pf_and_pd_also_optimal_under_sfq() {
    for alg in [pfair::core::Algorithm::Pf, pfair::core::Algorithm::Pd] {
        let mut c = cfg(
            4,
            ModelKind::Sfq,
            CostKind::Full,
            ReleaseConfig::periodic(20),
            20,
            67_000,
        );
        c.algorithm = alg;
        let sweep = run_sweep(&c, THREADS);
        assert_eq!(sweep.max_tardiness(), Rat::ZERO, "{alg} missed under SFQ");
    }
}

// --------------------------- E4: suboptimal algorithms worsen by ≤ 1 only

#[test]
fn epdf_dvq_at_most_one_quantum_worse_than_sfq() {
    // "tardiness bounds guaranteed by previously-proposed suboptimal Pfair
    // algorithms are worsened by at most one quantum": per trial, compare
    // EPDF's max tardiness under DVQ against the same system under SFQ.
    for m in [4u32, 8] {
        for trial in 0..15u64 {
            let base = cfg(
                m,
                ModelKind::Sfq,
                CostKind::Full,
                ReleaseConfig::periodic(20),
                1,
                71_000 + trial * 131 + u64::from(m),
            );
            let seed = base.base_seed;
            let sys = pfair::workload::experiment::make_system(&base, seed);
            let sfq = simulate_sfq(&sys, m, &Epdf, &mut FullQuantum);
            let mut adv = AdversarialYield::new(Rat::new(1, 128), 70, seed);
            let dvq = simulate_dvq(&sys, m, &Epdf, &mut adv);
            let t_sfq = tardiness_stats(&sys, &sfq).max;
            let t_dvq = tardiness_stats(&sys, &dvq).max;
            assert!(
                t_dvq <= t_sfq + Rat::ONE,
                "m = {m} seed {seed}: EPDF DVQ {t_dvq} vs SFQ {t_sfq}"
            );
        }
    }
}

// ------------------------------------------------------- E6: tightness

#[test]
fn tightness_tardiness_approaches_one() {
    // The Fig. 2 family shows max tardiness 1 − δ for every δ > 0, so the
    // Theorem 3 bound of one quantum is tight.
    let sys = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );
    let mut last = Rat::ZERO;
    for den in [4i64, 16, 256, 65_536] {
        let delta = Rat::new(1, den);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let max = tardiness_stats(&sys, &sched).max;
        assert_eq!(max, Rat::ONE - delta);
        assert!(max > last);
        last = max;
    }
}

// ------------------------------------- structural sanity on every model

#[test]
fn all_models_produce_structurally_valid_schedules() {
    for model in [
        ModelKind::Sfq,
        ModelKind::Dvq,
        ModelKind::Staggered,
        ModelKind::SfqPdb,
    ] {
        let c = cfg(
            3,
            model,
            CostKind::Uniform {
                min: Rat::new(1, 2),
            },
            ReleaseConfig::gis(20),
            10,
            83_000,
        );
        for k in 0..c.trials as u64 {
            let seed = c.base_seed + k;
            let sys = pfair::workload::experiment::make_system(&c, seed);
            let mut cost = UniformCost::new(Rat::new(1, 2), seed);
            let sched = pfair::workload::experiment::simulate(&c, &sys, &mut cost);
            let errors = check_structural(&sys, &sched);
            assert!(errors.is_empty(), "{model}: {errors:?}");
        }
    }
}
