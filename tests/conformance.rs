//! Mutation ("planted bug") tests for the differential conformance
//! harness: every deliberately broken engine in the roster must be caught
//! by a seeded campaign, its counterexample must shrink to a handful of
//! tasks on at most two processors, and the shrunk spec must replay the
//! same violation deterministically. A clean campaign against the
//! reference engines must pass — deterministically, whatever the thread
//! count.

use pfair::conformance::{
    mutants, run_campaign, CampaignConfig, Case, CaseSpec, GenConfig, REFERENCE,
};

/// Seed shared by the planted-bug campaigns (arbitrary but fixed: the
/// suite asserts detection *within* the first 1000 seeds, so the seed is
/// part of the contract).
const BASE_SEED: u64 = 0xC0FFEE;

fn mutant_campaign(trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials,
        base_seed: BASE_SEED,
        threads: 2,
        gen: GenConfig::default(),
        time_limit: None,
        shrink: true,
        stop_on_first: true,
    }
}

#[test]
fn every_planted_mutant_is_caught_and_shrunk() {
    let roster = mutants();
    assert!(roster.len() >= 8, "mutation suite needs ≥ 8 planted bugs");
    for mutant in &roster {
        let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
        let v = outcome.violations.first().unwrap_or_else(|| {
            panic!(
                "mutant {:?} ({}) survived a 1000-case campaign",
                mutant.name, mutant.description
            )
        });
        assert_ne!(v.invariant, "case-build", "mutant {:?}", mutant.name);
        let shrunk = v
            .shrunk
            .as_ref()
            .unwrap_or_else(|| panic!("mutant {:?}: no shrunk repro", mutant.name));
        assert!(
            shrunk.tasks.len() <= 4,
            "mutant {:?}: shrunk repro has {} tasks (> 4): {shrunk:?}",
            mutant.name,
            shrunk.tasks.len()
        );
        assert!(
            shrunk.m <= 2,
            "mutant {:?}: shrunk repro needs M = {} (> 2): {shrunk:?}",
            mutant.name,
            shrunk.m
        );
        // The shrunk spec must still witness the same violation when
        // rebuilt from scratch (i.e. the artifact is self-contained).
        let case = Case::build(shrunk.clone()).expect("shrunk spec rebuilds");
        let refail = pfair::conformance::check_one(&v.invariant, &case, &mutant.engines);
        assert!(
            refail.is_err(),
            "mutant {:?}: shrunk repro no longer fails {:?}",
            mutant.name,
            v.invariant
        );
        // And the violation replays from the seed alone.
        let replay = run_campaign(
            &CampaignConfig {
                trials: 1,
                base_seed: v.seed,
                threads: 1,
                ..mutant_campaign(1)
            },
            &mutant.engines,
        );
        assert_eq!(
            replay.violations.len(),
            1,
            "mutant {:?}: seed {} does not replay",
            mutant.name,
            v.seed
        );
        assert_eq!(replay.violations[0].invariant, v.invariant);
    }
}

/// The observability mutant must be caught by the streaming-vs-post-hoc
/// invariant specifically (not by an accidental side effect elsewhere):
/// dropping blocking events detected at non-integral dispatch times leaves
/// every schedule untouched, so only the differential observer check can
/// see it.
#[test]
fn observer_mutant_caught_by_streaming_invariant() {
    let roster = mutants();
    let mutant = roster
        .iter()
        .find(|m| m.name == "obs-drops-fractional-blocking")
        .expect("observer mutant is planted");
    let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
    let v = outcome
        .violations
        .first()
        .expect("observer mutant survived a 1000-case campaign");
    assert_eq!(v.invariant, "streaming-posthoc-agreement");
}

#[test]
fn clean_campaign_is_deterministic_across_thread_counts() {
    let base = CampaignConfig {
        trials: 5000,
        base_seed: 1,
        threads: 1,
        gen: GenConfig::default(),
        time_limit: None,
        shrink: false,
        stop_on_first: false,
    };
    let serial = run_campaign(&base, &REFERENCE);
    assert!(
        serial.clean(),
        "reference engines violated an invariant: {:?}",
        serial.violations
    );
    assert_eq!(serial.trials_run, base.trials);
    for threads in [2, 4] {
        let par = run_campaign(&CampaignConfig { threads, ..base }, &REFERENCE);
        assert!(par.clean(), "threads={threads}: {:?}", par.violations);
        assert_eq!(par.trials_run, serial.trials_run, "threads={threads}");
    }
}

#[test]
fn violation_artifacts_round_trip_as_json() {
    // Take any mutant's shrunk repro and make sure the serde_json artifact
    // a campaign would emit parses back into the same spec.
    let mutant = &mutants()[0];
    let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
    let v = outcome.violations.first().expect("mutant detected");
    let shrunk = v.shrunk.as_ref().expect("shrunk");
    let json = serde_json::to_string(shrunk).expect("serialize");
    let back: CaseSpec = serde_json::from_str(&json).expect("parse");
    assert_eq!(&back, shrunk);
}
