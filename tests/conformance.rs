//! Mutation ("planted bug") tests for the differential conformance
//! harness: every deliberately broken engine in the roster must be caught
//! by a seeded campaign, its counterexample must shrink to a handful of
//! tasks on at most two processors, and the shrunk spec must replay the
//! same violation deterministically. A clean campaign against the
//! reference engines must pass — deterministically, whatever the thread
//! count.

use pfair::conformance::{
    mutants, run_campaign, CampaignConfig, Case, CaseSpec, GenConfig, REFERENCE,
};

/// Seed shared by the planted-bug campaigns (arbitrary but fixed: the
/// suite asserts detection *within* the first 1000 seeds, so the seed is
/// part of the contract).
const BASE_SEED: u64 = 0xC0FFEE;

fn mutant_campaign(trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials,
        base_seed: BASE_SEED,
        threads: 2,
        gen: GenConfig::default(),
        time_limit: None,
        shrink: true,
        stop_on_first: true,
    }
}

#[test]
fn every_planted_mutant_is_caught_and_shrunk() {
    let roster = mutants();
    assert!(roster.len() >= 13, "mutation suite needs ≥ 13 planted bugs");
    for mutant in &roster {
        let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
        let v = outcome.violations.first().unwrap_or_else(|| {
            panic!(
                "mutant {:?} ({}) survived a 1000-case campaign",
                mutant.name, mutant.description
            )
        });
        assert_ne!(v.invariant, "case-build", "mutant {:?}", mutant.name);
        let shrunk = v
            .shrunk
            .as_ref()
            .unwrap_or_else(|| panic!("mutant {:?}: no shrunk repro", mutant.name));
        assert!(
            shrunk.tasks.len() <= 4,
            "mutant {:?}: shrunk repro has {} tasks (> 4): {shrunk:?}",
            mutant.name,
            shrunk.tasks.len()
        );
        assert!(
            shrunk.m <= 2,
            "mutant {:?}: shrunk repro needs M = {} (> 2): {shrunk:?}",
            mutant.name,
            shrunk.m
        );
        // The shrunk spec must still witness the same violation when
        // rebuilt from scratch (i.e. the artifact is self-contained).
        let case = Case::build(shrunk.clone()).expect("shrunk spec rebuilds");
        let refail = pfair::conformance::check_one(&v.invariant, &case, &mutant.engines);
        assert!(
            refail.is_err(),
            "mutant {:?}: shrunk repro no longer fails {:?}",
            mutant.name,
            v.invariant
        );
        // And the violation replays from the seed alone.
        let replay = run_campaign(
            &CampaignConfig {
                trials: 1,
                base_seed: v.seed,
                threads: 1,
                ..mutant_campaign(1)
            },
            &mutant.engines,
        );
        assert_eq!(
            replay.violations.len(),
            1,
            "mutant {:?}: seed {} does not replay",
            mutant.name,
            v.seed
        );
        assert_eq!(replay.violations[0].invariant, v.invariant);
    }
}

/// The observability mutant must be caught by the streaming-vs-post-hoc
/// invariant specifically (not by an accidental side effect elsewhere):
/// dropping blocking events detected at non-integral dispatch times leaves
/// every schedule untouched, so only the differential observer check can
/// see it.
#[test]
fn observer_mutant_caught_by_streaming_invariant() {
    let roster = mutants();
    let mutant = roster
        .iter()
        .find(|m| m.name == "obs-drops-fractional-blocking")
        .expect("observer mutant is planted");
    let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
    let v = outcome
        .violations
        .first()
        .expect("observer mutant survived a 1000-case campaign");
    assert_eq!(v.invariant, "streaming-posthoc-agreement");
}

/// The engine-family mutants must be caught by their family's own
/// invariant: no other check in the bank even invokes the BF or flow
/// engines before the family invariant runs, so a detection elsewhere
/// would mean the roof is leaning on an accident.
#[test]
fn family_mutants_caught_by_family_invariants() {
    let roster = mutants();
    for (name, want) in [
        ("bf-optional-by-id", "bf-boundary-conservation"),
        ("bf-mandatory-only", "bf-boundary-conservation"),
        ("flow-overfull-slot", "flow-solution-validity"),
        ("flow-window-slip", "flow-solution-validity"),
    ] {
        let mutant = roster
            .iter()
            .find(|m| m.name == name)
            .expect("family mutant is planted");
        let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
        let v = outcome
            .violations
            .first()
            .unwrap_or_else(|| panic!("mutant {name} survived a 1000-case campaign"));
        assert_eq!(
            v.invariant, want,
            "mutant {name} caught by the wrong invariant"
        );
    }
}

#[test]
fn clean_campaign_is_deterministic_across_thread_counts() {
    let base = CampaignConfig {
        trials: 5000,
        base_seed: 1,
        threads: 1,
        gen: GenConfig::default(),
        time_limit: None,
        shrink: false,
        stop_on_first: false,
    };
    let serial = run_campaign(&base, &REFERENCE);
    assert!(
        serial.clean(),
        "reference engines violated an invariant: {:?}",
        serial.violations
    );
    assert_eq!(serial.trials_run, base.trials);
    for threads in [2, 4] {
        let par = run_campaign(&CampaignConfig { threads, ..base }, &REFERENCE);
        assert!(par.clean(), "threads={threads}: {:?}", par.violations);
        assert_eq!(par.trials_run, serial.trials_run, "threads={threads}");
    }
}

/// The predictability invariant (#13) deliberately excludes DVQ, because
/// DVQ's anomalies are *real*, not a harness artifact: the paper's own
/// Fig. 2 is a counterexample. Under worst-case (full) quanta PD²-DVQ
/// meets every deadline; let A₁ and F₁ finish δ early and F₂ completes at
/// 5 − δ — strictly *later* than its full-cost completion at 4. Shrinking
/// execution costs delayed a completion, violating Cucu-Grosjean
/// predictability. This test pins that counterexample so nobody "fixes"
/// the invariant by widening it to DVQ; EXPERIMENTS.md E13 documents it.
#[test]
fn dvq_predictability_counterexample_fig2() {
    use pfair::prelude::*;
    let sys = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    );
    let delta = Rat::new(1, 4);
    let worst = simulate_dvq(&sys, 2, &Pd2, &mut FullQuantum);
    let mut yields = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let actual = simulate_dvq(&sys, 2, &Pd2, &mut yields);

    let f2 = sys
        .find(SubtaskId {
            task: TaskId(5),
            index: 2,
        })
        .unwrap();
    let worst_done = worst.placement(f2).holds_until;
    let actual_done = actual.placement(f2).holds_until;
    assert_eq!(worst_done, Rat::int(4), "full quanta: F₂ makes d = 4");
    assert_eq!(actual_done, Rat::int(5) - delta);
    assert!(
        actual_done > worst_done,
        "the anomaly: smaller costs, later completion"
    );

    // Contrast: the slot engines the invariant does cover are predictable
    // on the same scenario — identical placements under either cost model.
    let check = |a: &Schedule, b: &Schedule| {
        for task in sys.tasks() {
            for st in sys.task_subtask_refs(task.id) {
                assert_eq!(a.placement(st).start, b.placement(st).start);
                assert_eq!(a.placement(st).proc, b.placement(st).proc);
            }
        }
    };
    let mut yields2 = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    check(
        &simulate_sfq(&sys, 2, &Pd2, &mut yields2),
        &simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum),
    );
    let mut yields3 = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    check(
        &simulate_bf(&sys, 2, &mut yields3),
        &simulate_bf(&sys, 2, &mut FullQuantum),
    );
    let mut yields4 = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    check(
        &simulate_flow(&sys, 2, &mut yields4),
        &simulate_flow(&sys, 2, &mut FullQuantum),
    );
}

/// The fuzz generator also finds DVQ anomalies on its own: within the
/// first few hundred seeds there is a generated case whose DVQ schedule
/// under the case's (reduced) costs finishes some subtask strictly later
/// than the same engine under worst-case full quanta. The seed below is
/// pinned so the counterexample stays reproducible; if generation ever
/// changes, re-run the scan and update both this test and EXPERIMENTS.md.
#[test]
fn fuzz_generator_finds_dvq_anomalies() {
    use pfair::prelude::*;
    let cfg = GenConfig::default();
    let mut witness = None;
    for seed in 1..=500u64 {
        let spec = pfair::conformance::generate_case(&cfg, seed);
        if spec.costs.is_empty() {
            continue;
        }
        let Ok(case) = Case::build(spec) else {
            continue;
        };
        let worst = simulate_dvq(&case.sys, case.spec.m, &Pd2, &mut FullQuantum);
        let actual = simulate_dvq(&case.sys, case.spec.m, &Pd2, &mut case.cost_model());
        let anomaly = case.sys.tasks().iter().any(|task| {
            case.sys
                .task_subtask_refs(task.id)
                .any(|st| actual.placement(st).holds_until > worst.placement(st).holds_until)
        });
        if anomaly {
            witness = Some(seed);
            break;
        }
    }
    let seed = witness.expect("no DVQ anomaly in 500 seeds — update EXPERIMENTS.md E13");
    assert_eq!(
        seed, DVQ_ANOMALY_SEED,
        "first anomalous seed moved; update EXPERIMENTS.md E13 and this pin"
    );
}

/// The first generator seed exhibiting a DVQ predictability anomaly
/// (documented in EXPERIMENTS.md E13).
const DVQ_ANOMALY_SEED: u64 = 12;

#[test]
fn violation_artifacts_round_trip_as_json() {
    // Take any mutant's shrunk repro and make sure the serde_json artifact
    // a campaign would emit parses back into the same spec.
    let mutant = &mutants()[0];
    let outcome = run_campaign(&mutant_campaign(1000), &mutant.engines);
    let v = outcome.violations.first().expect("mutant detected");
    let shrunk = v.shrunk.as_ref().expect("shrunk");
    let json = serde_json::to_string(shrunk).expect("serialize");
    let back: CaseSpec = serde_json::from_str(&json).expect("parse");
    assert_eq!(&back, shrunk);
}
