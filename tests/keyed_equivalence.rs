//! Keyed dispatch must be invisible: the simulators' precomputed-key fast
//! paths (`pfair_core::key`) have to reproduce the comparator paths
//! schedule-for-schedule — same subtasks, same processors, same (rational)
//! start times — on the paper's golden traces and on random GIS systems.
//! `ComparatorOnly` forces the fallback path for the same order, so each
//! test literally runs both implementations and diffs the placements.

use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};
use proptest::prelude::*;

/// The task set of Figs. 2 and 6 (A–C at weight 1/6, D–F at 1/2, M = 2).
fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

/// The reconstructed predecessor-blocking instance of Fig. 3 (M = 3).
fn fig3_system() -> TaskSystem {
    use pfair::taskmodel::release::{structured, ReleaseSpec};
    structured(
        &[
            ReleaseSpec::periodic("A", 1, 84),
            ReleaseSpec {
                name: "B",
                e: 1,
                p: 3,
                delays: &[],
                drops: &[],
                early: 1,
            },
            ReleaseSpec::periodic("C", 1, 2),
            ReleaseSpec::periodic("D", 2, 3),
            ReleaseSpec::periodic("E", 2, 3),
            ReleaseSpec::periodic("F", 3, 4),
        ],
        6,
    )
    .unwrap()
}

/// Fig. 2(b)'s cost model: A_1 and F_1 yield δ = 1/4 early.
fn fig2b_costs() -> FixedCosts {
    let delta = Rat::new(1, 4);
    FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta)
}

/// Fig. 3's cost model: E_2 and F_3 yield δ = 1/4 early.
fn fig3_costs() -> FixedCosts {
    let delta = Rat::new(1, 4);
    FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta)
}

/// Asserts the keyed (default) and comparator (forced) runs of both
/// simulators coincide placement-for-placement for `order` on `sys`.
fn assert_keyed_matches_comparator(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    mk_cost: &dyn Fn() -> FixedCosts,
) {
    let fallback = ComparatorOnly(order);
    assert_eq!(fallback.key_dispatch(), KeyDispatch::Comparator);

    let keyed_dvq = simulate_dvq(sys, m, order, &mut mk_cost());
    let comp_dvq = simulate_dvq(sys, m, &fallback, &mut mk_cost());
    assert_same_schedule(sys, &keyed_dvq, &comp_dvq, order.name(), "DVQ");

    let keyed_sfq = simulate_sfq(sys, m, order, &mut mk_cost());
    let comp_sfq = simulate_sfq(sys, m, &fallback, &mut mk_cost());
    assert_same_schedule(sys, &keyed_sfq, &comp_sfq, order.name(), "SFQ");
}

fn assert_same_schedule(
    sys: &TaskSystem,
    keyed: &Schedule,
    comparator: &Schedule,
    order: &str,
    model: &str,
) {
    assert_eq!(
        keyed.placements().len(),
        comparator.placements().len(),
        "{order}/{model}: placement counts differ"
    );
    for (a, b) in keyed.placements().iter().zip(comparator.placements()) {
        assert_eq!(
            (a.st, a.proc, a.start, a.cost, a.holds_until),
            (b.st, b.proc, b.start, b.cost, b.holds_until),
            "{order}/{model}: {:?} diverges",
            sys.subtask(a.st).id
        );
    }
}

#[test]
fn fig2_golden_traces_identical_under_keyed_dispatch() {
    let sys = fig2_system();
    for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
        assert_keyed_matches_comparator(&sys, 2, alg.order(), &|| FixedCosts::new(Rat::ONE));
        assert_keyed_matches_comparator(&sys, 2, alg.order(), &fig2b_costs);
    }
}

#[test]
fn fig2b_keyed_dvq_reproduces_the_paper_trace() {
    // Belt and braces on top of tests/figures.rs: the keyed default path
    // hits the exact Fig. 2(b) numbers, including F_2's 1 − δ miss.
    let sys = fig2_system();
    let sched = simulate_dvq(&sys, 2, &Pd2, &mut fig2b_costs());
    let delta = Rat::new(1, 4);
    let b1 = sys
        .find(SubtaskId {
            task: TaskId(1),
            index: 1,
        })
        .unwrap();
    assert_eq!(sched.start(b1), Rat::int(2) - delta);
    let stats = tardiness_stats(&sys, &sched);
    assert_eq!(stats.max, Rat::ONE - delta);
}

#[test]
fn fig3_golden_traces_identical_under_keyed_dispatch() {
    let sys = fig3_system();
    for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
        assert_keyed_matches_comparator(&sys, 3, alg.order(), &fig3_costs);
    }
    // The predecessor-blocking event survives the keyed path.
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut fig3_costs());
    let b2 = sys
        .find(SubtaskId {
            task: TaskId(1),
            index: 2,
        })
        .unwrap();
    let events = detect_blocking(&sys, &sched, &Pd2);
    let ev = events.iter().find(|e| e.victim == b2).expect("B_2 blocked");
    assert_eq!(ev.kind, BlockingKind::Predecessor);
}

#[test]
fn fig6_shifted_system_identical_under_keyed_dispatch() {
    // Fig. 6(b): the right-shifted τ of the Fig. 2 set; PD² keyed vs
    // comparator, and the containment result itself.
    let tau = fig2_system().shifted(1, 1);
    assert_keyed_matches_comparator(&tau, 2, &Pd2, &|| FixedCosts::new(Rat::ONE));
    let sched = simulate_sfq(&tau, 2, &Pd2, &mut FullQuantum);
    assert!(check_window_containment(&tau, &sched).is_empty());
}

/// Asserts the integer-tick fast path (taken when the cost model hints its
/// denominator grid) and the exact-rational path ([`ExactOnly`] withholds
/// the hint) produce identical schedules under both event-driven models.
fn assert_tick_matches_exact(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    mk_cost: &dyn Fn() -> FixedCosts,
) {
    let mut fast_cost = mk_cost();
    assert!(
        fast_cost.denominator_hint().is_some(),
        "cost model must hint for the tick path to engage"
    );
    let fast_dvq = simulate_dvq(sys, m, order, &mut fast_cost);
    let exact_dvq = simulate_dvq(sys, m, order, &mut ExactOnly(&mut mk_cost()));
    assert_same_schedule(
        sys,
        &fast_dvq,
        &exact_dvq,
        order.name(),
        "DVQ tick-vs-exact",
    );

    let fast_stag = simulate_staggered(sys, m, order, &mut mk_cost());
    let exact_stag = simulate_staggered(sys, m, order, &mut ExactOnly(&mut mk_cost()));
    assert_same_schedule(
        sys,
        &fast_stag,
        &exact_stag,
        order.name(),
        "staggered tick-vs-exact",
    );
}

#[test]
fn fig2_tick_path_matches_exact_path() {
    let sys = fig2_system();
    for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
        assert_tick_matches_exact(&sys, 2, alg.order(), &|| FixedCosts::new(Rat::ONE));
        assert_tick_matches_exact(&sys, 2, alg.order(), &fig2b_costs);
    }
}

#[test]
fn fig3_tick_path_matches_exact_path() {
    let sys = fig3_system();
    for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
        assert_tick_matches_exact(&sys, 3, alg.order(), &fig3_costs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// KeyCache pairwise ordering matches each comparator on random GIS
    /// systems (random weights, IS delays, dropped subtasks, early
    /// releases).
    #[test]
    fn prop_keycache_matches_comparators_on_random_gis(seed in 0u64..10_000) {
        let ws = random_weights(&TaskGenConfig::full(4, 6), seed);
        let sys = releasegen::generate(&ws, &ReleaseConfig::gis(12), seed);
        prop_assume!(sys.num_subtasks() >= 2);
        let pd2 = KeyCache::<pfair::online::Pd2Key>::build(&sys);
        let epdf = KeyCache::<EpdfKey>::build(&sys);
        let pd = KeyCache::<PdKey>::build(&sys);
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                prop_assert_eq!(pd2.key(a).cmp(&pd2.key(b)), Pd2.cmp(&sys, a, b));
                prop_assert_eq!(epdf.key(a).cmp(&epdf.key(b)), Epdf.cmp(&sys, a, b));
                prop_assert_eq!(pd.key(a).cmp(&pd.key(b)), Pd.cmp(&sys, a, b));
            }
        }
    }

    /// Keyed and comparator schedules coincide on random GIS systems under
    /// early-yield costs, for all three keyed orders and both simulators.
    #[test]
    fn prop_keyed_schedules_match_on_random_gis(seed in 0u64..10_000) {
        let ws = random_weights(&TaskGenConfig::full(3, 5), seed);
        let sys = releasegen::generate(&ws, &ReleaseConfig::gis(10), seed);
        prop_assume!(sys.num_subtasks() >= 2);
        for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
            let order = alg.order();
            let fallback = ComparatorOnly(order);
            // A deterministic early-yield pattern keyed off the subtask id.
            let mk = || {
                let mut c = FixedCosts::new(Rat::ONE);
                for (_, s) in sys.iter_refs() {
                    if (s.id.index + u64::from(s.id.task.0)) % 3 == 0 {
                        c = c.with(s.id.task, s.id.index, Rat::new(3, 4));
                    }
                }
                c
            };
            let kd = simulate_dvq(&sys, 3, order, &mut mk());
            let cd = simulate_dvq(&sys, 3, &fallback, &mut mk());
            prop_assert_eq!(kd.placements().len(), cd.placements().len());
            for (a, b) in kd.placements().iter().zip(cd.placements()) {
                prop_assert_eq!(
                    (a.st, a.proc, a.start, a.cost),
                    (b.st, b.proc, b.start, b.cost)
                );
            }
            let ks = simulate_sfq(&sys, 3, order, &mut mk());
            let cs = simulate_sfq(&sys, 3, &fallback, &mut mk());
            for (a, b) in ks.placements().iter().zip(cs.placements()) {
                prop_assert_eq!((a.st, a.proc, a.start), (b.st, b.proc, b.start));
            }
        }
    }

    /// The integer-tick fast path is invisible on random GIS systems: with
    /// the hint engaged and withheld (`ExactOnly`), DVQ and staggered
    /// schedules coincide for all three keyed orders.
    #[test]
    fn prop_tick_path_matches_exact_on_random_gis(seed in 0u64..10_000) {
        let ws = random_weights(&TaskGenConfig::full(3, 5), seed);
        let sys = releasegen::generate(&ws, &ReleaseConfig::gis(10), seed);
        prop_assume!(sys.num_subtasks() >= 2);
        let mk = || {
            let mut c = FixedCosts::new(Rat::ONE);
            for (_, s) in sys.iter_refs() {
                match (s.id.index + u64::from(s.id.task.0)) % 4 {
                    0 => c = c.with(s.id.task, s.id.index, Rat::new(3, 4)),
                    2 => c = c.with(s.id.task, s.id.index, Rat::new(5, 6)),
                    _ => {}
                }
            }
            c
        };
        for alg in [Algorithm::Epdf, Algorithm::Pd2, Algorithm::Pd] {
            let order = alg.order();
            let fd = simulate_dvq(&sys, 3, order, &mut mk());
            let ed = simulate_dvq(&sys, 3, order, &mut ExactOnly(&mut mk()));
            prop_assert_eq!(fd.placements(), ed.placements());
            let fs = simulate_staggered(&sys, 3, order, &mut mk());
            let es = simulate_staggered(&sys, 3, order, &mut ExactOnly(&mut mk()));
            prop_assert_eq!(fs.placements(), es.placements());
        }
    }
}
