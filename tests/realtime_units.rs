//! End-to-end in wall-clock units: specify tasks in microseconds, convert
//! through a concrete quantum size, schedule, and read results back in
//! microseconds — the adoption path a real system would take.

use pfair::prelude::*;

#[test]
fn microsecond_workload_round_trip() {
    // A 1 ms quantum; three tasks specified as (WCET µs, period µs).
    let scale = QuantumScale::new(1_000);
    let specs = [
        ("camera", 3_200u64, 10_000u64), // 3.2 ms every 10 ms
        ("fusion", 4_900, 20_000),       // 4.9 ms every 20 ms
        ("logger", 700, 20_000),         // 0.7 ms every 20 ms
    ];
    let mut weights = Vec::new();
    for &(name, wcet, period) in &specs {
        let (e, p) = scale
            .weight_quanta(wcet, period)
            .unwrap_or_else(|| panic!("{name} not expressible at 1 ms quantum"));
        weights.push((e, p));
    }
    // camera: 4/10, fusion: 5/20, logger: 1/20 → utilization 0.7.
    assert_eq!(weights, vec![(4, 10), (5, 20), (1, 20)]);
    let sys = release::periodic(&weights, 40);
    assert!(sys.is_feasible(1));

    let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
    assert!(check_window_containment(&sys, &sched).is_empty());

    // First camera job: 4 quanta, job deadline at 10 quanta = 10 000 µs.
    let camera = TaskId(0);
    let last_of_job1 = sys
        .find(SubtaskId {
            task: camera,
            index: 4,
        })
        .unwrap();
    let completion_us = scale.time_to_us(sched.completion(last_of_job1));
    assert!(
        completion_us <= 10_000,
        "job finished at {completion_us} µs"
    );
}

#[test]
fn finer_quantum_admits_more() {
    // A task set that only fits after shrinking the quantum: rounding
    // inflation at 1 ms pushes it over one CPU; at 250 µs it fits.
    let tasks = [(1_100u64, 4_000u64), (1_100, 4_000), (1_100, 4_000)];
    let util_at = |q_us: u64| -> Option<Rat> {
        let scale = QuantumScale::new(q_us);
        let mut total = Rat::ZERO;
        for &(wcet, period) in &tasks {
            let (e, p) = scale.weight_quanta(wcet, period)?;
            total += Rat::new(e, p);
        }
        Some(total)
    };
    let coarse = util_at(1_000).unwrap(); // 2/4 each ⇒ 3/2
    let fine = util_at(250).unwrap(); // 5/16 each ⇒ 15/16
    assert!(coarse > Rat::ONE);
    assert!(fine <= Rat::ONE);
}
