//! Failure injection: the library must *reject* malformed inputs loudly
//! rather than simulate garbage.
//!
//! Covers, through the public API: model-constraint violations
//! (Eqns (5), (6), GIS ordering), invalid weights, cost models emitting
//! values outside `(0, 1]`, invalid shifts, and detection of overload.

use pfair::prelude::*;

#[test]
fn builder_rejects_every_model_violation() {
    let mut b = TaskSystemBuilder::new();
    let t = b.add_task(Weight::new(1, 2));

    // Index 0.
    assert!(matches!(
        b.push(t, 0, 0, None),
        Err(ModelError::ZeroIndex { .. })
    ));
    // Eligibility after release (Eq. 6).
    assert!(matches!(
        b.push(t, 1, 0, Some(5)),
        Err(ModelError::EligibilityAfterRelease { .. })
    ));
    b.push(t, 2, 1, None).unwrap();
    // Reordered / duplicate index.
    assert!(matches!(
        b.push(t, 2, 1, None),
        Err(ModelError::NonIncreasingIndex { .. })
    ));
    assert!(matches!(
        b.push(t, 1, 1, None),
        Err(ModelError::NonIncreasingIndex { .. })
    ));
    // Decreasing offset (Eq. 5 / GIS separation).
    assert!(matches!(
        b.push(t, 3, 0, None),
        Err(ModelError::DecreasingOffset { .. })
    ));
    // Unknown task id.
    assert!(matches!(
        b.push(TaskId(42), 1, 0, None),
        Err(ModelError::UnknownTask { .. })
    ));
    // Errors are rendered usefully.
    let msg = b.push(t, 3, 0, None).unwrap_err().to_string();
    assert!(msg.contains("Eq. 5"), "got: {msg}");
}

#[test]
fn invalid_weights_rejected() {
    for (e, p) in [(0i64, 4i64), (5, 4), (-1, 4), (1, 0), (1, -3)] {
        assert!(Weight::checked(e, p).is_err(), "{e}/{p} accepted");
    }
}

#[test]
fn structured_release_propagates_errors() {
    use pfair::taskmodel::release::{structured, ReleaseSpec};
    // Invalid weight in a spec.
    assert!(structured(&[ReleaseSpec::periodic("X", 9, 4)], 8).is_err());
    // Non-monotone delays violate Eq. (5).
    let bad = ReleaseSpec {
        name: "X",
        e: 1,
        p: 2,
        delays: &[(2, 3), (3, 1)],
        drops: &[],
        early: 0,
    };
    assert!(structured(&[bad], 20).is_err());
}

#[test]
fn cost_model_outside_unit_interval_panics() {
    struct Broken(Rat);
    impl CostModel for Broken {
        fn cost(&mut self, _: &TaskSystem, _: SubtaskRef) -> Rat {
            self.0
        }
    }
    let sys = release::periodic(&[(1, 2)], 4);
    for bad in [Rat::ZERO, Rat::new(-1, 2), Rat::new(3, 2)] {
        let result = std::panic::catch_unwind(|| {
            let _ = simulate_dvq(&sys, 1, &Pd2, &mut Broken(bad));
        });
        assert!(result.is_err(), "cost {bad} accepted");
    }
}

#[test]
fn zero_processors_rejected() {
    let sys = release::periodic(&[(1, 2)], 4);
    for f in [
        (|s: &TaskSystem| {
            let _ = simulate_sfq(s, 0, &Pd2, &mut FullQuantum);
        }) as fn(&TaskSystem),
        (|s: &TaskSystem| {
            let _ = simulate_dvq(s, 0, &Pd2, &mut FullQuantum);
        }) as fn(&TaskSystem),
        (|s: &TaskSystem| {
            let _ = simulate_staggered(s, 0, &Pd2, &mut FullQuantum);
        }) as fn(&TaskSystem),
    ] {
        assert!(std::panic::catch_unwind(|| f(&sys)).is_err());
    }
}

#[test]
fn invalid_shift_rejected() {
    let sys = release::periodic(&[(1, 2)], 4);
    // Eligibility shifted past release.
    assert!(std::panic::catch_unwind(|| sys.shifted(0, 1)).is_err());
    // Window shifted before time 0.
    assert!(std::panic::catch_unwind(|| sys.shifted(-1, -1)).is_err());
}

#[test]
fn overload_is_detected_not_hidden() {
    // The simulators never deadlock or drop subtasks on overload: they
    // place everything and the analyzers report the damage.
    let sys = release::periodic(&[(1, 1), (1, 1), (1, 1)], 6);
    assert!(!sys.is_feasible(2));
    let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    assert_eq!(sched.placements().len(), sys.num_subtasks());
    let t = tardiness_stats(&sys, &sched);
    assert!(t.max.is_positive());
    // Structural invariants hold even when overloaded.
    assert!(check_structural(&sys, &sched).is_empty());
}

#[test]
fn trace_bundle_rejects_corrupt_json() {
    assert!(TraceBundle::from_json("{\"nonsense\": true}").is_err());
    assert!(TraceBundle::from_json("not json at all").is_err());
}
