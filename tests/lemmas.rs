//! Statistical validation of Lemma 1 / Property PB over randomized,
//! adversarial DVQ workloads.
//!
//! Lemma 1 characterizes exactly when PD²-DVQ can leave a ready,
//! higher-priority subtask waiting at an integral boundary: only when the
//! waiter just became ready via a predecessor finishing at that boundary,
//! and only if matching newly-eligible, at-least-as-high-priority subtasks
//! take the processors at that instant. `check_lemma1` replays these
//! conditions on simulated schedules; any violation would mean either the
//! simulator or the priority implementation diverges from the paper's
//! model.

use pfair::analysis::lemmas::check_lemma1;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen, AdversarialYield, UniformCost};

fn random_system(m: u32, seed: u64, horizon: i64, gis: bool) -> TaskSystem {
    let ws = random_weights(&TaskGenConfig::full(m, 10), seed);
    let cfg = if gis {
        ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon,
            delay_percent: 15,
            drop_percent: 8,
            early: 0,
            max_join: 0,
        }
    } else {
        ReleaseConfig::periodic(horizon)
    };
    releasegen::generate(&ws, &cfg, seed)
}

#[test]
fn lemma1_holds_on_adversarial_periodic_systems() {
    for m in [2u32, 3, 4] {
        for seed in 0..10u64 {
            let sys = random_system(m, 40_000 + seed, 16, false);
            let mut cost = AdversarialYield::new(Rat::new(1, 64), 70, seed);
            let sched = simulate_dvq(&sys, m, &Pd2, &mut cost);
            let horizon = sched.makespan().ceil() + 1;
            let violations = check_lemma1(&sys, &sched, &Pd2, horizon);
            assert!(violations.is_empty(), "m={m} seed={seed}: {violations:?}");
        }
    }
}

#[test]
fn lemma1_holds_on_gis_systems_with_uniform_costs() {
    for seed in 0..10u64 {
        let sys = random_system(3, 50_000 + seed, 16, true);
        let mut cost = UniformCost::new(Rat::new(1, 3), seed);
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut cost);
        let horizon = sched.makespan().ceil() + 1;
        let violations = check_lemma1(&sys, &sched, &Pd2, horizon);
        assert!(violations.is_empty(), "seed={seed}: {violations:?}");
    }
}

#[test]
fn lemma1_premises_are_actually_exercised() {
    // Guard against vacuous success: on the Fig. 3 instance the premises
    // fire (B_2 waits past t = 3 while A_1 executes), so the checker must
    // be walking nonempty U sets there. We detect that indirectly: the
    // predecessor-blocking event exists, and the checker still reports no
    // violation.
    use pfair::taskmodel::release::{structured, ReleaseSpec};
    let sys = structured(
        &[
            ReleaseSpec::periodic("A", 1, 84),
            ReleaseSpec {
                name: "B",
                e: 1,
                p: 3,
                delays: &[],
                drops: &[],
                early: 1,
            },
            ReleaseSpec::periodic("C", 1, 2),
            ReleaseSpec::periodic("D", 2, 3),
            ReleaseSpec::periodic("E", 2, 3),
            ReleaseSpec::periodic("F", 3, 4),
        ],
        6,
    )
    .unwrap();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta);
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut costs);
    let pred_blocking = detect_blocking(&sys, &sched, &Pd2)
        .iter()
        .any(|e| e.kind == BlockingKind::Predecessor);
    assert!(pred_blocking, "premise scenario did not materialize");
    assert!(check_lemma1(&sys, &sched, &Pd2, 8).is_empty());
}
