//! Machine-checked reproductions of every figure of the paper.
//!
//! | test prefix | paper artifact |
//! |---|---|
//! | `fig1_*` | Fig. 1: windows of a weight-3/4 task (periodic / IS / GIS) |
//! | `fig2_*` | Fig. 2: SFQ vs DVQ vs PD^B on the 6-task, M = 2 example |
//! | `fig3_*` | Fig. 3: predecessor blocking (reconstructed instance; see EXPERIMENTS.md) |
//! | `fig4_*` | Fig. 4: Aligned / Olapped / Free classification + S_B postponement |
//! | `fig6_*` | Fig. 6: PD^B one-quantum miss, right-shifted PD², k-compliance |
//!
//! (Fig. 5 and Fig. 7 illustrate proof steps of Lemmas 4 and 6; their
//! content is exercised by `fig4_*`/`fig6_*` and `tests/theorems.rs`.)

use pfair::prelude::*;

/// The task set of Figs. 2 and 6: A, B, C at weight 1/6; D, E, F at 1/2;
/// total utilization 2 on M = 2 processors.
fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
    sys.find(SubtaskId {
        task: TaskId(task),
        index,
    })
    .unwrap()
}

// ---------------------------------------------------------------- Fig. 1

#[test]
fn fig1a_periodic_windows_of_weight_3_4() {
    let sys = release::periodic(&[(3, 4)], 8);
    let sts = sys.task_subtasks(TaskId(0));
    // First job: [0,2), [1,3), [2,4); second job repeats shifted by 4.
    let expected = [(0, 2), (1, 3), (2, 4), (4, 6), (5, 7), (6, 8)];
    assert_eq!(sts.len(), 6);
    for (s, &(r, d)) in sts.iter().zip(&expected) {
        assert_eq!(s.pf_window(), (r, d), "subtask {:?}", s.id);
        assert_eq!(s.eligible, r);
    }
}

#[test]
fn fig1b_is_task_with_late_t3() {
    // T_3 becomes eligible (is released) one time unit late; later
    // subtasks inherit the shift.
    let spec = pfair::taskmodel::release::ReleaseSpec {
        name: "T",
        e: 3,
        p: 4,
        delays: &[(3, 1)],
        drops: &[],
        early: 0,
    };
    let sys = pfair::taskmodel::release::structured(&[spec], 9).unwrap();
    let sts = sys.task_subtasks(TaskId(0));
    assert_eq!(sts[0].pf_window(), (0, 2));
    assert_eq!(sts[1].pf_window(), (1, 3));
    assert_eq!(sts[2].pf_window(), (3, 5)); // right-shifted by θ = 1
    assert_eq!(sts[3].pf_window(), (5, 7));
    // Eq. (5): offsets are monotone.
    for w in sts.windows(2) {
        assert!(w[0].theta <= w[1].theta);
    }
}

#[test]
fn fig1c_gis_task_with_absent_t2() {
    // T_2 absent and T_3 eligible one unit late.
    let spec = pfair::taskmodel::release::ReleaseSpec {
        name: "T",
        e: 3,
        p: 4,
        delays: &[(3, 1)],
        drops: &[2],
        early: 0,
    };
    let sys = pfair::taskmodel::release::structured(&[spec], 9).unwrap();
    let sts = sys.task_subtasks(TaskId(0));
    let indices: Vec<u64> = sts.iter().map(|s| s.id.index).collect();
    assert_eq!(&indices[..3], &[1, 3, 4]);
    assert_eq!(sts[1].pf_window(), (3, 5));
    // T_3's predecessor (previously released subtask) is T_1.
    let t3 = find(&sys, 0, 3);
    let t1 = find(&sys, 0, 1);
    assert_eq!(sys.subtask(t3).pred, Some(t1));
    // GIS separation: r(T_3) − r(T_1) ≥ ⌊2/wt⌋ − ⌊0/wt⌋ = 2.
    assert!(sys.subtask(t3).release - sys.subtask(t1).release >= 2);
}

#[test]
fn fig1_window_diagram_renders() {
    let sys = release::periodic(&[(3, 4)], 4);
    let art = render_windows(&sys, TaskId(0), 8);
    assert!(art.contains("wt 3/4"));
    assert!(art.contains("[===)"));
}

// ---------------------------------------------------------------- Fig. 2

#[test]
fn fig2a_sfq_pd2_schedule_meets_all_deadlines() {
    let sys = fig2_system();
    let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
    let expected = [
        // (task, index, slot)
        (3, 1, 0), // D1
        (4, 1, 0), // E1
        (5, 1, 1), // F1
        (0, 1, 1), // A1
        (3, 2, 2), // D2
        (4, 2, 2), // E2
        (5, 2, 3), // F2
        (1, 1, 3), // B1
        (3, 3, 4), // D3
        (4, 3, 4), // E3
        (5, 3, 5), // F3
        (2, 1, 5), // C1
    ];
    for &(task, index, slot) in &expected {
        assert_eq!(
            sched.start(find(&sys, task, index)),
            Rat::int(slot),
            "task {task} subtask {index}"
        );
    }
    assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ZERO);
}

#[test]
fn fig2b_dvq_pd2_schedule_with_delta_yields() {
    // A_1 and F_1 execute for 1 − δ; B_1 and C_1 grab the processors at
    // 2 − δ; D_2/E_2 are eligibility-blocked; F_2 misses by 1 − δ.
    let sys = fig2_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);

    assert_eq!(sched.start(find(&sys, 1, 1)), Rat::int(2) - delta);
    assert_eq!(sched.start(find(&sys, 2, 1)), Rat::int(2) - delta);
    assert_eq!(sched.start(find(&sys, 3, 2)), Rat::int(3) - delta);
    assert_eq!(sched.start(find(&sys, 4, 2)), Rat::int(3) - delta);

    let stats = tardiness_stats(&sys, &sched);
    assert_eq!(stats.max, Rat::ONE - delta);
    assert_eq!(sys.subtask(stats.worst.unwrap()).id.task, TaskId(5));

    // The blocking analysis labels D_2's wait as eligibility blocking.
    let events = detect_blocking(&sys, &sched, &Pd2);
    let d2_event = events
        .iter()
        .find(|e| e.victim == find(&sys, 3, 2))
        .expect("D_2 blocked");
    assert_eq!(d2_event.kind, BlockingKind::Eligibility);
}

#[test]
fn fig2c_pdb_postpones_fig2b_to_slot_boundaries() {
    // PD^B in the SFQ model makes the δ → 0 limit decisions of Fig. 2(b):
    // B_1, C_1 occupy slot 2 (blocking D_2, E_2) and F_2 slips to slot 4,
    // missing its deadline by exactly one quantum.
    let sys = fig2_system();
    let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    let expected = [
        (3, 1, 0), // D1
        (4, 1, 0), // E1
        (5, 1, 1), // F1
        (0, 1, 1), // A1
        (1, 1, 2), // B1 (DB beats newly-eligible D2/E2)
        (2, 1, 2), // C1
        (3, 2, 3), // D2
        (4, 2, 3), // E2
        (5, 2, 4), // F2 — misses d = 4 by one quantum
        (3, 3, 4), // D3
        (4, 3, 5), // E3
        (5, 3, 5), // F3
    ];
    for &(task, index, slot) in &expected {
        assert_eq!(
            sched.start(find(&sys, task, index)),
            Rat::int(slot),
            "task {task} subtask {index}"
        );
    }
    let stats = tardiness_stats(&sys, &sched);
    assert_eq!(stats.max, Rat::ONE);
    assert_eq!(stats.misses, 1);
}

#[test]
fn fig2_dvq_limit_matches_pdb_slot_assignment() {
    // The reduction step of §3: as δ → 0, each DVQ allocation of
    // Fig. 2(b) lands in the slot in which PD^B schedules the same
    // subtask in Fig. 2(c) (allocations commencing mid-slot postpone to
    // the next boundary — the Charged construction).
    let sys = fig2_system();
    let delta = Rat::new(1, 1024);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
    let pdb = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    for (st, _) in sys.iter_refs() {
        let limit_slot = dvq.start(st).ceil(); // δ → 0: 2 − δ ↦ 2
        assert_eq!(
            Rat::int(limit_slot),
            pdb.start(st),
            "{:?} dvq start {} vs pdb {}",
            sys.subtask(st).id,
            dvq.start(st),
            pdb.start(st)
        );
    }
}

// --------------------------------- BF vs PD²-DVQ context-switch overheads

/// Boundary-Fair on the Fig. 2 task set versus PD²-DVQ with the figure's
/// δ-yields: BF incurs strictly less preemption overhead. On this task set
/// every subtask is a single unit quantum, so processor-*local* switch
/// counts are structurally forced equal (each occupied slot is its own
/// chunk under any engine); the overhead BF eliminates shows up entirely
/// in cross-processor resumptions. A migration is the expensive kind of
/// context switch — the incoming task's state lives in another
/// processor's cache — so the preemption cost below counts it on top of
/// the local switch. The full comparison is snapshot-tested verbatim
/// against `figures/fig2_bf_vs_dvq.snapshot`.
#[test]
fn fig2_bf_strictly_cheaper_preemptions_than_dvq() {
    let horizon = 24;
    let sys = release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        horizon,
    );
    let delta = Rat::new(1, 4);
    let mk = || {
        FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta)
    };
    let dvq = simulate_dvq(&sys, 2, &Pd2, &mut mk());
    let bf = simulate_bf(&sys, 2, &mut mk());

    let mut lines = format!(
        "BF vs PD²-DVQ on the Fig. 2 task set (horizon {horizon}, δ = 1/4 yields on A₁, F₁)\n\n\
         engine    switches  migrations  preemption-cost  max-tardiness\n"
    );
    let mut cost = |name: &str, sched: &Schedule| {
        let sw = context_switch_stats(&sys, sched);
        let mig = migration_stats(&sys, sched);
        let tard = tardiness_stats(&sys, sched);
        let total = sw.switches() + mig.migrations;
        lines += &format!(
            "{name:<8}  {:>8}  {:>10}  {:>15}  {:>13}\n",
            sw.switches(),
            mig.migrations,
            total,
            tard.max.to_string()
        );
        total
    };
    let dvq_cost = cost("PD²-DVQ", &dvq);
    let bf_cost = cost("BF", &bf);
    assert!(
        bf_cost < dvq_cost,
        "BF preemption cost {bf_cost} must beat DVQ's {dvq_cost}"
    );
    // BF's wrap-around tape pins every task of this set to one processor.
    assert_eq!(migration_stats(&sys, &bf).migrations, 0);
    assert_eq!(tardiness_stats(&sys, &bf).max, Rat::ZERO);

    let golden = include_str!("../figures/fig2_bf_vs_dvq.snapshot");
    assert_eq!(lines, golden, "regenerate figures/fig2_bf_vs_dvq.snapshot");
}

// ---------------------------------------------------------------- Fig. 3

/// A concrete instance exhibiting the predecessor-blocking scenario of
/// Fig. 3 (reconstructed: the paper's figure text fixes the phenomenon but
/// not every weight; see EXPERIMENTS.md F3). Six tasks on M = 3:
/// at slot 2 {B_1, E_2, F_3} run; E_2 and F_3 yield early and the freed
/// processors go to C_2 and A_1 (lower priority than B_2); B_1 runs to the
/// boundary; at t = 3 its processor goes to the newly-eligible D_3, so
/// B_2 is predecessor-blocked by A_1.
fn fig3_system() -> TaskSystem {
    use pfair::taskmodel::release::{structured, ReleaseSpec};
    structured(
        &[
            ReleaseSpec::periodic("A", 1, 84),
            // B: weight 1/3, early-released by one slot so e(B_2) = 2 < 3.
            ReleaseSpec {
                name: "B",
                e: 1,
                p: 3,
                delays: &[],
                drops: &[],
                early: 1,
            },
            ReleaseSpec::periodic("C", 1, 2),
            ReleaseSpec::periodic("D", 2, 3),
            ReleaseSpec::periodic("E", 2, 3),
            ReleaseSpec::periodic("F", 3, 4),
        ],
        6,
    )
    .unwrap()
}

#[test]
fn fig3_predecessor_blocking_in_dvq() {
    let sys = fig3_system();
    assert!(sys.is_feasible(3));
    let delta = Rat::new(1, 4);
    // E_2 and F_3 (scheduled in slot 2) yield before the end of the slot.
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta) // E_2
        .with(TaskId(5), 3, Rat::ONE - delta); // F_3
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut costs);

    // Slot-2 occupancy: B_1, E_2, F_3.
    assert_eq!(sched.start(find(&sys, 1, 1)), Rat::int(2)); // B_1
    assert_eq!(sched.start(find(&sys, 4, 2)), Rat::int(2)); // E_2
    assert_eq!(sched.start(find(&sys, 5, 3)), Rat::int(2)); // F_3
                                                            // The early-freed processors go to C_2 and A_1 at 3 − δ.
    assert_eq!(sched.start(find(&sys, 2, 2)), Rat::int(3) - delta); // C_2
    assert_eq!(sched.start(find(&sys, 0, 1)), Rat::int(3) - delta); // A_1
                                                                    // At t = 3, B_1's processor goes to the newly-eligible D_3 (higher
                                                                    // priority than B_2)...
    assert_eq!(sched.start(find(&sys, 3, 3)), Rat::int(3)); // D_3
                                                            // ...so B_2, ready at 3 via its predecessor, waits behind A_1.
    let b2 = find(&sys, 1, 2);
    assert!(sched.start(b2) > Rat::int(3));

    let events = detect_blocking(&sys, &sched, &Pd2);
    let ev = events
        .iter()
        .find(|e| e.victim == b2)
        .expect("B_2 must be predecessor-blocked");
    assert_eq!(ev.kind, BlockingKind::Predecessor);
    assert_eq!(ev.ready_at, Rat::int(3));
    let a1 = find(&sys, 0, 1);
    assert!(
        ev.blockers.contains(&a1),
        "A_1 blocks B_2: {:?}",
        ev.blockers
    );
}

#[test]
fn fig3_property_pb_holds() {
    // Property PB: when subtasks are predecessor-blocked at t, at least as
    // many subtasks with e = t and equal-or-higher priority are scheduled
    // at t. In our instance U = {B_2} and V ∋ D_3 with e(D_3) = 3,
    // S(D_3) = 3, D_3 ⪯ B_2.
    let sys = fig3_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta);
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut costs);
    let b2 = find(&sys, 1, 2);
    let d3 = find(&sys, 3, 3);
    assert_eq!(sys.subtask(d3).eligible, 3);
    assert_eq!(sched.start(d3), Rat::int(3));
    assert!(Pd2.precedes_eq(&sys, d3, b2));
}

#[test]
fn fig3b_no_blocking_when_no_early_yield() {
    // Fig. 3(b)'s point: without the early yields there is no priority
    // inversion — B_2 may still wait, but only behind strictly
    // higher-priority work, which is ordinary contention, not blocking.
    let sys = fig3_system();
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut FullQuantum);
    let b2 = find(&sys, 1, 2);
    // B_2 starts on a slot boundary (full costs ⇒ SFQ-like behaviour)...
    assert!(sched.start(b2).is_integer());
    // ...and no inversion is reported anywhere in the schedule.
    let events = detect_blocking(&sys, &sched, &Pd2);
    assert!(events.is_empty(), "unexpected inversions: {events:?}");
    // And nothing misses a deadline.
    assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ZERO);
}

#[test]
fn fig3c_early_yield_of_b1_trades_predecessor_for_eligibility_blocking() {
    // Fig. 3(c): if B_1 itself yields early, B_2 starts before D_3's
    // eligibility and D_3 (higher priority) is the one delayed at t = 3.
    let sys = fig3_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta) // E_2
        .with(TaskId(5), 3, Rat::ONE - delta) // F_3
        .with(TaskId(1), 1, Rat::ONE - delta); // B_1 yields too
    let sched = simulate_dvq(&sys, 3, &Pd2, &mut costs);
    let b2 = find(&sys, 1, 2);
    // B_2 now starts before time 3 (its predecessor freed early)…
    assert!(sched.start(b2) < Rat::int(3));
    // …and D_3 cannot start at 3 (all processors busy mid-quantum).
    let d3 = find(&sys, 3, 3);
    assert!(sched.start(d3) > Rat::int(3));
    let events = detect_blocking(&sys, &sched, &Pd2);
    let ev = events.iter().find(|e| e.victim == d3).expect("D_3 blocked");
    assert_eq!(ev.kind, BlockingKind::Eligibility);
}

// ---------------------------------------------------------------- Fig. 4

#[test]
fn fig4_classification_and_postponement() {
    let sys = fig2_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);

    let classes: std::collections::HashMap<_, _> = classify_subtasks(&sched).into_iter().collect();
    // D_1 commences at 0: Aligned. B_1 commences at 2 − δ with cost 1:
    // Olapped (straddles t = 2).
    assert_eq!(classes[&find(&sys, 3, 1)], SubtaskClass::Aligned);
    assert_eq!(classes[&find(&sys, 1, 1)], SubtaskClass::Olapped);
    // A_1 commences at 1 (integral): Aligned even though it yields early.
    assert_eq!(classes[&find(&sys, 0, 1)], SubtaskClass::Aligned);

    // Lemma 3: postponed (S_B) times never precede the DVQ times.
    for (st, postponed) in postpone_charged(&sched) {
        assert!(postponed >= sched.start(st));
        assert!(postponed.is_integer());
    }
}

#[test]
fn fig4_free_subtasks_exist_when_quanta_fit_within_slots() {
    // Two weight-1/2 tasks sharing one processor with half-cost quanta:
    // the second task's quantum runs [1/2, 1) — entirely inside slot 0 —
    // and is Free.
    let sys = release::periodic(&[(1, 2), (1, 2)], 4);
    let mut half = ScaledCost(Rat::new(1, 2));
    let sched = simulate_dvq(&sys, 1, &Pd2, &mut half);
    let classes = classify_subtasks(&sched);
    assert!(classes.iter().any(|&(_, c)| c == SubtaskClass::Free));
    assert!(classes.iter().any(|&(_, c)| c == SubtaskClass::Aligned));
    // Every subtask gets exactly one class.
    assert_eq!(classes.len(), sys.num_subtasks());
}

// ---------------------------------------------------------------- Fig. 6

#[test]
fn fig6a_pdb_f2_misses_by_exactly_one_quantum() {
    let sys = fig2_system();
    let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
    let f2 = find(&sys, 5, 2);
    assert_eq!(sched.completion(f2), Rat::int(5));
    assert_eq!(sys.subtask(f2).deadline, 4);
    let stats = tardiness_stats(&sys, &sched);
    assert_eq!(stats.max, Rat::ONE);
}

#[test]
fn fig6b_right_shifted_system_meets_all_deadlines_under_pd2() {
    // τ: every IS-window of τ^B right-shifted one slot. PD² (optimal)
    // misses nothing; viewed against τ^B's original deadlines that is
    // exactly a one-quantum tardiness bound.
    let sys_b = fig2_system();
    let tau = sys_b.shifted(1, 1);
    let sched = simulate_sfq(&tau, 2, &Pd2, &mut FullQuantum);
    assert!(check_window_containment(&tau, &sched).is_empty());
}

#[test]
fn fig6c_k_compliant_systems_all_schedulable() {
    let sys_b = fig2_system();
    let sched_b = simulate_sfq_pdb(&sys_b, 2, &mut FullQuantum);
    let order = ranks(&sched_b);
    // The paper's inset (c) is the k = 4 stage; we walk all of them.
    for k in 0..=sys_b.num_subtasks() {
        let tau_k = k_compliant_system(&sys_b, &order, k);
        let sched = simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum);
        assert!(
            check_window_containment(&tau_k, &sched).is_empty(),
            "τ^{k} missed a deadline"
        );
    }
}

// ------------------------------------- Streaming (observer) golden metrics

/// Fig. 2(a) under streaming observation: the metrics summary produced
/// *during* the SFQ run is snapshot-tested verbatim. The same text (plus
/// the CLI header) is what `pfairsim run --metrics` prints, and CI diffs
/// that against a checked-in snapshot.
#[test]
fn fig2_streaming_metrics_golden_snapshot() {
    let sys = fig2_system();
    let mut obs = BlockingObserver::with_inner(&sys, &Pd2, MetricsObserver::new(2));
    let _ = simulate_sfq_observed(&sys, 2, &Pd2, &mut FullQuantum, &mut obs);
    let (records, metrics) = obs.into_parts();
    assert!(records.is_empty(), "SFQ full quanta admit no inversions");
    let golden = "\
quanta: 12 started, 12 completed over 6 ticks (end 6)
deadlines: 12 hit, 0 missed (total tardiness 0, max 0)
blocking: 0 eligibility, 0 predecessor
histogram: [12, 0, 0, 0, 0, 0, 0, 0] (bucket 0 = on time, width 1/7)
proc 0: busy 6, idle 0, waste 0, 5 switches
proc 1: busy 6, idle 0, waste 0, 5 switches
";
    assert_eq!(metrics.summary(), golden);
}

/// Fig. 3 under streaming observation: the run emits exactly one
/// predecessor-blocking record — B₂, ready at t = 3 behind its
/// predecessor, blocked by the lower-priority A₁.
#[test]
fn fig3_streaming_blocking_golden() {
    let sys = fig3_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(4), 2, Rat::ONE - delta)
        .with(TaskId(5), 3, Rat::ONE - delta);
    let mut obs = BlockingObserver::new(&sys, &Pd2);
    let _ = simulate_dvq_observed(&sys, 3, &Pd2, &mut costs, &mut obs);
    let (records, _) = obs.into_parts();
    let pred: Vec<&BlockingRecord> = records
        .iter()
        .filter(|r| r.kind == InversionKind::Predecessor)
        .collect();
    assert_eq!(
        pred.len(),
        1,
        "exactly one predecessor inversion: {records:?}"
    );
    let b2 = find(&sys, 1, 2);
    let a1 = find(&sys, 0, 1);
    assert_eq!(pred[0].victim, b2);
    assert_eq!(pred[0].ready_at, Rat::int(3));
    assert!(pred[0].scheduled_at > Rat::int(3));
    assert!(pred[0].blockers.contains(&a1));
}

/// Fig. 6(a) under streaming observation: PD^B's single miss — F₂, by
/// exactly one quantum — is visible live in the metrics stream.
#[test]
fn fig6_streaming_f2_misses_by_one_quantum() {
    let sys = fig2_system();
    let mut metrics = MetricsObserver::new(2);
    let _ = simulate_sfq_pdb_observed(&sys, 2, &mut FullQuantum, &mut metrics);
    assert_eq!(metrics.deadline_misses(), 1);
    assert_eq!(metrics.max_tardiness(), Rat::ONE);
    assert_eq!(metrics.total_tardiness(), Rat::ONE);
    assert_eq!(
        metrics.worst(),
        Some(SubtaskId {
            task: TaskId(5),
            index: 2
        })
    );
    assert_eq!(metrics.deadline_hits(), 11);
}

// ------------------------------------------------- Gantt renderings exist

#[test]
fn figures_render_to_gantt_charts() {
    let sys = fig2_system();
    let delta = Rat::new(1, 4);
    let mut costs = FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta);
    let opts = GanttOptions {
        resolution: 4,
        horizon: 6,
    };
    let sfq = render_gantt(&sys, &simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum), &opts);
    let dvq = render_gantt(&sys, &simulate_dvq(&sys, 2, &Pd2, &mut costs), &opts);
    let pdb = render_gantt(&sys, &simulate_sfq_pdb(&sys, 2, &mut FullQuantum), &opts);
    for art in [&sfq, &dvq, &pdb] {
        assert_eq!(art.lines().count(), 4);
    }
    assert_ne!(sfq, dvq);
    assert_ne!(sfq, pdb);
}
