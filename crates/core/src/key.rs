//! Priority orders as static, totally ordered **keys**.
//!
//! The comparators in this crate ([`Pd2`](crate::Pd2), [`Epdf`](crate::Epdf),
//! [`Pd`](crate::Pd)) re-read the compared subtasks' parameters from the
//! [`TaskSystem`] on every call. That is the right shape for *defining* the
//! orders, but in the simulators' hot loops the same subtask is compared
//! many times, and each comparison chases `SubtaskRef → Subtask → Task`
//! twice. This module precomputes, once per subtask, a small `Copy` key
//! whose derived-free custom `Ord` reproduces the comparator's total order
//! exactly — so ready queues can be binary heaps and slot selection can
//! sort plain keys.
//!
//! # What is precomputed
//!
//! Every key carries the θ-adjusted parameters its order reads — pseudo-
//! deadline, b-bit, group deadline, task weight — plus the subtask id for
//! the deterministic final tie-break. Since a subtask's parameters never
//! change after release, a key is valid for the lifetime of the system and
//! a [`KeyCache`] built once (O(n)) serves every subsequent comparison in
//! O(1) with no pointer chasing.
//!
//! # Why the conditional group deadline needs a custom `Ord`
//!
//! PD²'s third rule compares group deadlines **only when both b-bits are
//! 1**. A naive lexicographic tuple `(d, ¬b, −D, …)` cannot express that:
//! for a b = 0 pair it would still let `D` discriminate, inverting ties the
//! comparator leaves to the weight/id stages. [`Pd2Key`]'s manual `Ord`
//! gates the `D` stage on `self.bbit && other.bbit`, exactly mirroring
//! [`Pd2::cmp_strict`](crate::PriorityOrder::cmp_strict).
//!
//! # Equivalence obligation
//!
//! Each key type is *proven against its comparator*, not trusted: unit and
//! property tests below (and cross-crate integration tests) require
//! `key(a).cmp(&key(b)) == order.cmp(sys, a, b)` for every pair — the
//! simulators additionally assert schedule-for-schedule identity on the
//! paper's golden traces. Any change to a comparator must be mirrored here
//! and re-proven.

use core::cmp::Ordering;

use pfair_taskmodel::window;
use pfair_taskmodel::{SubtaskId, SubtaskRef, TaskSystem, Weight};

/// A precomputed priority key: a `Copy` value whose `Ord` reproduces one
/// [`PriorityOrder`](crate::PriorityOrder)'s total order (smaller = higher
/// priority, i.e. scheduled first).
pub trait SubtaskKey: Copy + Ord + core::fmt::Debug {
    /// Builds the key of `st` from its precomputed (θ-adjusted) parameters.
    fn of_subtask(sys: &TaskSystem, st: SubtaskRef) -> Self;

    /// The key's leading comparison stage: the θ-adjusted pseudo-deadline.
    ///
    /// Every order in this module compares deadlines first, so a ready
    /// queue may bucket subtasks by this integer and run the remaining
    /// stages (b-bit, group deadline, weight, id) only on bucket
    /// collisions — see the simulators' bucketed ready sets.
    fn deadline(&self) -> i64;
}

/// The PD² total order as a key. Smaller = higher priority, matching
/// `PriorityOrder::cmp` (deadline asc; b = 1 first; for b = 1 pairs,
/// group deadline desc; then heavier weight first; then `(task, index)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pd2Key {
    /// Pseudo-deadline `d(T_i)` (θ-adjusted).
    pub deadline: i64,
    /// The b-bit.
    pub bbit: bool,
    /// Group deadline `D(T_i)` (θ-adjusted; 0 for light tasks).
    pub group_deadline: i64,
    /// Task weight (for the deterministic residual tie-break).
    pub weight: Weight,
    /// Subtask identity (final tie-break).
    pub id: SubtaskId,
}

impl Pd2Key {
    /// Builds the key of subtask `index` of a task with `weight` and IS
    /// offset `theta`, from the window formulas directly (no `TaskSystem`
    /// needed — the online scheduler has none).
    #[must_use]
    pub fn of(weight: Weight, id: SubtaskId, index: u64, theta: i64) -> Pd2Key {
        let gd = window::group_deadline(weight, index);
        Pd2Key {
            deadline: theta + window::deadline(weight, index),
            bbit: window::bbit(weight, index),
            group_deadline: if gd == 0 { 0 } else { theta + gd },
            weight,
            id,
        }
    }
}

impl PartialOrd for Pd2Key {
    fn partial_cmp(&self, other: &Pd2Key) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pd2Key {
    fn cmp(&self, other: &Pd2Key) -> Ordering {
        self.deadline
            .cmp(&other.deadline)
            // b = 1 first.
            .then_with(|| other.bbit.cmp(&self.bbit))
            // Group deadline only when both b-bits are set; larger first.
            .then_with(|| {
                if self.bbit && other.bbit {
                    other.group_deadline.cmp(&self.group_deadline)
                } else {
                    Ordering::Equal
                }
            })
            // Heavier weight first, then identity.
            .then_with(|| other.weight.cmp(&self.weight))
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl SubtaskKey for Pd2Key {
    fn of_subtask(sys: &TaskSystem, st: SubtaskRef) -> Pd2Key {
        let s = sys.subtask(st);
        Pd2Key {
            deadline: s.deadline,
            bbit: s.bbit,
            group_deadline: s.group_deadline,
            weight: sys.task(s.id.task).weight,
            id: s.id,
        }
    }

    fn deadline(&self) -> i64 {
        self.deadline
    }
}

/// The EPDF total order as a key: deadline asc, then (from the shared
/// deterministic refinement in `PriorityOrder::cmp`) heavier weight first,
/// then `(task, index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpdfKey {
    /// Pseudo-deadline `d(T_i)` (θ-adjusted).
    pub deadline: i64,
    /// Task weight (deterministic residual tie-break).
    pub weight: Weight,
    /// Subtask identity (final tie-break).
    pub id: SubtaskId,
}

impl PartialOrd for EpdfKey {
    fn partial_cmp(&self, other: &EpdfKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EpdfKey {
    fn cmp(&self, other: &EpdfKey) -> Ordering {
        self.deadline
            .cmp(&other.deadline)
            .then_with(|| other.weight.cmp(&self.weight))
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl SubtaskKey for EpdfKey {
    fn of_subtask(sys: &TaskSystem, st: SubtaskRef) -> EpdfKey {
        let s = sys.subtask(st);
        EpdfKey {
            deadline: s.deadline,
            weight: sys.task(s.id.task).weight,
            id: s.id,
        }
    }

    fn deadline(&self) -> i64 {
        self.deadline
    }
}

/// The PD total order as a key: PD²'s three rules, then heavy-before-light,
/// then heavier weight first, then `(task, index)`. (The `weight` stage of
/// the shared refinement is already decided by PD's own weight tie-break,
/// so it adds nothing further.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PdKey {
    /// The PD² stages (deadline, b-bit, conditional group deadline) plus
    /// weight and id; PD's extra stages slot in between.
    pub pd2: Pd2Key,
    /// Whether the task is heavy (`wt ≥ 1/2`): heavy wins PD's first
    /// refinement stage.
    pub heavy: bool,
}

impl PartialOrd for PdKey {
    fn partial_cmp(&self, other: &PdKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PdKey {
    fn cmp(&self, other: &PdKey) -> Ordering {
        self.pd2
            .deadline
            .cmp(&other.pd2.deadline)
            .then_with(|| other.pd2.bbit.cmp(&self.pd2.bbit))
            .then_with(|| {
                if self.pd2.bbit && other.pd2.bbit {
                    other.pd2.group_deadline.cmp(&self.pd2.group_deadline)
                } else {
                    Ordering::Equal
                }
            })
            // PD's refinements: heavy first, then heavier weight.
            .then_with(|| other.heavy.cmp(&self.heavy))
            .then_with(|| other.pd2.weight.cmp(&self.pd2.weight))
            .then_with(|| self.pd2.id.cmp(&other.pd2.id))
    }
}

impl SubtaskKey for PdKey {
    fn of_subtask(sys: &TaskSystem, st: SubtaskRef) -> PdKey {
        let pd2 = Pd2Key::of_subtask(sys, st);
        PdKey {
            heavy: pd2.weight.is_heavy(),
            pd2,
        }
    }

    fn deadline(&self) -> i64 {
        self.pd2.deadline
    }
}

/// A per-system table of precomputed keys, indexed by [`SubtaskRef`].
///
/// Built once in O(n); every lookup thereafter is a plain array read, so
/// hot scheduler loops compare keys without touching the [`TaskSystem`].
#[derive(Clone, Debug)]
pub struct KeyCache<K> {
    keys: Vec<K>,
}

impl<K: SubtaskKey> KeyCache<K> {
    /// Precomputes the key of every subtask of `sys`.
    #[must_use]
    pub fn build(sys: &TaskSystem) -> KeyCache<K> {
        let n = sys.num_subtasks();
        let keys = (0..n)
            .map(|i| K::of_subtask(sys, SubtaskRef(i as u32)))
            .collect();
        KeyCache { keys }
    }

    /// The precomputed key of `st`.
    #[inline]
    #[must_use]
    pub fn key(&self, st: SubtaskRef) -> K {
        self.keys[st.idx()]
    }

    /// Number of cached keys (= subtasks of the system).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty (the system has no subtasks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Which precomputed key type reproduces a
/// [`PriorityOrder`](crate::PriorityOrder)'s total order, if any.
/// Returned by
/// [`PriorityOrder::key_dispatch`](crate::PriorityOrder::key_dispatch);
/// simulators use it to swap comparator calls for cached-key comparisons
/// without changing any schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KeyDispatch {
    /// [`Pd2Key`] reproduces the order.
    Pd2,
    /// [`EpdfKey`] reproduces the order.
    Epdf,
    /// [`PdKey`] reproduces the order.
    Pd,
    /// No key type registered; callers must use the comparator.
    #[default]
    Comparator,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epdf, Pd, Pd2, PriorityOrder};
    use pfair_taskmodel::release;
    use proptest::prelude::*;

    /// The key order must coincide with the comparator's total order on
    /// every pair of a representative system — for all three key types.
    #[test]
    fn key_order_matches_comparator() {
        let sys = release::periodic(
            &[
                (7, 8),
                (3, 4),
                (1, 2),
                (2, 3),
                (1, 6),
                (5, 6),
                (1, 1),
                (5, 12),
            ],
            24,
        );
        let cache = KeyCache::<Pd2Key>::build(&sys);
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                assert_eq!(
                    cache.key(a).cmp(&cache.key(b)),
                    Pd2.cmp(&sys, a, b),
                    "{:?} vs {:?}",
                    sys.subtask(a).id,
                    sys.subtask(b).id
                );
            }
        }
        let epdf = KeyCache::<EpdfKey>::build(&sys);
        let pd = KeyCache::<PdKey>::build(&sys);
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                assert_eq!(epdf.key(a).cmp(&epdf.key(b)), Epdf.cmp(&sys, a, b));
                assert_eq!(pd.key(a).cmp(&pd.key(b)), Pd.cmp(&sys, a, b));
            }
        }
    }

    /// `Pd2Key::of` (window formulas) and `of_subtask` (precomputed
    /// fields) must agree: the online scheduler uses the former, the
    /// simulators the latter.
    #[test]
    fn of_and_of_subtask_agree() {
        let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (1, 6)], 24);
        for (st, s) in sys.iter_refs() {
            let w = sys.task(s.id.task).weight;
            assert_eq!(
                Pd2Key::of(w, s.id, s.id.index, s.theta),
                Pd2Key::of_subtask(&sys, st),
                "{:?}",
                s.id
            );
        }
    }

    #[test]
    fn conditional_group_deadline_gating() {
        // Two heavy b = 0 subtasks with different D must tie through the
        // D stage and fall to weight/id — exactly like the comparator.
        // wt 1/2 with different θ: d equal requires matching θ… instead
        // compare equal-weight b = 0 at same deadline from two tasks.
        let w = Weight::new(1, 2);
        let a = Pd2Key::of(
            w,
            SubtaskId {
                task: pfair_taskmodel::TaskId(0),
                index: 1,
            },
            1,
            0,
        );
        let b = Pd2Key::of(
            w,
            SubtaskId {
                task: pfair_taskmodel::TaskId(1),
                index: 1,
            },
            1,
            0,
        );
        assert!(!a.bbit && !b.bbit);
        assert_eq!(a.cmp(&b), core::cmp::Ordering::Less); // id tie-break
    }

    #[test]
    fn deadline_accessor_is_the_leading_stage() {
        // `SubtaskKey::deadline` must expose exactly the field the first
        // comparison stage reads — the bucketing contract.
        let sys = release::periodic(&[(3, 4), (1, 2), (5, 6)], 12);
        for (st, s) in sys.iter_refs() {
            assert_eq!(Pd2Key::of_subtask(&sys, st).deadline(), s.deadline);
            assert_eq!(EpdfKey::of_subtask(&sys, st).deadline(), s.deadline);
            assert_eq!(PdKey::of_subtask(&sys, st).deadline(), s.deadline);
        }
    }

    #[test]
    fn cache_reports_size() {
        let sys = release::periodic(&[(1, 2), (1, 3)], 6);
        let cache = KeyCache::<Pd2Key>::build(&sys);
        assert_eq!(cache.len(), sys.num_subtasks());
        assert!(!cache.is_empty());
    }

    proptest! {
        /// Key equivalence over random weights/indices/offsets — all three
        /// key types, both comparison directions.
        #[test]
        fn prop_key_matches_comparator(
            e1 in 1i64..12, p1 in 1i64..12, i1 in 1u64..40, th1 in 0i64..6,
            e2 in 1i64..12, p2 in 1i64..12, i2 in 1u64..40, th2 in 0i64..6,
        ) {
            prop_assume!(e1 <= p1 && e2 <= p2);
            // Build a two-task system exposing exactly these subtasks.
            let mut b = pfair_taskmodel::TaskSystemBuilder::new();
            let w1 = Weight::new(e1, p1);
            let w2 = Weight::new(e2, p2);
            let t1 = b.add_task(w1);
            let t2 = b.add_task(w2);
            b.push(t1, i1, th1, None).unwrap();
            b.push(t2, i2, th2, None).unwrap();
            let sys = b.build();
            let (ra, sa) = sys.iter_refs().next().unwrap();
            let (rb, sb) = sys.iter_refs().nth(1).unwrap();
            let ka = Pd2Key::of(w1, sa.id, i1, th1);
            let kb = Pd2Key::of(w2, sb.id, i2, th2);
            prop_assert_eq!(ka.cmp(&kb), Pd2.cmp(&sys, ra, rb));
            prop_assert_eq!(kb.cmp(&ka), Pd2.cmp(&sys, rb, ra));
            let (ea, eb) = (EpdfKey::of_subtask(&sys, ra), EpdfKey::of_subtask(&sys, rb));
            prop_assert_eq!(ea.cmp(&eb), Epdf.cmp(&sys, ra, rb));
            prop_assert_eq!(eb.cmp(&ea), Epdf.cmp(&sys, rb, ra));
            let (pa, pb) = (PdKey::of_subtask(&sys, ra), PdKey::of_subtask(&sys, rb));
            prop_assert_eq!(pa.cmp(&pb), Pd.cmp(&sys, ra, rb));
            prop_assert_eq!(pb.cmp(&pa), Pd.cmp(&sys, rb, ra));
        }
    }
}
