//! PF: the original optimal Pfair algorithm (Baruah, Cohen, Plaxton,
//! Varvel 1996).
//!
//! PF prioritizes by pseudo-deadline and breaks ties by *recursively*
//! comparing successors: if `d(T_i) = d(U_j)`, then `b(T_i) = 1` beats
//! `b(T_j) = 0`; if both b-bits are 1 the comparison moves to `T_{i+1}` vs
//! `U_{j+1}` (their deadlines, then their b-bits, and so on); if both
//! b-bits are 0 the tie may be broken arbitrarily.
//!
//! For two periodic tasks of equal weight in lockstep the recursion never
//! separates them — precisely the case the original paper allows to be
//! resolved arbitrarily. We cap the recursion (depth 128, far beyond any
//! separation point of distinct-weight tasks at simulation scale) and
//! declare a strict tie beyond it.
//!
//! For subtasks near the end of the generated horizon a successor may not
//! have been released; a missing successor is treated as b-bit 0 for the
//! comparison (the window chain ends), which errs toward the arbitrary-tie
//! side and never inverts a decided comparison.

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::priority::PriorityOrder;

/// The PF priority order.
#[derive(Clone, Copy, Debug, Default)]
pub struct Pf;

/// Recursion cap; see module docs.
const MAX_DEPTH: u32 = 128;

impl PriorityOrder for Pf {
    fn name(&self) -> &'static str {
        "PF"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        cmp_rec(sys, a, b, 0)
    }
}

fn cmp_rec(sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef, depth: u32) -> Ordering {
    let (x, y) = (sys.subtask(a), sys.subtask(b));
    let by_deadline = x.deadline.cmp(&y.deadline);
    if by_deadline != Ordering::Equal {
        return by_deadline;
    }
    // Deadline tie: b = 1 wins over b = 0.
    let by_bbit = y.bbit.cmp(&x.bbit);
    if by_bbit != Ordering::Equal {
        return by_bbit;
    }
    if !x.bbit {
        // Both b-bits 0: arbitrary tie.
        return Ordering::Equal;
    }
    if depth >= MAX_DEPTH {
        return Ordering::Equal;
    }
    match (x.succ, y.succ) {
        (Some(xs), Some(ys)) => cmp_rec(sys, xs, ys, depth + 1),
        // Missing successor ⇒ its chain ends: the side *with* a successor
        // carries displacement pressure forward and wins the tie.
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn deadline_first() {
        let sys = release::periodic(&[(1, 2), (1, 6)], 6);
        assert!(Pf.precedes(&sys, find(&sys, 0, 1), find(&sys, 1, 1)));
    }

    #[test]
    fn recursive_tiebreak_separates_distinct_weights() {
        // wt 7/8 vs 3/4: both T_1 windows are [0,2) with b = 1.
        // Successors: 7/8's T_2 has d = ⌈2·8/7⌉ = 3; 3/4's T_2 has d = 3.
        // Next: 7/8's T_3 d = ⌈3·8/7⌉ = 4 vs 3/4's T_3 d = 4; b-bits:
        // 7/8 i=2: 16 mod 7 ≠ 0 ⇒ 1; 3/4 i=2: 8 mod 3 ≠ 0 ⇒ 1. Recursion
        // continues until 3/4 reaches its job boundary (i = 3, b = 0)
        // while 7/8 still has b = 1 ⇒ 7/8 wins.
        let sys = release::periodic(&[(7, 8), (3, 4)], 8);
        let heavy = find(&sys, 0, 1);
        let light = find(&sys, 1, 1);
        assert!(Pf.precedes(&sys, heavy, light));
        assert!(!Pf.precedes(&sys, light, heavy));
    }

    #[test]
    fn lockstep_equal_weights_tie() {
        let sys = release::periodic(&[(3, 4), (3, 4)], 16);
        let a = find(&sys, 0, 1);
        let b = find(&sys, 1, 1);
        assert_eq!(Pf.cmp_strict(&sys, a, b), Ordering::Equal);
    }

    #[test]
    fn pf_agrees_with_pd2_on_decided_comparisons() {
        // On any pair where PD2 and PF both decide strictly via deadline,
        // they agree; where PD2 decides by group deadline, PF's recursive
        // rule reaches the same verdict (both formalize cascade pressure).
        use crate::pd2::Pd2;
        let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (2, 3), (1, 6)], 24);
        let mut checked = 0;
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                let pf = Pf.cmp_strict(&sys, a, b);
                let pd2 = Pd2.cmp_strict(&sys, a, b);
                if pf != Ordering::Equal && pd2 != Ordering::Equal {
                    // Compare only same-deadline pairs (tie-break zone) plus
                    // deadline-decided pairs; both must never invert.
                    assert_eq!(pf, pd2, "{a:?} vs {b:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }
}
