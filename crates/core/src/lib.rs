//! Pfair scheduling algorithms (the paper's contribution and its context).
//!
//! This crate implements the *priority side* of Pfair scheduling:
//!
//! * [`EPDF`](epdf::Epdf) — earliest-pseudo-deadline-first, the suboptimal
//!   baseline with no tie-breaks;
//! * [`PD²`](pd2::Pd2) — the most efficient optimal algorithm: deadline,
//!   then b-bit, then group deadline;
//! * [`PF`](pf::Pf) — the original optimal algorithm of Baruah et al.,
//!   breaking deadline ties by recursively comparing successor windows;
//! * [`PD`](pd::Pd) — Baruah/Gehrke/Plaxton's constant-time variant
//!   (implemented as a tie-break superset of PD², see DESIGN.md §3.3);
//! * [`PD^B`](pdb) — the paper's worst-case *blocking* algorithm: an SFQ
//!   algorithm that mimics the eligibility- and predecessor-blocking a
//!   subtask can suffer under PD² in the DVQ model (§3.1, Table 1).
//!
//! Priorities are exposed as total orders over released subtasks
//! ([`PriorityOrder`]); the simulators in `pfair-sim` consume them. For
//! the EPDF/PD/PD² orders, [`key`] additionally provides precomputed
//! `Ord` keys ([`Pd2Key`], [`EpdfKey`], [`PdKey`]) plus a per-system
//! [`KeyCache`], letting the simulators' hot loops sort and heap on
//! plain struct comparisons instead of re-deriving window formulas —
//! provably schedule-for-schedule identical to the comparator path. The
//! paper's precedence symbol `T_i ≺ U_j` ("`T_i` has strictly higher
//! priority") corresponds to `cmp(a, b) == Ordering::Less` *before* the
//! deterministic final tie-break; see [`priority`] for how ties that the
//! paper leaves "arbitrary" are pinned down reproducibly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod epdf;
pub mod key;
pub mod pd;
pub mod pd2;
pub mod pdb;
pub mod pf;
pub mod priority;

pub use ablation::{Pd2NoBBit, Pd2NoGroupDeadline};
pub use epdf::Epdf;
pub use key::{EpdfKey, KeyCache, KeyDispatch, Pd2Key, PdKey, SubtaskKey};
pub use pd::Pd;
pub use pd2::Pd2;
pub use pf::Pf;
pub use priority::{Algorithm, ComparatorOnly, PriorityOrder};
