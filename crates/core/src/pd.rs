//! PD: the constant-time optimal algorithm of Baruah, Gehrke & Plaxton
//! (IPPS 1995).
//!
//! The paper uses PD only as context, noting that the three optimal
//! algorithms "differ only in their tie-breaking rules" and that **PD²'s
//! tie-breaking rules form a subset of those of the other two**. That
//! subset property is the only fact the analysis relies on, so — as
//! recorded in DESIGN.md §3.3 — we implement PD as a *refinement* of PD²:
//! PD²'s three rules (deadline, b-bit, group deadline), then two further
//! deterministic refinements in the spirit of PD's original four-parameter
//! comparison (whether the subtask is heavy, then the task weight, heavier
//! first). Any such refinement schedules identically to PD² wherever PD²
//! decides strictly, and remains optimal because extra tie-breaking below
//! PD²'s rules cannot invalidate PD²'s optimality proof (which permits
//! arbitrary resolution of residual ties).

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::pd2::Pd2;
use crate::priority::PriorityOrder;

/// The PD priority order (a deterministic refinement of PD²).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pd;

impl PriorityOrder for Pd {
    fn name(&self) -> &'static str {
        "PD"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        Pd2.cmp_strict(sys, a, b).then_with(|| {
            let (wx, wy) = (
                sys.task(sys.subtask(a).id.task).weight,
                sys.task(sys.subtask(b).id.task).weight,
            );
            // Heavy before light, then heavier weight first.
            wy.is_heavy().cmp(&wx.is_heavy()).then_with(|| wy.cmp(&wx))
        })
    }

    fn key_dispatch(&self) -> crate::key::KeyDispatch {
        crate::key::KeyDispatch::Pd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn refines_pd2() {
        let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (1, 6), (2, 3)], 24);
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                let pd2 = Pd2.cmp_strict(&sys, a, b);
                if pd2 != Ordering::Equal {
                    assert_eq!(Pd.cmp_strict(&sys, a, b), pd2);
                }
            }
        }
    }

    #[test]
    fn extra_tiebreak_orders_by_weight() {
        // Equal d, equal b = 0, light tasks: PD2 ties; PD prefers heavier.
        let sys = release::periodic(&[(1, 6), (2, 12), (1, 3)], 6);
        let a = find(&sys, 0, 1); // wt 1/6, d = 6
        let c = find(&sys, 2, 1); // wt 1/3, d = 3
        assert!(Pd.precedes(&sys, c, a)); // deadline already decides
        let b = find(&sys, 1, 1); // wt 2/12 = 1/6 — identical to task 0
        assert_eq!(Pd.cmp_strict(&sys, a, b), Ordering::Equal);
        // wt 5/12 vs 1/6 at a shared deadline:
        let sys2 = release::periodic(&[(1, 6), (5, 12)], 4);
        let light = find(&sys2, 0, 1); // d = 6
        let midw = find(&sys2, 1, 2); // d = ⌈2·12/5⌉ = 5
        assert!(Pd.precedes(&sys2, midw, light));
    }
}
