//! The priority-order abstraction shared by all Pfair algorithms.
//!
//! All the algorithms the paper discusses are *priority driven*: "a subtask
//! with an earlier deadline has higher priority than a subtask with a later
//! deadline", plus per-algorithm tie-breaks. We model each as a **total
//! order** over the released subtasks of a [`TaskSystem`]:
//! `cmp(a, b) == Less` means `a` is scheduled in preference to `b`.
//!
//! # Determinism of "arbitrary" ties
//!
//! The paper (and the literature it builds on) allows remaining ties to be
//! broken arbitrarily. For reproducibility, every order here resolves
//! residual ties by `(task id, subtask index)`. Two methods are exposed:
//! [`PriorityOrder::cmp_strict`] — the paper's `≺`/`≻` relation *without*
//! the final tie-break (so `Equal` really means "the algorithm considers
//! these equal") — and [`PriorityOrder::cmp`], the total order used for
//! actual scheduling. PD^B's blocking analysis needs the distinction: its
//! Table 1 conditions are stated in terms of the PD² `⪯`.

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::key::KeyDispatch;

/// A total priority order over released subtasks. `Less` = higher priority.
pub trait PriorityOrder: core::fmt::Debug + Sync {
    /// Short human-readable name ("PD2", "EPDF", …).
    fn name(&self) -> &'static str;

    /// The algorithm's own comparison, *without* the deterministic final
    /// tie-break: `Equal` means the algorithm regards the two subtasks as
    /// equal priority (the paper's "ties broken arbitrarily").
    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering;

    /// The total order used for scheduling: [`Self::cmp_strict`] refined by
    /// heavier-task-first, then `(task, index)`, so that equal-priority
    /// subtasks are ordered deterministically.
    ///
    /// Heavier-first is the resolution the paper's worked figures use
    /// (e.g. in Fig. 2(a) the weight-1/2 subtasks `D_3, E_3` run at slot 4
    /// ahead of the equal-deadline weight-1/6 subtask `C_1`); pinning it
    /// here makes every figure reproduce byte-for-byte.
    fn cmp(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        self.cmp_strict(sys, a, b)
            .then_with(|| {
                let wa = sys.task(sys.subtask(a).id.task).weight;
                let wb = sys.task(sys.subtask(b).id.task).weight;
                wb.cmp(&wa)
            })
            .then_with(|| sys.subtask(a).id.cmp(&sys.subtask(b).id))
    }

    /// The paper's `a ≺ b`: strictly higher priority under this algorithm.
    fn precedes(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> bool {
        self.cmp_strict(sys, a, b) == Ordering::Less
    }

    /// The paper's `a ⪯ b`: priority at least that of `b`.
    fn precedes_eq(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> bool {
        self.cmp_strict(sys, a, b) != Ordering::Greater
    }

    /// Which precomputed key type ([`crate::key`]) reproduces this order's
    /// [`Self::cmp`], if any. Simulators consult this to replace repeated
    /// comparator calls with cached-key comparisons; the registered key's
    /// `Ord` is proven equivalent by tests, so dispatching through it never
    /// changes a schedule. The default — no key — keeps the comparator
    /// path, which stays correct for every order (PF, ablations, custom
    /// implementations).
    fn key_dispatch(&self) -> KeyDispatch {
        KeyDispatch::Comparator
    }
}

/// Forces the comparator path: wraps any order, forwarding everything but
/// reporting no key dispatch. Used by equivalence tests and benchmarks to
/// pit keyed against comparator execution of the *same* order.
#[derive(Debug)]
pub struct ComparatorOnly<'a>(pub &'a dyn PriorityOrder);

impl PriorityOrder for ComparatorOnly<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        self.0.cmp_strict(sys, a, b)
    }

    fn cmp(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        self.0.cmp(sys, a, b)
    }
}

/// Sorts `ready` into scheduling order (highest priority first) under `ord`.
pub fn sort_by_priority(ord: &dyn PriorityOrder, sys: &TaskSystem, ready: &mut [SubtaskRef]) {
    ready.sort_by(|&a, &b| ord.cmp(sys, a, b));
}

/// The algorithms this workspace ships, as a closed enum (handy for CLI
/// parsing in examples and for experiment sweeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Earliest-pseudo-deadline-first (no tie-breaks) — suboptimal.
    Epdf,
    /// PD²: deadline, b-bit, group deadline — optimal, cheapest tie-breaks.
    Pd2,
    /// PF: deadline, then recursive successor comparison — optimal.
    Pf,
    /// PD: PD² tie-breaks plus further deterministic refinements — optimal.
    Pd,
}

impl Algorithm {
    /// The comparator instance for this algorithm.
    #[must_use]
    pub fn order(self) -> &'static dyn PriorityOrder {
        match self {
            Algorithm::Epdf => &crate::epdf::Epdf,
            Algorithm::Pd2 => &crate::pd2::Pd2,
            Algorithm::Pf => &crate::pf::Pf,
            Algorithm::Pd => &crate::pd::Pd,
        }
    }

    /// All algorithms, for sweeps.
    #[must_use]
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Epdf,
            Algorithm::Pd2,
            Algorithm::Pf,
            Algorithm::Pd,
        ]
    }

    /// Parses a case-insensitive name ("pd2", "epdf", "pf", "pd").
    #[must_use]
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "epdf" => Some(Algorithm::Epdf),
            "pd2" | "pd^2" => Some(Algorithm::Pd2),
            "pf" => Some(Algorithm::Pf),
            "pd" => Some(Algorithm::Pd),
            _ => None,
        }
    }
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.order().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;

    #[test]
    fn total_order_is_antisymmetric_and_total() {
        let sys = release::periodic(&[(1, 2), (1, 2), (3, 4), (1, 6)], 12);
        for alg in Algorithm::all() {
            let ord = alg.order();
            for (a, _) in sys.iter_refs() {
                for (b, _) in sys.iter_refs() {
                    let ab = ord.cmp(&sys, a, b);
                    let ba = ord.cmp(&sys, b, a);
                    assert_eq!(ab, ba.reverse(), "{alg}: {a:?} vs {b:?}");
                    if a != b {
                        assert_ne!(ab, Ordering::Equal, "{alg}: distinct subtasks must order");
                    }
                }
            }
        }
    }

    #[test]
    fn algorithm_parse_round_trip() {
        for alg in Algorithm::all() {
            assert_eq!(Algorithm::parse(&alg.to_string()), Some(alg));
        }
        assert_eq!(Algorithm::parse("PD^2"), Some(Algorithm::Pd2));
        assert_eq!(Algorithm::parse("nope"), None);
    }
}
