//! PD²: the most efficient optimal Pfair algorithm (Anderson & Srinivasan).
//!
//! Priority of subtask `T_i` over `U_j` is decided by, in order:
//!
//! 1. **Deadline**: smaller `d` wins.
//! 2. **b-bit**: on a deadline tie, `b = 1` wins over `b = 0`. Intuition: a
//!    subtask whose window overlaps its successor's window passes
//!    displacement pressure forward, so deferring it is costlier.
//! 3. **Group deadline**: if both b-bits are 1, the *larger* `D` wins.
//!    Intuition: a longer cascade of unit-slack windows behind the subtask
//!    means postponing it forces more future allocations.
//!
//! Remaining ties may be broken arbitrarily without losing optimality; the
//! total order adds a deterministic id tie-break (see [`crate::priority`]).
//!
//! The paper's analysis of the DVQ model is carried out for PD²; PD^B
//! ([`crate::pdb`]) reuses this order via [`crate::PriorityOrder`].

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::priority::PriorityOrder;

/// The PD² priority order.
#[derive(Clone, Copy, Debug, Default)]
pub struct Pd2;

impl PriorityOrder for Pd2 {
    fn name(&self) -> &'static str {
        "PD2"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        let (x, y) = (sys.subtask(a), sys.subtask(b));
        x.deadline
            .cmp(&y.deadline)
            // b = 1 first: reverse the bool order (false < true).
            .then_with(|| y.bbit.cmp(&x.bbit))
            // The group-deadline rule applies only when both b-bits are 1.
            .then_with(|| {
                if x.bbit && y.bbit {
                    // Larger group deadline first.
                    y.group_deadline.cmp(&x.group_deadline)
                } else {
                    Ordering::Equal
                }
            })
    }

    fn key_dispatch(&self) -> crate::key::KeyDispatch {
        crate::key::KeyDispatch::Pd2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::{release, SubtaskId, TaskId};

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn deadline_dominates() {
        let sys = release::periodic(&[(1, 2), (1, 6)], 6);
        let d1 = find(&sys, 0, 1); // d = 2
        let light = find(&sys, 1, 1); // d = 6
        assert!(Pd2.precedes(&sys, d1, light));
        assert!(!Pd2.precedes(&sys, light, d1));
    }

    #[test]
    fn bbit_breaks_deadline_ties() {
        // wt 3/4: T_1 has d = 2, b = 1. wt 1/2: T_1 has d = 2, b = 0.
        let sys = release::periodic(&[(3, 4), (1, 2)], 4);
        let heavy_b1 = find(&sys, 0, 1);
        let half_b0 = find(&sys, 1, 1);
        assert_eq!(
            sys.subtask(heavy_b1).deadline,
            sys.subtask(half_b0).deadline
        );
        assert!(Pd2.precedes(&sys, heavy_b1, half_b0));
    }

    #[test]
    fn group_deadline_breaks_bbit_ties() {
        // wt 7/8: T_1 d = 2, b = 1, D = 8 (long cascade).
        // wt 3/4: T_1 d = 2, b = 1, D = 4 (short cascade).
        let sys = release::periodic(&[(7, 8), (3, 4)], 4);
        let long = find(&sys, 0, 1);
        let short = find(&sys, 1, 1);
        let (l, s) = (sys.subtask(long), sys.subtask(short));
        assert_eq!((l.deadline, l.bbit), (2, true));
        assert_eq!((s.deadline, s.bbit), (2, true));
        assert_eq!(l.group_deadline, 8);
        assert_eq!(s.group_deadline, 4);
        assert!(Pd2.precedes(&sys, long, short));
    }

    #[test]
    fn equal_parameters_tie_strictly() {
        // Two identical 3/4 tasks: first subtasks are Equal under
        // cmp_strict (the paper's "arbitrary" tie).
        let sys = release::periodic(&[(3, 4), (3, 4)], 4);
        let a = find(&sys, 0, 1);
        let b = find(&sys, 1, 1);
        assert_eq!(Pd2.cmp_strict(&sys, a, b), Ordering::Equal);
        assert!(Pd2.precedes_eq(&sys, a, b));
        assert!(Pd2.precedes_eq(&sys, b, a));
        assert_ne!(Pd2.cmp(&sys, a, b), Ordering::Equal);
    }

    #[test]
    fn bbit_one_beats_bbit_zero_at_equal_deadline() {
        let sys = release::periodic(&[(2, 3), (2, 4)], 4);
        let a = find(&sys, 0, 1); // wt 2/3: d = 2, b = 1
        let b = find(&sys, 1, 1); // wt 1/2: d = 2, b = 0
        assert_eq!(sys.subtask(a).deadline, sys.subtask(b).deadline);
        assert!(Pd2.precedes(&sys, a, b));
        assert!(!Pd2.precedes(&sys, b, a));
    }

    #[test]
    fn weight_one_task_always_wins_its_slot() {
        let sys = release::periodic(&[(1, 1), (1, 2)], 4);
        let full_1 = find(&sys, 0, 1); // d = 1
        let half_1 = find(&sys, 1, 1); // d = 2
        assert!(Pd2.precedes(&sys, full_1, half_1));
    }
}
