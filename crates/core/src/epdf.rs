//! EPDF: earliest-pseudo-deadline-first (no tie-breaks).
//!
//! The suboptimal algorithm of Anderson & Srinivasan the paper lists
//! alongside the optimal trio: subtasks are prioritized by pseudo-deadline
//! only, ties "broken arbitrarily" (here: deterministically by id via
//! [`crate::PriorityOrder::cmp`]). EPDF can miss deadlines on more than two
//! processors, but is cheaper than the tie-breaking algorithms and is the
//! natural baseline for the paper's claim that tardiness bounds of
//! suboptimal Pfair algorithms degrade by at most one quantum under DVQ.

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::priority::PriorityOrder;

/// The EPDF priority order.
#[derive(Clone, Copy, Debug, Default)]
pub struct Epdf;

impl PriorityOrder for Epdf {
    fn name(&self) -> &'static str {
        "EPDF"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        sys.subtask(a).deadline.cmp(&sys.subtask(b).deadline)
    }

    fn key_dispatch(&self) -> crate::key::KeyDispatch {
        crate::key::KeyDispatch::Epdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;

    #[test]
    fn orders_by_deadline_only() {
        let sys = release::periodic(&[(3, 4), (1, 2)], 4);
        // T0_1 d=2, T0_2 d=3, T0_3 d=4; T1_1 d=2, T1_2 d=4.
        let refs: Vec<_> = sys.iter_refs().map(|(r, _)| r).collect();
        let (t0_1, t0_2, t1_1) = (refs[0], refs[1], refs[3]);
        assert!(Epdf.precedes(&sys, t0_1, t0_2));
        // Equal deadlines are Equal under cmp_strict...
        assert_eq!(
            Epdf.cmp_strict(&sys, t0_1, t1_1),
            core::cmp::Ordering::Equal
        );
        // ...but totally ordered under cmp.
        assert_eq!(Epdf.cmp(&sys, t0_1, t1_1), core::cmp::Ordering::Less);
    }
}
