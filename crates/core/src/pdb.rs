//! PD^B: the paper's worst-case *blocking* algorithm (§3.1, Table 1).
//!
//! PD^B is an SFQ-model algorithm constructed so that, as far as tardiness
//! is concerned, it represents a worst case for PD² under the DVQ model:
//! it mimics, at slot boundaries, the two priority inversions that DVQ's
//! work-conserving quantum reclamation makes possible —
//!
//! * **eligibility blocking**: a processor becomes free *just before* an
//!   integral eligibility boundary `t` and is handed to a lower-priority
//!   subtask, so a higher-priority subtask with `e(T_i) = t` finds no
//!   processor at `t` (Fig. 2(b));
//! * **predecessor blocking**: a subtask `T_i` with `e(T_i) < t` cannot run
//!   before `t` because its predecessor occupies a processor up to `t`,
//!   while another processor frees early and is given to a lower-priority
//!   subtask; at `t` the predecessor's processor goes to a newly-eligible
//!   higher-priority subtask instead (Fig. 3(a), Property PB).
//!
//! At each slot `t`, the *ready* subtasks are partitioned (Eqns (9)–(11)):
//!
//! ```text
//! EB(t) = { T_i ready at t | e(T_i) = t }
//! PB(t) = { T_i ready at t | e(T_i) < t ∧ predecessor executed up to t }
//! DB(t) = every other ready subtask
//! ```
//!
//! With `p = |PB(t)|`, the `M` scheduling decisions for slot `t` obey
//! Table 1: during the first `M − p` decisions subtasks in `PB` are passed
//! over entirely, and a subtask from `DB` may be chosen ahead of a
//! higher-priority subtask from `EB` (both directions of the tie are
//! permitted by the table; choosing `DB` first is what *maximizes*
//! blocking, so that is what this implementation does — PD^B is a
//! worst-case construction); the final `p` decisions are strict PD² over
//! everything still ready. Within each subset, order is always PD².
//!
//! [`select_slot`] implements that procedure; [`table1_leq`] transcribes
//! Table 1 literally so the tests can check the procedure against the
//! paper's definition case by case.

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::pd2::Pd2;
use crate::priority::PriorityOrder;

/// Which of the three ready subsets a subtask falls into at slot `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// `EB(t)`: eligible exactly at `t` — can be *eligibility-blocked*.
    Eb,
    /// `PB(t)`: eligible earlier, predecessor executes up to `t` — can be
    /// *predecessor-blocked*.
    Pb,
    /// `DB(t)`: definitely not blocked at `t`.
    Db,
}

/// A ready subtask at some slot, with the readiness fact PD^B needs.
#[derive(Clone, Copy, Debug)]
pub struct Ready {
    /// The ready subtask.
    pub st: SubtaskRef,
    /// `true` iff its predecessor was scheduled in slot `t − 1` (and thus,
    /// under SFQ, holds its processor up to time `t`).
    pub pred_holds_until_t: bool,
}

/// The partition of the ready set at a slot (each subset PD²-sorted,
/// highest priority first).
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// `EB(t)`.
    pub eb: Vec<SubtaskRef>,
    /// `PB(t)`.
    pub pb: Vec<SubtaskRef>,
    /// `DB(t)`.
    pub db: Vec<SubtaskRef>,
}

impl Partition {
    /// `p = |PB(t)|`: the number of processors that subtasks in `PB` could
    /// contend for, and (Property PB) a lower bound on the number of
    /// processors making scheduling decisions at `t` under DVQ.
    #[must_use]
    pub fn p(&self) -> usize {
        self.pb.len()
    }

    /// Class of a given subtask, if it is in the partition.
    #[must_use]
    pub fn class_of(&self, st: SubtaskRef) -> Option<Class> {
        if self.eb.contains(&st) {
            Some(Class::Eb)
        } else if self.pb.contains(&st) {
            Some(Class::Pb)
        } else if self.db.contains(&st) {
            Some(Class::Db)
        } else {
            None
        }
    }

    /// Total number of ready subtasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.eb.len() + self.pb.len() + self.db.len()
    }

    /// `true` iff no subtask is ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partitions the ready set at slot `t` per Eqns (9)–(11) and PD²-sorts
/// each subset.
#[must_use]
pub fn classify(sys: &TaskSystem, t: i64, ready: &[Ready]) -> Partition {
    let mut part = Partition::default();
    for r in ready {
        let s = sys.subtask(r.st);
        debug_assert!(s.eligible <= t, "subtask not yet eligible is not ready");
        if s.eligible == t {
            part.eb.push(r.st);
        } else if r.pred_holds_until_t {
            part.pb.push(r.st);
        } else {
            part.db.push(r.st);
        }
    }
    let by_pd2 = |a: &SubtaskRef, b: &SubtaskRef| Pd2.cmp(sys, *a, *b);
    part.eb.sort_by(by_pd2);
    part.pb.sort_by(by_pd2);
    part.db.sort_by(by_pd2);
    part
}

/// How the two-way ties Table 1 leaves open are resolved in the first
/// `M − p` scheduling decisions.
///
/// Table 1 permits either order between a `DB` subtask and a
/// higher-priority `EB` subtask during the early decisions. PD^B is a
/// *worst-case* construction, so the default resolves every such tie in
/// favour of `DB` ([`MaxBlocking`](PdbLinearization::MaxBlocking) —
/// maximizing eligibility blocking). [`MinBlocking`](PdbLinearization::MinBlocking)
/// resolves them by strict PD² instead (still excluding `PB`, as the
/// table requires); comparing the two isolates how much of the
/// one-quantum bound is due to the adversarial resolution rather than the
/// partition itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PdbLinearization {
    /// DB before EB regardless of PD² priority (the paper's worst case).
    #[default]
    MaxBlocking,
    /// Strict PD² between DB and EB (benign resolution).
    MinBlocking,
}

/// One slot's worth of PD^B scheduling decisions (maximally blocking
/// linearization — the paper's worst case).
///
/// Returns the subtasks selected for the `m` processors, in decision order
/// (`r = 1, 2, …`); fewer than `m` entries means idle processors.
#[must_use]
pub fn select_slot(sys: &TaskSystem, m: usize, part: &Partition) -> Vec<SubtaskRef> {
    select_slot_with(sys, m, part, PdbLinearization::MaxBlocking)
}

/// [`select_slot`] with an explicit tie linearization.
#[must_use]
pub fn select_slot_with(
    sys: &TaskSystem,
    m: usize,
    part: &Partition,
    lin: PdbLinearization,
) -> Vec<SubtaskRef> {
    let p = part.p().min(m);
    let mut eb = part.eb.as_slice();
    let mut pb = part.pb.as_slice();
    let mut db = part.db.as_slice();
    let mut picked = Vec::with_capacity(m.min(part.len()));

    // First M − p decisions: PB is passed over; DB vs EB resolved per the
    // linearization; within each subset, PD² order.
    while picked.len() < m - p {
        let take_db = match (db.first(), eb.first()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(&d), Some(&e)) => match lin {
                PdbLinearization::MaxBlocking => true,
                PdbLinearization::MinBlocking => Pd2.cmp(sys, d, e) == core::cmp::Ordering::Less,
            },
            (None, None) => {
                if let Some((&head, rest)) = pb.split_first() {
                    // Only PB subtasks remain: idling a processor while
                    // work is ready is permitted by no row of Table 1.
                    picked.push(head);
                    pb = rest;
                    continue;
                }
                return picked; // nothing ready at all
            }
        };
        if take_db {
            let (&head, rest) = db.split_first().expect("checked");
            picked.push(head);
            db = rest;
        } else {
            let (&head, rest) = eb.split_first().expect("checked");
            picked.push(head);
            eb = rest;
        }
    }

    // Final p decisions: strict PD² over everything still ready.
    while picked.len() < m {
        let candidates = [db.first(), eb.first(), pb.first()];
        let best = candidates
            .into_iter()
            .flatten()
            .copied()
            .min_by(|&a, &b| Pd2.cmp(sys, a, b));
        let Some(best) = best else { break };
        if db.first() == Some(&best) {
            db = &db[1..];
        } else if eb.first() == Some(&best) {
            eb = &eb[1..];
        } else {
            pb = &pb[1..];
        }
        picked.push(best);
    }
    picked
}

/// Literal transcription of Table 1: does `T_i ⊑ U_j` hold for scheduling
/// decision `r` (1-based) at a slot with partition classes `ca`, `cb` and
/// `p = |PB(t)|`?
///
/// (`⪯` in the entries is PD²'s `precedes_eq`.)
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameterization
pub fn table1_leq(
    sys: &TaskSystem,
    a: SubtaskRef,
    ca: Class,
    b: SubtaskRef,
    cb: Class,
    r: usize,
    m: usize,
    p: usize,
) -> bool {
    let pd2_leq = Pd2.precedes_eq(sys, a, b);
    let early = r <= m - p;
    match (ca, cb) {
        (Class::Eb, Class::Eb) => pd2_leq,
        (Class::Eb, Class::Pb) => pd2_leq || early,
        (Class::Eb, Class::Db) => pd2_leq,
        (Class::Pb, Class::Eb) => pd2_leq && !early,
        (Class::Pb, Class::Pb) => pd2_leq,
        (Class::Pb, Class::Db) => pd2_leq && !early,
        (Class::Db, Class::Eb) => pd2_leq || early,
        (Class::Db, Class::Pb) => pd2_leq || early,
        (Class::Db, Class::Db) => pd2_leq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::{release, SubtaskId, TaskId, TaskSystem};

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    /// The Fig. 2 task set: A,B,C of weight 1/6; D,E,F of weight 1/2; M=2.
    fn fig2() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn classify_fig2c_slot2() {
        // Fig. 2(c) at t = 2: ready = {B1, C1, D2, E2, F2}; D2, E2, F2 are
        // in EB(2) (e = r = 2), B1 and C1 in DB(2). (A1 was scheduled
        // earlier; D1/E1/F1's processors were held to the boundary, but
        // their successors D2,E2,F2 have e = 2 ⇒ EB regardless.)
        let sys = fig2();
        let ready = vec![
            Ready {
                st: find(&sys, 1, 1), // B1, e = 0
                pred_holds_until_t: false,
            },
            Ready {
                st: find(&sys, 2, 1), // C1, e = 0
                pred_holds_until_t: false,
            },
            Ready {
                st: find(&sys, 3, 2), // D2, e = 2
                pred_holds_until_t: true,
            },
            Ready {
                st: find(&sys, 4, 2), // E2
                pred_holds_until_t: true,
            },
            Ready {
                st: find(&sys, 5, 2), // F2
                pred_holds_until_t: true,
            },
        ];
        let part = classify(&sys, 2, &ready);
        assert_eq!(part.eb.len(), 3);
        assert_eq!(part.pb.len(), 0);
        assert_eq!(part.db.len(), 2);
        assert_eq!(part.class_of(find(&sys, 1, 1)), Some(Class::Db));
        assert_eq!(part.class_of(find(&sys, 3, 2)), Some(Class::Eb));
    }

    #[test]
    fn select_blocks_eb_behind_db() {
        // Continuing Fig. 2(c) at t = 2 with M = 2: PD^B gives both
        // processors to B1 and C1 (DB) even though D2/E2/F2 (EB) have
        // earlier deadlines — exactly the eligibility blocking of
        // Fig. 2(b)/(c).
        let sys = fig2();
        let ready = vec![
            Ready {
                st: find(&sys, 1, 1),
                pred_holds_until_t: false,
            },
            Ready {
                st: find(&sys, 2, 1),
                pred_holds_until_t: false,
            },
            Ready {
                st: find(&sys, 3, 2),
                pred_holds_until_t: true,
            },
            Ready {
                st: find(&sys, 4, 2),
                pred_holds_until_t: true,
            },
            Ready {
                st: find(&sys, 5, 2),
                pred_holds_until_t: true,
            },
        ];
        let part = classify(&sys, 2, &ready);
        let picked = select_slot(&sys, 2, &part);
        assert_eq!(picked, vec![find(&sys, 1, 1), find(&sys, 2, 1)]);
    }

    #[test]
    fn final_p_decisions_are_strict_pd2() {
        // Build a slot with one PB subtask: D's second subtask with e < t
        // is impossible periodically (e = r), so use an early-released
        // system: D2 eligible at 1, predecessor D1 runs in slot 1.
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let sys = structured(
            &[
                ReleaseSpec {
                    name: "D",
                    e: 1,
                    p: 2,
                    delays: &[],
                    drops: &[],
                    early: 1,
                },
                ReleaseSpec::periodic("X", 1, 6),
                ReleaseSpec::periodic("Y", 2, 6),
            ],
            6,
        )
        .unwrap();
        let d2 = find(&sys, 0, 2); // e = 1, r = 2
        let x1 = find(&sys, 1, 1); // d = 6
        let y1 = find(&sys, 2, 1); // d = 3
                                   // At t = 2 with M = 2: D2 ready (pred ran slot 1, holds until 2) ⇒
                                   // PB; X1, Y1 ⇒ DB. p = 1: first decision from DB (Y1, the PD²
                                   // better of the two), final decision strict PD² between D2 (d = 4)
                                   // and X1 (d = 6) ⇒ D2.
        let ready = vec![
            Ready {
                st: d2,
                pred_holds_until_t: true,
            },
            Ready {
                st: x1,
                pred_holds_until_t: false,
            },
            Ready {
                st: y1,
                pred_holds_until_t: false,
            },
        ];
        let part = classify(&sys, 2, &ready);
        assert_eq!(part.class_of(d2), Some(Class::Pb));
        assert_eq!(part.p(), 1);
        let picked = select_slot(&sys, 2, &part);
        assert_eq!(picked, vec![y1, d2]);
    }

    #[test]
    fn pb_runs_when_nothing_else_ready() {
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let sys = structured(
            &[ReleaseSpec {
                name: "D",
                e: 1,
                p: 2,
                delays: &[],
                drops: &[],
                early: 1,
            }],
            4,
        )
        .unwrap();
        let d2 = find(&sys, 0, 2);
        let ready = vec![Ready {
            st: d2,
            pred_holds_until_t: true,
        }];
        let part = classify(&sys, 2, &ready);
        // M = 2, p = 1: first decision has only PB available; it must not
        // idle.
        let picked = select_slot(&sys, 2, &part);
        assert_eq!(picked, vec![d2]);
    }

    #[test]
    fn table1_matches_selection_procedure() {
        // Property: whenever the procedure schedules x at decision r while
        // y remains ready, Table 1 must not say y ⊏ x (y strictly higher).
        // Exercise over the Fig. 2 set with every readiness combination of
        // pred_holds flags for successors.
        let sys = fig2();
        let t = 2;
        let d2 = find(&sys, 3, 2);
        let e2 = find(&sys, 4, 2);
        let f2 = find(&sys, 5, 2);
        let b1 = find(&sys, 1, 1);
        let c1 = find(&sys, 2, 1);
        for mask in 0u32..8 {
            let ready: Vec<Ready> = [(d2, 0), (e2, 1), (f2, 2)]
                .iter()
                .map(|&(st, bit)| Ready {
                    st,
                    pred_holds_until_t: mask & (1 << bit) != 0,
                })
                .chain([b1, c1].iter().map(|&st| Ready {
                    st,
                    pred_holds_until_t: false,
                }))
                .collect();
            let part = classify(&sys, t, &ready);
            let m = 2;
            let p = part.p().min(m);
            let picked = select_slot(&sys, m, &part);
            let mut remaining: Vec<SubtaskRef> = ready.iter().map(|r| r.st).collect();
            for (r0, &x) in picked.iter().enumerate() {
                let r = r0 + 1;
                remaining.retain(|&s| s != x);
                let cx = part.class_of(x).unwrap();
                for &y in &remaining {
                    let cy = part.class_of(y).unwrap();
                    // y ⊏ x  ⟺  y ⊑ x ∧ ¬(x ⊑ y)
                    let y_strictly_higher = table1_leq(&sys, y, cy, x, cx, r, m, p)
                        && !table1_leq(&sys, x, cx, y, cy, r, m, p);
                    assert!(
                        !y_strictly_higher,
                        "mask={mask} r={r}: scheduled {x:?}({cx:?}) while {y:?}({cy:?}) strictly higher"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_exhaustive_pairwise_semantics() {
        // Spot-check each cell of Table 1 with hand-picked pd2 relations.
        let sys = fig2();
        let hi = find(&sys, 3, 1); // D1: d = 2 (higher priority)
        let lo = find(&sys, 0, 1); // A1: d = 6 (lower priority)
        let (m, p) = (2, 1);
        // Diagonal: plain PD².
        for c in [Class::Eb, Class::Pb, Class::Db] {
            for r in 1..=m {
                assert!(table1_leq(&sys, hi, c, lo, c, r, m, p));
                assert!(!table1_leq(&sys, lo, c, hi, c, r, m, p));
            }
        }
        // EB vs DB: pure PD² in both directions *except* DB gains the
        // early-decision override.
        assert!(table1_leq(&sys, hi, Class::Eb, lo, Class::Db, 1, m, p));
        assert!(table1_leq(&sys, lo, Class::Db, hi, Class::Eb, 1, m, p)); // early: DB may pass EB
        assert!(!table1_leq(&sys, lo, Class::Db, hi, Class::Eb, 2, m, p)); // late: strict PD²
        assert!(!table1_leq(&sys, lo, Class::Eb, hi, Class::Db, 1, m, p));
        // PB loses the early decisions entirely...
        assert!(!table1_leq(&sys, hi, Class::Pb, lo, Class::Db, 1, m, p));
        assert!(!table1_leq(&sys, hi, Class::Pb, lo, Class::Eb, 1, m, p));
        // ...and regains strict PD² in the final p decisions.
        assert!(table1_leq(&sys, hi, Class::Pb, lo, Class::Db, 2, m, p));
        assert!(table1_leq(&sys, hi, Class::Pb, lo, Class::Eb, 2, m, p));
        // EB/DB vs PB in early decisions: always ⊑.
        assert!(table1_leq(&sys, lo, Class::Eb, hi, Class::Pb, 1, m, p));
        assert!(table1_leq(&sys, lo, Class::Db, hi, Class::Pb, 1, m, p));
        // Late decisions revert to PD².
        assert!(!table1_leq(&sys, lo, Class::Eb, hi, Class::Pb, 2, m, p));
        assert!(!table1_leq(&sys, lo, Class::Db, hi, Class::Pb, 2, m, p));
    }
}
