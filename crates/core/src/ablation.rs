//! Ablated variants of PD² — for studying *why* its tie-breaks matter.
//!
//! PD² layers two tie-breaks over the EPDF core: the b-bit and, for heavy
//! tasks, the group deadline. The paper notes EPDF (no tie-breaks) is
//! suboptimal; the natural ablation questions are:
//!
//! * does the b-bit alone suffice? ([`Pd2NoGroupDeadline`])
//! * does the group deadline alone suffice? ([`Pd2NoBBit`] — note the
//!   group-deadline rule is gated on both b-bits being 1 in real PD², so
//!   this variant applies it unconditionally)
//!
//! Neither does: `tests/ablation.rs` pins concrete feasible task systems
//! on which each ablated order misses deadlines under SFQ while full PD²
//! misses none, and the ablation bench measures how often random systems
//! separate the variants.

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskRef, TaskSystem};

use crate::priority::PriorityOrder;

/// PD² without the group-deadline rule: deadline, then b-bit only.
#[derive(Clone, Copy, Debug, Default)]
pub struct Pd2NoGroupDeadline;

impl PriorityOrder for Pd2NoGroupDeadline {
    fn name(&self) -> &'static str {
        "PD2-noGD"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        let (x, y) = (sys.subtask(a), sys.subtask(b));
        x.deadline
            .cmp(&y.deadline)
            .then_with(|| y.bbit.cmp(&x.bbit))
    }
}

/// PD² without the b-bit rule: deadline, then group deadline
/// (unconditionally — light tasks carry `D = 0`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pd2NoBBit;

impl PriorityOrder for Pd2NoBBit {
    fn name(&self) -> &'static str {
        "PD2-noB"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        let (x, y) = (sys.subtask(a), sys.subtask(b));
        x.deadline
            .cmp(&y.deadline)
            .then_with(|| y.group_deadline.cmp(&x.group_deadline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;

    #[test]
    fn ablations_agree_with_pd2_on_deadline_decided_pairs() {
        use crate::pd2::Pd2;
        let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (1, 6)], 24);
        for (a, _) in sys.iter_refs() {
            for (b, _) in sys.iter_refs() {
                let (x, y) = (sys.subtask(a), sys.subtask(b));
                if x.deadline != y.deadline {
                    let expected = Pd2.cmp_strict(&sys, a, b);
                    assert_eq!(Pd2NoGroupDeadline.cmp_strict(&sys, a, b), expected);
                    assert_eq!(Pd2NoBBit.cmp_strict(&sys, a, b), expected);
                }
            }
        }
    }

    #[test]
    fn no_gd_drops_exactly_the_group_deadline_distinction() {
        use crate::priority::PriorityOrder;
        // wt 7/8 vs 3/4 at equal deadline, both b = 1: PD² separates by
        // D; the ablation ties.
        let sys = release::periodic(&[(7, 8), (3, 4)], 4);
        let a = sys.iter_refs().next().unwrap().0;
        let b = sys
            .iter_refs()
            .find(|(_, s)| s.id.task.0 == 1 && s.id.index == 1)
            .unwrap()
            .0;
        assert!(crate::pd2::Pd2.precedes(&sys, a, b));
        assert_eq!(
            Pd2NoGroupDeadline.cmp_strict(&sys, a, b),
            core::cmp::Ordering::Equal
        );
    }
}
