//! Regression properties for the i128-widened [`Rat`] and the `int`
//! helpers' documented overflow edges.
//!
//! The lag accountant reduces every value, but its *intermediate*
//! cross-multiplications reach `GRID · cost_numerator` per term
//! (`GRID = 720720`, the lcm-of-1..13 cost grid) — products that overflow
//! `i64` while fitting comfortably in `i128`. These properties pin the
//! widened arithmetic to a naive `i128` reference model and exercise the
//! exact denominator products the conformance campaigns produce.

use pfair_numeric::{ceil_div, floor_div, gcd_i128, lcm, Rat};
use proptest::prelude::*;

/// The cost grid used by the workload generators.
const GRID: i64 = 720_720;

/// Naive reference rational: cross-multiply in `i128`, reduce once at the
/// end. Agreement with [`Rat`] shows the gcd-factored fast paths change
/// nothing but the intermediate magnitudes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ref {
    num: i128,
    den: i128,
}

impl Ref {
    fn new(num: i128, den: i128) -> Ref {
        assert!(den != 0);
        let g = gcd_i128(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ref { num, den }
    }

    fn of(r: Rat) -> Ref {
        Ref::new(r.num(), r.den())
    }

    fn add(self, o: Ref) -> Ref {
        Ref::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn sub(self, o: Ref) -> Ref {
        Ref::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }

    fn mul(self, o: Ref) -> Ref {
        Ref::new(self.num * o.num, self.den * o.den)
    }

    fn div(self, o: Ref) -> Ref {
        assert!(o.num != 0);
        Ref::new(self.num * o.den, self.den * o.num)
    }
}

proptest! {
    /// Every binary op agrees with the reference model on GRID-scale
    /// operands (numerators up to one hyperperiod of quanta, denominators
    /// up to `GRID · 13`, the largest reduced lag-term denominator).
    #[test]
    fn prop_ops_agree_with_i128_reference(
        a in -5_000_000i64..5_000_000,
        b in 1i64..GRID * 13,
        c in -5_000_000i64..5_000_000,
        d in 1i64..GRID * 13,
    ) {
        let x = Rat::new(a, b);
        let y = Rat::new(c, d);
        let (rx, ry) = (Ref::of(x), Ref::of(y));
        prop_assert_eq!(Ref::of(x + y), rx.add(ry));
        prop_assert_eq!(Ref::of(x - y), rx.sub(ry));
        prop_assert_eq!(Ref::of(x * y), rx.mul(ry));
        if c != 0 {
            prop_assert_eq!(Ref::of(x / y), rx.div(ry));
        }
        prop_assert_eq!(x < y, (rx.sub(ry)).num < 0);
    }

    /// Accumulating a lag series over GRID-denominator terms never
    /// panics and telescopes exactly: `Σ kᵢ/GRID == (Σ kᵢ)/GRID`, even
    /// when each step also divides by an in-flight cost numerator
    /// (denominator products up to `GRID² · 13 · n` per step — far past
    /// `i64`, well inside `i128`).
    #[test]
    fn prop_grid_denominator_products_do_not_panic(
        ks in proptest::collection::vec(1i64..=GRID, 1..40),
        cost_num in 1i64..=13,
    ) {
        let mut sum = Rat::ZERO;
        for &k in &ks {
            sum += Rat::new(k, GRID);
        }
        let total: i64 = ks.iter().sum();
        prop_assert_eq!(sum, Rat::new(total, GRID));

        // The received-allocation term: (t − start)/cost with a start on
        // the grid and a cost on the grid divided by its numerator.
        let start = Rat::new(ks[0], GRID);
        let cost = Rat::new(cost_num, GRID);
        let t = Rat::int(1);
        let received = (t - start) / cost;
        prop_assert_eq!(
            Ref::of(received),
            Ref::of(t).sub(Ref::of(start)).div(Ref::of(cost))
        );
    }

    /// `floor_div`/`ceil_div` match `i128` mathematics over the full
    /// `i64` operand range — including the `a + b - 1` intermediate that
    /// would overflow a naive `i64` implementation near `i64::MAX`.
    #[test]
    fn prop_floor_ceil_div_match_i128_math(a in i64::MIN..=i64::MAX, b in 1i64..=i64::MAX) {
        let fl = i128::from(a).div_euclid(i128::from(b));
        let ce = -(-i128::from(a)).div_euclid(i128::from(b));
        prop_assert_eq!(i128::from(floor_div(a, b)), fl);
        prop_assert_eq!(i128::from(ceil_div(a, b)), ce);
    }

    /// `lcm` either returns the exact mathematical lcm or panics — it
    /// never wraps to a wrong value.
    #[test]
    fn prop_lcm_is_exact_or_panics(a in 1i64..=i64::MAX, b in 1i64..=i64::MAX) {
        let got = std::panic::catch_unwind(|| lcm(a, b));
        let exact = {
            let g = gcd_i128(i128::from(a), i128::from(b));
            i128::from(a) / g * i128::from(b)
        };
        match got {
            Ok(v) => prop_assert_eq!(i128::from(v), exact),
            Err(_) => prop_assert!(exact > i128::from(i64::MAX), "lcm({a}, {b}) panicked but {exact} fits i64"),
        }
    }
}

#[test]
fn ceil_div_survives_the_extremes() {
    assert_eq!(ceil_div(i64::MAX, 1), i64::MAX);
    assert_eq!(ceil_div(i64::MAX, 2), i64::MAX / 2 + 1);
    assert_eq!(ceil_div(i64::MIN, 1), i64::MIN);
    assert_eq!(ceil_div(i64::MIN + 1, i64::MAX), -1);
    assert_eq!(ceil_div(i64::MIN + 2, i64::MAX), 0);
    assert_eq!(floor_div(i64::MIN, 1), i64::MIN);
    assert_eq!(floor_div(i64::MIN, i64::MAX), -2);
}

#[test]
fn lcm_overflow_panics_with_a_diagnostic() {
    // Two large coprime operands: the exact lcm is their product, far
    // beyond i64; the documented contract is a panic, not a wrap.
    let err = std::panic::catch_unwind(|| lcm(i64::MAX, i64::MAX - 1))
        .expect_err("lcm of huge coprimes must panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("lcm overflow"),
        "unexpected panic payload: {msg}"
    );
}

#[test]
fn widened_rat_holds_reduced_denominators_beyond_i64() {
    // Coprime denominators whose product exceeds i64 — the shape straddling
    // in-flight quanta produce in the lag series. The reduced sum keeps
    // the full product as its denominator, which only i128 can hold.
    let p = (1i64 << 31) - 1; // Mersenne prime 2^31 − 1
    let q = (1i64 << 61) - 1; // Mersenne prime 2^61 − 1
    let s = Rat::new(1, p) + Rat::new(1, q);
    assert_eq!(s.num(), i128::from(p) + i128::from(q));
    assert_eq!(s.den(), i128::from(p) * i128::from(q));
    assert!(s.den() > i128::from(i64::MAX), "den = {}", s.den());
}
