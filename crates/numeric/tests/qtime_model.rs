//! Model-based properties for the [`QTime`] fixed-point fast path.
//!
//! Every `QTime` op must agree with a naive `i128` rational reference
//! model on GRID-scale operands (the denominators the workload generators
//! actually produce), and every edge the fast path cannot represent —
//! off-grid denominators, tick counts past `i64` — must come back as
//! `None` while exact [`Rat`] arithmetic (the fallback the simulators
//! migrate to) still carries the true value. Companion to
//! `overflow_edges.rs`, one layer down: that file pins `Rat` to the
//! reference model, this one pins `QTime` to `Rat`.

use pfair_numeric::{gcd_i128, QScale, QTime, Rat};
use proptest::prelude::*;

/// The cost grid used by the workload generators.
const GRID: i64 = 720_720;

/// Naive reference rational: cross-multiply in `i128`, reduce once at the
/// end — deliberately free of the tick representation under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ref {
    num: i128,
    den: i128,
}

impl Ref {
    fn new(num: i128, den: i128) -> Ref {
        assert!(den != 0);
        let g = gcd_i128(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ref { num, den }
    }

    fn of(r: Rat) -> Ref {
        Ref::new(r.num(), r.den())
    }

    fn add(self, o: Ref) -> Ref {
        Ref::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn sub(self, o: Ref) -> Ref {
        Ref::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

proptest! {
    /// Conversion is exact both ways: ticks of `a/GRID` at scale GRID are
    /// exactly `a`, and `to_rat ∘ from_rat` is the identity.
    #[test]
    fn prop_grid_conversion_round_trips(a in -20_000_000i64..20_000_000) {
        let s = QScale::new(GRID);
        let r = Rat::new(a, GRID);
        let t = s.from_rat(r).expect("GRID-denominator value is on the grid");
        prop_assert_eq!(t.ticks(), a);
        prop_assert_eq!(s.to_rat(t), r);
    }

    /// Checked add/sub agree with the i128 reference model wherever they
    /// return `Some` — across event-time magnitudes (thousands of quanta)
    /// combined with single-quantum grid costs, the DVQ loop's exact mix.
    #[test]
    fn prop_ops_agree_with_i128_reference(
        quanta in -100_000i64..100_000,
        a in -GRID..=GRID,
        b in -GRID..=GRID,
    ) {
        let s = QScale::new(GRID);
        let base = s.int(quanta).expect("10^5 quanta fit the GRID scale");
        let ca = s.from_rat(Rat::new(a, GRID)).expect("on grid");
        let cb = s.from_rat(Rat::new(b, GRID)).expect("on grid");

        let m = |r: Rat| Ref::of(r);
        let sum = base
            .checked_add(ca)
            .and_then(|t| t.checked_add(cb))
            .expect("well within i64 ticks");
        prop_assert_eq!(
            m(s.to_rat(sum)),
            m(Rat::int(quanta)).add(m(Rat::new(a, GRID))).add(m(Rat::new(b, GRID)))
        );
        let diff = base.checked_sub(ca).expect("well within i64 ticks");
        prop_assert_eq!(
            m(s.to_rat(diff)),
            m(Rat::int(quanta)).sub(m(Rat::new(a, GRID)))
        );
    }

    /// Ordering of tick counts is the ordering of the rationals they
    /// denote — the whole point of the fast path's heap keys.
    #[test]
    fn prop_tick_order_is_rational_order(
        a in -20_000_000i64..20_000_000,
        b in -20_000_000i64..20_000_000,
    ) {
        let s = QScale::new(GRID);
        let (ta, tb) = (
            s.from_rat(Rat::new(a, GRID)).expect("on grid"),
            s.from_rat(Rat::new(b, GRID)).expect("on grid"),
        );
        prop_assert_eq!(ta.cmp(&tb), s.to_rat(ta).cmp(&s.to_rat(tb)));
    }

    /// Forced overflow: push a tick count past `i64::MAX`. The checked op
    /// must refuse (`None`), and the exact fallback — plain `Rat`
    /// arithmetic on the same values — must still produce the true result,
    /// matching the reference model.
    #[test]
    fn prop_overflow_takes_the_exact_fallback(extra in 1i64..1_000_000) {
        let s = QScale::new(GRID);
        let near_max = i64::MAX / GRID;
        let big = s.int(near_max).expect("floor(i64::MAX/GRID) quanta fit");
        let step = s.int(extra).expect("small step fits");
        // Tick arithmetic refuses…
        prop_assert_eq!(big.checked_add(step), None);
        prop_assert_eq!(s.int(near_max.checked_add(extra).expect("i64 sum")), None);
        // …and the exact domain carries on, agreeing with the reference.
        let exact = s.to_rat(big) + Rat::int(extra);
        prop_assert_eq!(
            Ref::of(exact),
            Ref::of(s.to_rat(big)).add(Ref::of(Rat::int(extra)))
        );
    }

    /// Off-grid denominators are refused exactly (never rounded): `p/q`
    /// with `q` coprime to the grid converts iff `q == 1`, and the exact
    /// fallback represents it regardless.
    #[test]
    fn prop_off_grid_is_refused_not_rounded(p in 1i64..1_000, q in 1i64..1_000) {
        let s = QScale::new(GRID);
        let r = Rat::new(p, q);
        match s.from_rat(r) {
            Some(t) => {
                // Accepted ⇒ the reduced denominator divides the grid and
                // the round trip is exact.
                prop_assert_eq!(GRID % r.den_i64(), 0);
                prop_assert_eq!(s.to_rat(t), r);
            }
            None => {
                // Refused ⇒ genuinely off-grid; the fallback still has it.
                prop_assert!(GRID % r.den_i64() != 0);
                prop_assert_eq!(Ref::of(r), Ref::new(i128::from(p), i128::from(q)));
            }
        }
    }
}

/// Deterministic forced-overflow edge: the largest representable integral
/// time, one tick past it, and `QTime::ZERO` as the additive identity.
#[test]
fn overflow_edge_is_one_tick_wide() {
    let s = QScale::new(GRID);
    let max_quanta = i64::MAX / GRID;
    let edge = s.int(max_quanta).expect("max integral time fits");
    assert_eq!(s.int(max_quanta + 1), None);
    assert_eq!(edge.checked_add(QTime::ZERO), Some(edge));
    let tick = s
        .from_rat(Rat::new(1, GRID))
        .expect("one tick is on the grid");
    // One whole quantum past the edge must refuse; a single tick still
    // fits (i64::MAX − max_quanta·GRID ≥ 1 tick of headroom here).
    assert_eq!(edge.checked_add(s.int(1).expect("one quantum fits")), None);
    assert_eq!(
        edge.checked_add(tick).map(QTime::ticks),
        Some(max_quanta * GRID + 1)
    );
}
