//! Integer helpers used by the Pfair window formulas.
//!
//! The release and deadline of subtask `T_i` of a task with weight
//! `wt = e/p` are `r(T_i) = ⌊(i−1)·p/e⌋` and `d(T_i) = ⌈i·p/e⌉`
//! (Eq. (2) of the paper). Rust's integer division truncates toward zero,
//! which differs from mathematical floor/ceil for negative operands, so we
//! provide explicit [`floor_div`] / [`ceil_div`].

/// Greatest common divisor (non-negative result; `gcd(0, 0) == 0`).
#[must_use]
pub fn gcd(a: i64, b: i64) -> i64 {
    i64::try_from(gcd_u64(a.unsigned_abs(), b.unsigned_abs()))
        .expect("gcd overflows i64 only for (i64::MIN, 0) or (0, i64::MIN)")
}

/// Binary (Stein) GCD over machine words. This sits under every `Rat`
/// reduction — the schedulers construct a rational per cost draw and per
/// emitted boundary — so it must not fall back to division loops.
#[must_use]
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Greatest common divisor over the full `i128` range used by [`Rat`]
/// internals (non-negative result; `gcd_i128(0, 0) == 0`).
///
/// `i128::MIN` operands are rejected by [`Rat`]'s constructors, so the
/// absolute values here never overflow.
///
/// Nearly every rational in the workspace has machine-word components, and
/// `i128` `%` is a library call on 64-bit targets — so this dispatches to
/// the word-sized binary GCD whenever both operands fit, and otherwise
/// runs Euclid only until they do.
///
/// [`Rat`]: crate::Rat
#[must_use]
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    loop {
        if let (Ok(a), Ok(b)) = (u64::try_from(a), u64::try_from(b)) {
            return i128::from(gcd_u64(a, b));
        }
        if b == 0 {
            return i128::try_from(a).expect("gcd of Rat components fits i128 (no i128::MIN)");
        }
        let t = a % b;
        a = b;
        b = t;
    }
}

/// Least common multiple (non-negative; `lcm(0, x) == 0`).
///
/// # Panics
/// Panics if the result does not fit into `i64`.
#[must_use]
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    let res = (i128::from(a) / i128::from(g)) * i128::from(b);
    i64::try_from(res.abs()).expect("lcm overflow")
}

/// Least common multiple that reports overflow instead of panicking:
/// `None` iff the exact lcm does not fit `i64`. Used where an oversized
/// lcm is an expected outcome that callers degrade around (e.g. picking a
/// fixed-point [`QScale`](crate::QScale) — an unrepresentable scale just
/// means staying on exact [`Rat`](crate::Rat) arithmetic), in contrast to
/// [`lcm`], whose panic marks a broken invariant.
#[must_use]
pub fn checked_lcm(a: i64, b: i64) -> Option<i64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd(a, b);
    let res = (i128::from(a) / i128::from(g)) * i128::from(b);
    i64::try_from(res.abs()).ok()
}

/// Mathematical floor division: `⌊a / b⌋`, requires `b > 0`.
#[must_use]
pub fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "floor_div requires a positive divisor");
    a.div_euclid(b)
}

/// Mathematical ceiling division: `⌈a / b⌉`, requires `b > 0`.
#[must_use]
pub fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "ceil_div requires a positive divisor");
    // div_euclid floors; add (b-1) safely via i128 to avoid overflow at the
    // extremes.
    let num = i128::from(a) + i128::from(b) - 1;
    i64::try_from(num.div_euclid(i128::from(b))).expect("ceil_div overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(18, 12), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
    }

    #[test]
    fn binary_gcd_matches_euclid() {
        fn euclid(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let samples = [
            0u64,
            1,
            2,
            3,
            12,
            18,
            720_720,
            i64::MAX as u64,
            u64::MAX,
            1 << 63,
            (1 << 63) - 1,
            999_999_937,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(gcd_u64(a, b), euclid(a, b), "gcd_u64({a}, {b})");
            }
        }
    }

    #[test]
    fn gcd_i128_wide_operands() {
        // Operands beyond u64 exercise the Euclid-until-word prefix.
        let big = i128::from(u64::MAX) * 6;
        assert_eq!(gcd_i128(big, 4), 2);
        assert_eq!(gcd_i128(big, big), big);
        // 2⁶⁴ − 1 is divisible by 3, so 6·(2⁶⁴ − 1) is divisible by 9.
        assert_eq!(gcd_i128(-big, 9), 9);
        assert_eq!(gcd_i128(big, 27), 9);
        assert_eq!(gcd_i128(0, big), big);
        assert_eq!(gcd_i128(i128::MAX, i128::MAX - 1), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(6, 4), 12);
        assert_eq!(lcm(0, 9), 0);
        assert_eq!(lcm(1, 9), 9);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn checked_lcm_matches_lcm_and_reports_overflow() {
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(0, 9), Some(0));
        assert_eq!(checked_lcm(-4, 6), Some(12));
        assert_eq!(checked_lcm(720_720, 7), Some(720_720));
        assert_eq!(checked_lcm(i64::MAX, i64::MAX - 1), None);
    }

    #[test]
    fn floor_div_matches_math() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(floor_div(-6, 3), -2);
        assert_eq!(floor_div(0, 5), 0);
    }

    #[test]
    fn ceil_div_matches_math() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(6, 3), 2);
        assert_eq!(ceil_div(-6, 3), -2);
        assert_eq!(ceil_div(0, 5), 0);
        assert_eq!(ceil_div(1, 1), 1);
    }

    #[test]
    fn window_formula_fig1a() {
        // Fig. 1(a): wt = 3/4 ⇒ windows [0,2), [1,3), [2,4) for i = 1..3.
        let (e, p) = (3_i64, 4_i64);
        let r = |i: i64| floor_div((i - 1) * p, e);
        let d = |i: i64| ceil_div(i * p, e);
        assert_eq!((r(1), d(1)), (0, 2));
        assert_eq!((r(2), d(2)), (1, 3));
        assert_eq!((r(3), d(3)), (2, 4));
        // The pattern repeats for every job: job 2 spans [4, 8).
        assert_eq!((r(4), d(4)), (4, 6));
    }
}
