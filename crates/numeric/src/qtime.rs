//! Fixed-point quantum-boundary times: the i64 fast path under [`Rat`].
//!
//! DVQ event times are rationals, but in any concrete run they live on a
//! *grid*: every decision time is an integer combination of subtask
//! eligibility times (integers) and actual costs, and every cost model in
//! this workspace draws costs whose denominators divide a small, known
//! constant (e.g. the workload generators' 720720 = lcm(1..13) grid). On
//! that grid a time is just an integer count of **ticks** — `1/scale`-ths
//! of a quantum — and the event heap can compare plain `i64`s instead of
//! cross-multiplying `i128` rationals on every sift.
//!
//! This module provides the two types of that fast path:
//!
//! * [`QScale`] — the ticks-per-quantum scale, computed once per run as the
//!   lcm of the cost model's denominators (see
//!   `CostModel::denominator_hint` in `pfair-sim`);
//! * [`QTime`] — a time point as a signed tick count at a given scale.
//!
//! # The fallback contract
//!
//! Every conversion and arithmetic op is **checked** and total: anything
//! that cannot be represented exactly — a cost off the grid
//! ([`QScale::from_rat`] returns `None` unless the reduced denominator
//! divides the scale), or a tick count outside `i64` — returns `None`
//! instead of rounding. Callers (the simulators' event loops) treat `None`
//! as "leave the fast path": they migrate their state to exact [`Rat`]
//! times via [`QScale::to_rat`] — which is always exact, a `QTime` *is* a
//! rational — and resume. Fixed point is an optimization, never a change
//! of semantics; the equivalence tests in `pfair-numeric` and the
//! schedule-identity tests in the workspace root pin that down.

use crate::int::checked_lcm;
use crate::rational::Rat;

/// Number of ticks per quantum for a [`QTime`] — the fixed-point scale.
///
/// Always strictly positive. Conversions between [`Rat`] and [`QTime`] go
/// through the scale; see the module docs for the exactness contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QScale {
    ticks_per_quantum: i64,
}

impl QScale {
    /// A scale of `ticks_per_quantum` ticks per quantum.
    ///
    /// # Panics
    /// Panics unless `ticks_per_quantum > 0`.
    #[must_use]
    pub fn new(ticks_per_quantum: i64) -> QScale {
        assert!(
            ticks_per_quantum > 0,
            "QScale requires a positive ticks-per-quantum, got {ticks_per_quantum}"
        );
        QScale { ticks_per_quantum }
    }

    /// The smallest scale representing every denominator in `dens` exactly:
    /// their (checked) lcm. `None` if the lcm overflows `i64` or any
    /// denominator is non-positive; an empty iterator yields scale 1.
    #[must_use]
    pub fn lcm_of(dens: impl IntoIterator<Item = i64>) -> Option<QScale> {
        let mut scale = 1i64;
        for d in dens {
            if d <= 0 {
                return None;
            }
            scale = checked_lcm(scale, d)?;
        }
        Some(QScale::new(scale))
    }

    /// The scale as a raw tick count per quantum.
    #[must_use]
    pub fn ticks_per_quantum(self) -> i64 {
        self.ticks_per_quantum
    }

    /// The integral time `n` (quanta) in ticks; `None` on overflow.
    #[must_use]
    pub fn int(self, n: i64) -> Option<QTime> {
        let ticks = i128::from(n).checked_mul(i128::from(self.ticks_per_quantum))?;
        i64::try_from(ticks).ok().map(|ticks| QTime { ticks })
    }

    /// `t` in ticks, **exactly** — `None` unless `t`'s reduced denominator
    /// divides the scale and the tick count fits `i64`. Never rounds.
    #[must_use]
    pub fn from_rat(self, t: Rat) -> Option<QTime> {
        let scale = i128::from(self.ticks_per_quantum);
        let den = t.den();
        if scale % den != 0 {
            // `t` is reduced, so `num·scale/den` is integral iff den | scale.
            return None;
        }
        let ticks = t.num().checked_mul(scale / den)?;
        i64::try_from(ticks).ok().map(|ticks| QTime { ticks })
    }

    /// The exact rational value of `t` at this scale (always succeeds: a
    /// tick count *is* a rational with denominator `scale`).
    #[must_use]
    pub fn to_rat(self, t: QTime) -> Rat {
        Rat::new(t.ticks, self.ticks_per_quantum)
    }
}

/// A point on the time line as a signed tick count at some [`QScale`].
///
/// The scale is deliberately *not* stored per value — a run fixes one scale
/// up front and all its `QTime`s share it, which is what makes comparisons
/// a single `i64` compare. Mixing ticks from different scales is a caller
/// bug that the type system does not catch; keep the scale alongside the
/// collection, as the simulators' time domains do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct QTime {
    ticks: i64,
}

impl QTime {
    /// Time zero (zero ticks at every scale).
    pub const ZERO: QTime = QTime { ticks: 0 };

    /// The raw tick count.
    #[must_use]
    pub fn ticks(self) -> i64 {
        self.ticks
    }

    /// A time from a raw tick count (the inverse of [`QTime::ticks`]). The
    /// caller owns the scale discipline, as with every other `QTime` op;
    /// the simulators use this to unpack tick counts they packed into
    /// wider integer keys.
    #[must_use]
    pub fn from_ticks(ticks: i64) -> QTime {
        QTime { ticks }
    }

    /// Tick-count sum; `None` on `i64` overflow (take the exact fallback).
    #[must_use]
    pub fn checked_add(self, rhs: QTime) -> Option<QTime> {
        self.ticks
            .checked_add(rhs.ticks)
            .map(|ticks| QTime { ticks })
    }

    /// Tick-count difference; `None` on `i64` overflow.
    #[must_use]
    pub fn checked_sub(self, rhs: QTime) -> Option<QTime> {
        self.ticks
            .checked_sub(rhs.ticks)
            .map(|ticks| QTime { ticks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_to_rat_round_trip() {
        let s = QScale::new(720_720);
        for n in [-3i64, 0, 1, 24, 1000] {
            let t = s.int(n).expect("small integers fit any sane scale");
            assert_eq!(s.to_rat(t), Rat::int(n));
        }
    }

    #[test]
    fn from_rat_is_exact_only() {
        let s = QScale::new(12);
        assert_eq!(s.from_rat(Rat::new(1, 4)).map(QTime::ticks), Some(3));
        assert_eq!(s.from_rat(Rat::new(-5, 6)).map(QTime::ticks), Some(-10));
        // 1/5 is not on the 12-tick grid: no rounding, just refusal.
        assert_eq!(s.from_rat(Rat::new(1, 5)), None);
        assert_eq!(s.from_rat(Rat::new(7, 13)), None);
    }

    #[test]
    fn from_rat_round_trips_through_to_rat() {
        let s = QScale::new(720_720);
        for (n, d) in [(1i64, 2i64), (7, 8), (719, 720), (5, 13), (-3, 11)] {
            let r = Rat::new(n, d);
            let t = s.from_rat(r).expect("grid denominators divide 720720");
            assert_eq!(s.to_rat(t), r);
        }
    }

    #[test]
    fn overflow_returns_none() {
        let s = QScale::new(720_720);
        assert_eq!(s.int(i64::MAX / 2), None);
        let big = s.int(i64::MAX / 720_720 - 1).expect("near the edge fits");
        assert_eq!(big.checked_add(big), None);
        assert_eq!(s.from_rat(Rat::int(i64::MAX / 2)), None);
    }

    #[test]
    fn checked_ops_are_tick_arithmetic() {
        let s = QScale::new(6);
        let a = s.from_rat(Rat::new(1, 2)).expect("1/2 on the 6-grid");
        let b = s.from_rat(Rat::new(1, 3)).expect("1/3 on the 6-grid");
        let sum = a.checked_add(b).expect("no overflow");
        assert_eq!(s.to_rat(sum), Rat::new(5, 6));
        let diff = a.checked_sub(b).expect("no overflow");
        assert_eq!(s.to_rat(diff), Rat::new(1, 6));
    }

    #[test]
    fn lcm_of_accumulates_and_checks() {
        assert_eq!(
            QScale::lcm_of([2, 3, 8]).map(QScale::ticks_per_quantum),
            Some(24)
        );
        assert_eq!(QScale::lcm_of([]).map(QScale::ticks_per_quantum), Some(1));
        assert_eq!(QScale::lcm_of([0]), None);
        // Pairwise-coprime primes near 2^32 overflow the i64 lcm.
        assert_eq!(QScale::lcm_of([4_294_967_291, 4_294_967_279]), None);
    }

    #[test]
    #[should_panic(expected = "positive ticks-per-quantum")]
    fn zero_scale_rejected() {
        let _ = QScale::new(0);
    }
}
