//! Exact numeric foundations for Pfair scheduling simulation.
//!
//! Under the **DVQ model** (desynchronized, variable-sized quanta) of
//! Devi & Anderson (IPPS 2005), scheduling decisions occur at *non-integral*
//! times: a subtask that yields `δ` before the end of its quantum frees its
//! processor at a time like `2 − δ`, and the chain of subsequent decisions
//! produces arbitrary rational event times. Reproducing the paper's
//! boundary-sensitive scenarios (e.g. a processor freeing "just before" an
//! eligibility boundary) with floating point would be fragile: the whole
//! analysis turns on exact comparisons such as `t < 2` vs `t = 2`.
//!
//! This crate therefore provides:
//!
//! * [`Rat`] — an exact, always-reduced rational number backed by `i128`
//!   numerator/denominator with gcd-factored checked arithmetic (a
//!   diagnostic panic only when even the *reduced* result overflows, which
//!   lag sums on the 720720 cost grid never do);
//! * [`Time`] — a transparent alias of [`Rat`] used for points on the real
//!   time line, with slot helpers ([`slot_of`], [`is_slot_boundary`]);
//! * [`QScale`] / [`QTime`] — the overflow-checked fixed-point fast path
//!   for runs whose event times stay on a known rational grid: times as
//!   `i64` tick counts that compare in one instruction, with every
//!   conversion exact-or-`None` so callers fall back to [`Rat`] instead of
//!   ever rounding (see the [`qtime`] module docs for the contract);
//! * integer helpers ([`gcd`], [`lcm`], [`checked_lcm`], [`floor_div`],
//!   [`ceil_div`]) used by the Pfair window formulas
//!   `r(T_i) = ⌊(i−1)p/e⌋`, `d(T_i) = ⌈ip/e⌉`.
//!
//! The quantum size is normalized to `1` throughout the workspace, matching
//! the paper's convention ("we henceforth assume that the quantum size is
//! one time unit").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod int;
pub mod qtime;
pub mod quantum;
pub mod rational;
pub mod time;

pub use int::{ceil_div, checked_lcm, floor_div, gcd, gcd_i128, lcm};
pub use qtime::{QScale, QTime};
pub use quantum::QuantumScale;
pub use rational::Rat;
pub use time::{is_slot_boundary, slot_of, Time};
