//! Points and durations on the real time line, in quantum units.
//!
//! The paper normalizes the quantum size to one time unit; "slot `t`" is the
//! interval `[t, t+1)` for integral `t`, and "time `t`" is the beginning of
//! slot `t` (a *slot boundary*). Under the SFQ model all scheduling events
//! are slot boundaries; under the DVQ model they may be arbitrary rationals.

use crate::rational::Rat;

/// A point on the real time line (or a duration), in quantum units.
///
/// Exact rational: DVQ event times like `2 − δ` are represented precisely.
pub type Time = Rat;

/// The slot containing time `t`, i.e. `⌊t⌋`.
///
/// ```
/// use pfair_numeric::{slot_of, Rat};
/// assert_eq!(slot_of(Rat::new(7, 4)), 1); // 1.75 lies in slot 1 = [1, 2)
/// assert_eq!(slot_of(Rat::int(2)), 2);    // slot boundaries open slot t
/// ```
#[must_use]
pub fn slot_of(t: Time) -> i64 {
    t.floor()
}

/// `true` iff `t` is a slot boundary (an integral time).
#[must_use]
pub fn is_slot_boundary(t: Time) -> bool {
    t.is_integer()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_semantics() {
        assert_eq!(slot_of(Rat::ZERO), 0);
        assert_eq!(slot_of(Rat::new(1, 2)), 0);
        assert_eq!(slot_of(Rat::ONE), 1);
        // 2 − δ lies in slot 1 for any 0 < δ ≤ 1.
        let t = Rat::int(2) - Rat::new(1, 1000);
        assert_eq!(slot_of(t), 1);
        assert!(!is_slot_boundary(t));
        assert!(is_slot_boundary(Rat::int(2)));
    }
}
