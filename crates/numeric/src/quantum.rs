//! Conversion between wall-clock units and quantum units.
//!
//! The whole workspace works in quanta (quantum = 1, per the paper's
//! normalization). A deployment must pick a concrete quantum length —
//! LITMUS^RT-style systems use milliseconds-scale ticks — and convert
//! task WCETs/periods into quantum counts. [`QuantumScale`] does those
//! conversions exactly (microsecond granularity), rounding the
//! *execution cost up* and the *period down*, the conservative directions
//! for admission.

use crate::rational::Rat;

/// A concrete quantum length, in integer microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantumScale {
    /// Quantum length in microseconds.
    pub quantum_us: u64,
}

impl QuantumScale {
    /// A scale with the given quantum length.
    ///
    /// # Panics
    /// Panics if `quantum_us == 0`.
    #[must_use]
    pub fn new(quantum_us: u64) -> QuantumScale {
        assert!(quantum_us > 0, "quantum must be positive");
        QuantumScale { quantum_us }
    }

    /// Converts a WCET in microseconds to a whole number of quanta,
    /// rounding **up** (an execution budget must cover the work).
    #[must_use]
    pub fn cost_to_quanta(&self, wcet_us: u64) -> i64 {
        let q = self.quantum_us;
        i64::try_from(wcet_us.div_ceil(q)).expect("cost overflows i64 quanta")
    }

    /// Converts a period in microseconds to a whole number of quanta,
    /// rounding **down** (a shorter nominal period only tightens
    /// deadlines).
    #[must_use]
    pub fn period_to_quanta(&self, period_us: u64) -> i64 {
        i64::try_from(period_us / self.quantum_us).expect("period overflows i64 quanta")
    }

    /// A point in quantum time back to microseconds (exact when the
    /// rational divides the microsecond grid; floor otherwise).
    #[must_use]
    pub fn time_to_us(&self, t: Rat) -> i64 {
        (t * Rat::int(i64::try_from(self.quantum_us).expect("quantum fits i64"))).floor()
    }

    /// The weight `(e, p)` in quanta of a task with the given WCET and
    /// period in microseconds; `None` when the task cannot be expressed
    /// at this quantum size (cost rounds to more than the period — the §1
    /// granularity trade-off made visible).
    #[must_use]
    pub fn weight_quanta(&self, wcet_us: u64, period_us: u64) -> Option<(i64, i64)> {
        let e = self.cost_to_quanta(wcet_us);
        let p = self.period_to_quanta(period_us);
        (e >= 1 && p >= e).then_some((e, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_conservatively() {
        let s = QuantumScale::new(1_000); // 1 ms quantum
        assert_eq!(s.cost_to_quanta(1), 1); // any work needs one quantum
        assert_eq!(s.cost_to_quanta(1_000), 1);
        assert_eq!(s.cost_to_quanta(1_001), 2);
        assert_eq!(s.period_to_quanta(9_999), 9);
        assert_eq!(s.period_to_quanta(10_000), 10);
    }

    #[test]
    fn weight_extraction() {
        let s = QuantumScale::new(1_000);
        // 3.2 ms of work every 10 ms → 4 quanta / 10 quanta.
        assert_eq!(s.weight_quanta(3_200, 10_000), Some((4, 10)));
        // Work that saturates its period still fits (weight 1).
        assert_eq!(s.weight_quanta(9_500, 10_000), Some((10, 10)));
        // A 0.5 ms-period task cannot be expressed at a 1 ms quantum.
        assert_eq!(s.weight_quanta(100, 500), None);
    }

    #[test]
    fn quantum_size_tradeoff() {
        // Shrinking the quantum reduces rounding inflation: the paper's §1
        // granularity discussion, quantified.
        let coarse = QuantumScale::new(1_000);
        let fine = QuantumScale::new(100);
        let (e1, p1) = coarse.weight_quanta(1_100, 10_000).unwrap();
        let (e2, p2) = fine.weight_quanta(1_100, 10_000).unwrap();
        let w_coarse = Rat::new(e1, p1);
        let w_fine = Rat::new(e2, p2);
        assert!(w_fine < w_coarse); // less utilization wasted to rounding
        assert_eq!(w_coarse, Rat::new(2, 10));
        assert_eq!(w_fine, Rat::new(11, 100));
    }

    #[test]
    fn time_round_trip() {
        let s = QuantumScale::new(250);
        assert_eq!(s.time_to_us(Rat::new(7, 2)), 875);
        assert_eq!(s.time_to_us(Rat::int(4)), 1_000);
    }
}
