//! An exact, always-reduced rational number.
//!
//! [`Rat`] is the workhorse numeric type of the workspace: task weights
//! (`wt(T) = T.e / T.p`), utilization sums, DVQ event times, and actual
//! execution costs `c(T_i) ∈ (0, 1]` are all `Rat`s. All arithmetic is
//! exact; components are stored as `i128` so that lag sums over
//! GRID-resolution (denominator 720720) cost models — whose reduced
//! denominators are products of several near-coprime cost numerators and
//! genuinely exceed `i64` — stay representable. Every operation first
//! reduces through gcd factoring (Knuth 4.5.1) and only panics, with a
//! diagnostic message naming the operands, if the *reduced* result still
//! exceeds `i128`.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize, Value};

use crate::int::gcd_i128;

/// An exact rational number `num / den` with `den > 0`, always reduced.
///
/// ```
/// use pfair_numeric::Rat;
/// let half = Rat::new(1, 2);
/// let third = Rat::new(1, 3);
/// assert_eq!(half + third, Rat::new(5, 6));
/// assert!(half > third);
/// assert_eq!((half * Rat::int(4)).to_string(), "2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

#[cold]
#[inline(never)]
fn overflow_panic(op: &str, a: Rat, b: Rat) -> ! {
    panic!(
        "Rat overflow: {a} {op} {b} is not representable even after reduction (i128 components)"
    );
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One (one quantum, when used as a duration).
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den`, reduced to lowest terms.
    ///
    /// Reduction runs in machine words — for word-sized components the
    /// divisions by the gcd are single instructions, not the `i128`
    /// library calls [`Rat::new_i128`] needs. This constructor sits under
    /// every tick→rational conversion and cost draw in the simulators'
    /// hot paths.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i64, den: i64) -> Rat {
        if num == i64::MIN || den == i64::MIN {
            // `i64::MIN / -1` would overflow; take the wide path.
            return Rat::new_i128(i128::from(num), i128::from(den));
        }
        assert!(den != 0, "Rat denominator must be nonzero");
        let g = crate::int::gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat {
            num: i128::from(num),
            den: i128::from(den),
        }
    }

    /// Creates `num / den` from full-width components, reduced to lowest
    /// terms.
    ///
    /// # Panics
    /// Panics if `den == 0`, or if either component is `i128::MIN` (whose
    /// negation is unrepresentable).
    #[must_use]
    pub fn new_i128(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat denominator must be nonzero");
        assert!(
            num != i128::MIN && den != i128::MIN,
            "Rat component i128::MIN is not supported (negation overflows)"
        );
        let g = gcd_i128(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Creates the integer `n`.
    #[must_use]
    pub const fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (of the reduced form; sign lives here).
    #[must_use]
    pub const fn num(self) -> i128 {
        self.num
    }

    /// Denominator (of the reduced form; always positive).
    #[must_use]
    pub const fn den(self) -> i128 {
        self.den
    }

    /// Numerator as `i64`, for callers marshalling into narrow interfaces.
    ///
    /// # Panics
    /// Panics with a diagnostic if the numerator exceeds `i64`.
    #[must_use]
    pub fn num_i64(self) -> i64 {
        i64::try_from(self.num)
            .unwrap_or_else(|_| panic!("Rat numerator {} does not fit in i64", self.num))
    }

    /// Denominator as `i64`, for callers marshalling into narrow interfaces.
    ///
    /// # Panics
    /// Panics with a diagnostic if the denominator exceeds `i64`.
    #[must_use]
    pub fn den_i64(self) -> i64 {
        i64::try_from(self.den)
            .unwrap_or_else(|_| panic!("Rat denominator {} does not fit in i64", self.den))
    }

    /// `true` iff the value is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `≤ self`.
    ///
    /// # Panics
    /// Panics with a diagnostic if the floor exceeds `i64` (schedule-scale
    /// values never do).
    #[must_use]
    pub fn floor(self) -> i64 {
        let f = self.num.div_euclid(self.den);
        i64::try_from(f).unwrap_or_else(|_| panic!("Rat::floor of {self} does not fit in i64"))
    }

    /// Smallest integer `≥ self`.
    ///
    /// # Panics
    /// Panics with a diagnostic if the ceiling exceeds `i64`.
    #[must_use]
    pub fn ceil(self) -> i64 {
        let c = -(-self.num).div_euclid(self.den);
        i64::try_from(c).unwrap_or_else(|_| panic!("Rat::ceil of {self} does not fit in i64"))
    }

    /// Fractional part `self − ⌊self⌋`, in `[0, 1)`.
    #[must_use]
    pub fn fract(self) -> Rat {
        self - Rat::int(self.floor())
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Reciprocal.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat::recip of zero");
        let (mut num, mut den) = (self.den, self.num);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Lossy conversion to `f64` (for reporting / plotting only; never used
    /// in scheduling decisions).
    #[must_use]
    // pfair-lint: allow(no-float-time): the one sanctioned Rat→float exit, for reports/plots only.
    pub fn to_f64(self) -> f64 {
        // pfair-lint: allow(no-float-time): float arithmetic is confined to this body.
        self.num as f64 / self.den as f64
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

impl From<u32> for Rat {
    fn from(n: u32) -> Rat {
        Rat::int(i64::from(n))
    }
}

impl Add for Rat {
    /// Knuth 4.5.1 gcd-factored addition: reduce by `g = gcd(den, den)`
    /// before cross-multiplying so intermediates stay within `i128`
    /// whenever the reduced result does.
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let g = gcd_i128(self.den, rhs.den);
        // g ≥ 1: both denominators are positive.
        let rd = rhs.den / g;
        let ld = self.den / g;
        let num = self
            .num
            .checked_mul(rd)
            .and_then(|l| rhs.num.checked_mul(ld).and_then(|r| l.checked_add(r)));
        let den = self.den.checked_mul(rd);
        let (Some(num), Some(den)) = (num, den) else {
            overflow_panic("+", self, rhs);
        };
        let g2 = gcd_i128(num, den);
        if g2 == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: num / g2,
            den: den / g2,
        }
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    /// Cross-reduced multiplication: `gcd(a.num, b.den)` and
    /// `gcd(b.num, a.den)` are divided out first, so the result of
    /// multiplying two reduced rationals is reduced by construction and
    /// the intermediates are as small as possible.
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let g1 = gcd_i128(self.num, rhs.den).max(1);
        let g2 = gcd_i128(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        let (Some(num), Some(den)) = (num, den) else {
            overflow_panic("*", self, rhs);
        };
        Rat { num, den }
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "Rat division by zero");
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        // The products overflow i128 only for lag-scale denominators; fall
        // back to the exact continued-fraction walk in that (cold) case.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => cmp_wide(*self, *other),
        }
    }
}

/// Exact comparison of two rationals whose cross-products overflow `i128`:
/// compare signs, then walk the continued-fraction expansions (the integer
/// parts of `a/b` and `c/d`, then recurse on the reciprocals of the
/// fractional parts with the ordering flipped). Terminates like the
/// Euclidean algorithm.
fn cmp_wide(a: Rat, b: Rat) -> Ordering {
    let sa = a.num.signum();
    let sb = b.num.signum();
    if sa != sb {
        return sa.cmp(&sb);
    }
    if sa == 0 {
        return Ordering::Equal;
    }
    let ord = cmp_pos_frac(a.num.abs(), a.den, b.num.abs(), b.den);
    if sa > 0 {
        ord
    } else {
        ord.reverse()
    }
}

/// `an/ad` vs `bn/bd` for strictly positive operands, by continued
/// fractions.
fn cmp_pos_frac(mut an: i128, mut ad: i128, mut bn: i128, mut bd: i128) -> Ordering {
    let mut flipped = false;
    loop {
        let qa = an / ad;
        let qb = bn / bd;
        if qa != qb {
            let ord = qa.cmp(&qb);
            return if flipped { ord.reverse() } else { ord };
        }
        let ra = an - qa * ad;
        let rb = bn - qb * bd;
        match (ra == 0, rb == 0) {
            (true, true) => return Ordering::Equal,
            // A zero remainder means that side is the smaller fraction
            // (equal integer parts, no fractional part left).
            (true, false) => {
                let ord = Ordering::Less;
                return if flipped { ord.reverse() } else { ord };
            }
            (false, true) => {
                let ord = Ordering::Greater;
                return if flipped { ord.reverse() } else { ord };
            }
            (false, false) => {
                // ra/ad vs rb/bd compares as the reverse of ad/ra vs bd/rb.
                (an, ad, bn, bd) = (ad, ra, bd, rb);
                flipped = !flipped;
            }
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// Serialized as the two-element pair `[num, den]`, matching how real serde
// would encode the `(i64, i64)` tuple form. Serialized values (weights,
// costs, event times) live on the generator grids and always fit i64; a
// value that does not is a diagnostic panic, not silent truncation.
impl Serialize for Rat {
    fn to_value(&self) -> Value {
        let num = i64::try_from(self.num)
            .unwrap_or_else(|_| panic!("Rat {self} numerator exceeds the i64 wire format"));
        let den = i64::try_from(self.den)
            .unwrap_or_else(|_| panic!("Rat {self} denominator exceeds the i64 wire format"));
        (num, den).to_value()
    }
}

impl Deserialize for Rat {
    fn from_value(v: &Value) -> Result<Rat, serde::de::Error> {
        let (num, den) = <(i64, i64)>::from_value(v)?;
        if den == 0 {
            return Err(serde::de::Error::custom("Rat denominator must be nonzero"));
        }
        Ok(Rat::new(num, den))
    }
}

/// Error from parsing a [`Rat`] out of text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRatError;

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected an integer or `num/den` with nonzero den")
    }
}

impl std::error::Error for ParseRatError {}

impl core::str::FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"3"`, `"-3"`, or `"num/den"` (e.g. `"7/8"`, `"-1/2"`).
    ///
    /// ```
    /// use pfair_numeric::Rat;
    /// assert_eq!("7/8".parse::<Rat>().unwrap(), Rat::new(7, 8));
    /// assert_eq!("-3".parse::<Rat>().unwrap(), Rat::int(-3));
    /// assert!("1/0".parse::<Rat>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Rat, ParseRatError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: i128 = n.trim().parse().map_err(|_| ParseRatError)?;
            let den: i128 = d.trim().parse().map_err(|_| ParseRatError)?;
            if den == 0 || num == i128::MIN || den == i128::MIN {
                return Err(ParseRatError);
            }
            Ok(Rat::new_i128(num, den))
        } else {
            let num: i128 = s.trim().parse().map_err(|_| ParseRatError)?;
            if num == i128::MIN {
                return Err(ParseRatError);
            }
            Ok(Rat::new_i128(num, 1))
        }
    }
}

impl core::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, x| acc + x)
    }
}

impl<'a> core::iter::Sum<&'a Rat> for Rat {
    fn sum<I: Iterator<Item = &'a Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, x| acc + *x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(-1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(6, 3).num(), 2);
        assert_eq!(Rat::new(6, 3).den(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rat::new(1, 6);
        let b = Rat::new(1, 2);
        assert_eq!(a + b, Rat::new(2, 3));
        assert_eq!(b - a, Rat::new(1, 3));
        assert_eq!(a * b, Rat::new(1, 12));
        assert_eq!(b / a, Rat::int(3));
        assert_eq!(-a, Rat::new(-1, 6));
    }

    #[test]
    fn division_sign_normalization() {
        assert_eq!(Rat::new(1, 2) / Rat::new(-1, 3), Rat::new(-3, 2));
        assert_eq!(Rat::new(-1, 2) / Rat::new(-1, 3), Rat::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Rat::ONE / Rat::ZERO;
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
        assert_eq!(Rat::new(7, 2).fract(), Rat::new(1, 2));
        assert_eq!(Rat::new(-7, 2).fract(), Rat::new(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(2, 4) == Rat::new(1, 2));
        let two_minus_delta = Rat::int(2) - Rat::new(1, 1_000_000);
        assert!(two_minus_delta < Rat::int(2));
    }

    #[test]
    fn wide_ordering_falls_back_exactly() {
        // Cross-products of these overflow i128, forcing the
        // continued-fraction path; the two values differ by 1/(den_a·den_b).
        let d = 10_i128.pow(20);
        let a = Rat::new_i128(d - 1, d); // (d−1)/d
        let b = Rat::new_i128(d - 2, d - 1); // (d−2)/(d−1) < (d−1)/d
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!((-a) < (-b));
        // Mixed signs and integer-part ties.
        let big = Rat::new_i128(3 * d + 1, d);
        let bigger = Rat::new_i128(3 * (d - 1) + 2, d - 1);
        assert!(big < bigger);
        assert!((-bigger) < (-big));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::int(-4).to_string(), "-4");
        assert_eq!(Rat::ZERO.to_string(), "0");
    }

    #[test]
    fn min_max_recip_abs() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.recip(), Rat::int(2));
        assert_eq!(Rat::new(-3, 4).abs(), Rat::new(3, 4));
        assert_eq!(Rat::new(-2, 3).recip(), Rat::new(-3, 2));
    }

    #[test]
    fn sum_iterator() {
        // Six tasks of weight 1/6 plus three of weight 1/2 = utilization 5/2.
        let weights = [
            Rat::new(1, 6),
            Rat::new(1, 6),
            Rat::new(1, 6),
            Rat::new(1, 2),
            Rat::new(1, 2),
            Rat::new(1, 2),
        ];
        let total: Rat = weights.iter().sum();
        assert_eq!(total, Rat::int(2));
    }

    #[test]
    fn from_str_round_trip() {
        for s in ["0", "7", "-3", "1/2", "-22/7", "6/4"] {
            let r: Rat = s.parse().unwrap();
            let again: Rat = r.to_string().parse().unwrap();
            assert_eq!(r, again, "{s}");
        }
        assert!("".parse::<Rat>().is_err());
        assert!("a/b".parse::<Rat>().is_err());
        assert!("1/0".parse::<Rat>().is_err());
        assert!("1.5".parse::<Rat>().is_err());
    }

    #[test]
    fn i64_scale_products_are_now_exact() {
        // The i64-backed Rat panicked here; the i128 components make the
        // full product of two i64-scale values representable.
        let huge = Rat::new(i64::MAX / 2, 1);
        let sq = huge * huge;
        assert_eq!(
            sq.num(),
            i128::from(i64::MAX / 2) * i128::from(i64::MAX / 2)
        );
        let fine = Rat::new(i64::MAX / 4, 3);
        assert_eq!(fine + Rat::ZERO, fine);
        assert_eq!(fine * Rat::ONE, fine);
    }

    #[test]
    fn overflow_is_a_panic_not_a_wrap() {
        // Arithmetic that cannot be represented even in i128 must still
        // fail loudly, with the operands in the message.
        let huge = Rat::new_i128(i128::MAX / 2, 1);
        let err =
            std::panic::catch_unwind(|| huge * huge).expect_err("i128-scale product must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String message");
        assert!(msg.contains("Rat overflow"), "diagnostic message: {msg}");
        // Addition with coprime denominators that cannot share factors.
        let a = Rat::new_i128(i128::MAX / 2, 3);
        let b = Rat::new_i128(i128::MAX / 2, 5);
        assert!(std::panic::catch_unwind(|| a + b).is_err());
    }

    #[test]
    fn grid_resolution_lag_terms_reduce_not_panic() {
        // The PR-3 failure shape: a sum of `(t − start)/cost` terms with
        // near-coprime cost numerators on the 720720 grid. The reduced
        // denominator exceeds i64 — representable now, panic before.
        const GRID: i64 = 720_720;
        let t = Rat::int(7);
        let terms = [
            (Rat::new(13, 32), Rat::new(523_687, GRID)),
            (Rat::new(45, 7), Rat::new(611_953, GRID)),
            (Rat::new(1_234_567, GRID), Rat::new(700_001, GRID)),
            (Rat::new(355, 113), Rat::new(654_323, GRID)),
        ];
        let mut lag = Rat::ZERO;
        for (start, cost) in terms {
            lag += (t - start) / cost;
        }
        assert!(lag.den() > i128::from(i64::MAX), "den {}", lag.den());
        // And the value is still exact: multiplying back by the common
        // denominator gives an integer.
        assert!((lag * Rat::new_i128(lag.den(), 1)).is_integer());
    }

    #[test]
    fn large_mixed_denominators() {
        // lcm-scale denominators (seen in exact-fill workloads) stay exact.
        let a = Rat::new(2_184_060_317_093, 16_044_839_210_400);
        let b = Rat::ONE - a;
        assert_eq!(a + b, Rat::ONE);
        assert!(a < Rat::new(1, 7) && a > Rat::new(1, 8));
    }

    #[test]
    fn serde_round_trip() {
        let r = Rat::new(22, 7);
        let json = serde_json_lite(&r);
        assert_eq!(json, "[22,7]");
    }

    #[test]
    fn serde_rejects_beyond_i64_wire() {
        let wide = Rat::new_i128(i128::from(i64::MAX) + 1, 1);
        assert!(std::panic::catch_unwind(|| wide.to_value()).is_err());
    }

    // Minimal check that serialization emits the reduced pair without
    // pulling serde_json into this crate's deps: reuse serde's token-level
    // guarantees via Display of the tuple.
    fn serde_json_lite(r: &Rat) -> String {
        format!("[{},{}]", r.num(), r.den())
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_add_associates(a in -100i64..100, b in 1i64..20, c in -100i64..100,
                               d in 1i64..20, e in -100i64..100, f in 1i64..20) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            let z = Rat::new(e, f);
            prop_assert_eq!((x + y) + z, x + (y + z));
        }

        #[test]
        fn prop_mul_distributes(a in -100i64..100, b in 1i64..20, c in -100i64..100,
                                d in 1i64..20, e in -100i64..100, f in 1i64..20) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            let z = Rat::new(e, f);
            prop_assert_eq!(x * (y + z), x * y + x * z);
        }

        #[test]
        fn prop_sub_add_inverse(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y - y, x);
        }

        #[test]
        fn prop_always_reduced(a in -10_000i64..10_000, b in 1i64..10_000) {
            let x = Rat::new(a, b);
            prop_assert!(x.den() > 0);
            prop_assert_eq!(gcd_i128(x.num(), x.den()), if x.num() == 0 { x.den() } else { 1 });
        }

        #[test]
        fn prop_floor_ceil_bracket(a in -10_000i64..10_000, b in 1i64..100) {
            let x = Rat::new(a, b);
            let fl = Rat::int(x.floor());
            let ce = Rat::int(x.ceil());
            prop_assert!(fl <= x && x <= ce);
            prop_assert!(ce - fl <= Rat::ONE);
            prop_assert_eq!(x.is_integer(), fl == ce);
        }

        #[test]
        fn prop_ord_consistent_with_f64(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }

        #[test]
        fn prop_div_mul_inverse(a in -1000i64..1000, b in 1i64..100, c in 1i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d); // nonzero by construction
            prop_assert_eq!(x / y * y, x);
        }
    }
}
