//! An exact, always-reduced rational number.
//!
//! [`Rat`] is the workhorse numeric type of the workspace: task weights
//! (`wt(T) = T.e / T.p`), utilization sums, DVQ event times, and actual
//! execution costs `c(T_i) ∈ (0, 1]` are all `Rat`s. All arithmetic is
//! exact; overflow of the `i64` components is a panic rather than silent
//! wraparound (simulation-scale values stay far below the limits).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize, Value};

use crate::int::gcd;

/// An exact rational number `num / den` with `den > 0`, always reduced.
///
/// ```
/// use pfair_numeric::Rat;
/// let half = Rat::new(1, 2);
/// let third = Rat::new(1, 3);
/// assert_eq!(half + third, Rat::new(5, 6));
/// assert!(half > third);
/// assert_eq!((half * Rat::int(4)).to_string(), "2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i64,
    den: i64,
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One (one quantum, when used as a duration).
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i64, den: i64) -> Rat {
        assert!(den != 0, "Rat denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the integer `n`.
    #[must_use]
    pub const fn int(n: i64) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (of the reduced form; sign lives here).
    #[must_use]
    pub const fn num(self) -> i64 {
        self.num
    }

    /// Denominator (of the reduced form; always positive).
    #[must_use]
    pub const fn den(self) -> i64 {
        self.den
    }

    /// `true` iff the value is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `≤ self`.
    #[must_use]
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    #[must_use]
    pub fn ceil(self) -> i64 {
        -(-self.num).div_euclid(self.den)
    }

    /// Fractional part `self − ⌊self⌋`, in `[0, 1)`.
    #[must_use]
    pub fn fract(self) -> Rat {
        self - Rat::int(self.floor())
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Reciprocal.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat::recip of zero");
        Rat::new(self.den, self.num)
    }

    /// Lossy conversion to `f64` (for reporting / plotting only; never used
    /// in scheduling decisions).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn from_i128(num: i128, den: i128) -> Rat {
        debug_assert!(den > 0);
        let g = gcd_i128(num, den);
        let (num, den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        Rat {
            num: i64::try_from(num).expect("Rat numerator overflow"),
            den: i64::try_from(den).expect("Rat denominator overflow"),
        }
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

impl From<u32> for Rat {
    fn from(n: u32) -> Rat {
        Rat::int(i64::from(n))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let num =
            i128::from(self.num) * i128::from(rhs.den) + i128::from(rhs.num) * i128::from(self.den);
        let den = i128::from(self.den) * i128::from(rhs.den);
        Rat::from_i128(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let num = i128::from(self.num) * i128::from(rhs.num);
        let den = i128::from(self.den) * i128::from(rhs.den);
        Rat::from_i128(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "Rat division by zero");
        let mut num = i128::from(self.num) * i128::from(rhs.den);
        let mut den = i128::from(self.den) * i128::from(rhs.num);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat::from_i128(num, den)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// Serialized as the two-element pair `[num, den]`, matching how real serde
// would encode the `(i64, i64)` tuple form.
impl Serialize for Rat {
    fn to_value(&self) -> Value {
        (self.num, self.den).to_value()
    }
}

impl Deserialize for Rat {
    fn from_value(v: &Value) -> Result<Rat, serde::de::Error> {
        let (num, den) = <(i64, i64)>::from_value(v)?;
        if den == 0 {
            return Err(serde::de::Error::custom("Rat denominator must be nonzero"));
        }
        Ok(Rat::new(num, den))
    }
}

/// Error from parsing a [`Rat`] out of text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRatError;

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected an integer or `num/den` with nonzero den")
    }
}

impl std::error::Error for ParseRatError {}

impl core::str::FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"3"`, `"-3"`, or `"num/den"` (e.g. `"7/8"`, `"-1/2"`).
    ///
    /// ```
    /// use pfair_numeric::Rat;
    /// assert_eq!("7/8".parse::<Rat>().unwrap(), Rat::new(7, 8));
    /// assert_eq!("-3".parse::<Rat>().unwrap(), Rat::int(-3));
    /// assert!("1/0".parse::<Rat>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Rat, ParseRatError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: i64 = n.trim().parse().map_err(|_| ParseRatError)?;
            let den: i64 = d.trim().parse().map_err(|_| ParseRatError)?;
            if den == 0 {
                return Err(ParseRatError);
            }
            Ok(Rat::new(num, den))
        } else {
            s.trim()
                .parse::<i64>()
                .map(Rat::int)
                .map_err(|_| ParseRatError)
        }
    }
}

impl core::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, x| acc + x)
    }
}

impl<'a> core::iter::Sum<&'a Rat> for Rat {
    fn sum<I: Iterator<Item = &'a Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, x| acc + *x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(-1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(6, 3).num(), 2);
        assert_eq!(Rat::new(6, 3).den(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rat::new(1, 6);
        let b = Rat::new(1, 2);
        assert_eq!(a + b, Rat::new(2, 3));
        assert_eq!(b - a, Rat::new(1, 3));
        assert_eq!(a * b, Rat::new(1, 12));
        assert_eq!(b / a, Rat::int(3));
        assert_eq!(-a, Rat::new(-1, 6));
    }

    #[test]
    fn division_sign_normalization() {
        assert_eq!(Rat::new(1, 2) / Rat::new(-1, 3), Rat::new(-3, 2));
        assert_eq!(Rat::new(-1, 2) / Rat::new(-1, 3), Rat::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Rat::ONE / Rat::ZERO;
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
        assert_eq!(Rat::new(7, 2).fract(), Rat::new(1, 2));
        assert_eq!(Rat::new(-7, 2).fract(), Rat::new(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(2, 4) == Rat::new(1, 2));
        let two_minus_delta = Rat::int(2) - Rat::new(1, 1_000_000);
        assert!(two_minus_delta < Rat::int(2));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::int(-4).to_string(), "-4");
        assert_eq!(Rat::ZERO.to_string(), "0");
    }

    #[test]
    fn min_max_recip_abs() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.recip(), Rat::int(2));
        assert_eq!(Rat::new(-3, 4).abs(), Rat::new(3, 4));
        assert_eq!(Rat::new(-2, 3).recip(), Rat::new(-3, 2));
    }

    #[test]
    fn sum_iterator() {
        // Six tasks of weight 1/6 plus three of weight 1/2 = utilization 5/2.
        let weights = [
            Rat::new(1, 6),
            Rat::new(1, 6),
            Rat::new(1, 6),
            Rat::new(1, 2),
            Rat::new(1, 2),
            Rat::new(1, 2),
        ];
        let total: Rat = weights.iter().sum();
        assert_eq!(total, Rat::int(2));
    }

    #[test]
    fn from_str_round_trip() {
        for s in ["0", "7", "-3", "1/2", "-22/7", "6/4"] {
            let r: Rat = s.parse().unwrap();
            let again: Rat = r.to_string().parse().unwrap();
            assert_eq!(r, again, "{s}");
        }
        assert!("".parse::<Rat>().is_err());
        assert!("a/b".parse::<Rat>().is_err());
        assert!("1/0".parse::<Rat>().is_err());
        assert!("1.5".parse::<Rat>().is_err());
    }

    #[test]
    fn overflow_is_a_panic_not_a_wrap() {
        // Arithmetic that cannot be represented must fail loudly.
        let huge = Rat::new(i64::MAX / 2, 1);
        assert!(std::panic::catch_unwind(|| huge * huge).is_err());
        let fine = Rat::new(i64::MAX / 4, 3);
        // In-range operations on large values still work.
        assert_eq!(fine + Rat::ZERO, fine);
        assert_eq!(fine * Rat::ONE, fine);
    }

    #[test]
    fn large_mixed_denominators() {
        // lcm-scale denominators (seen in exact-fill workloads) stay exact.
        let a = Rat::new(2_184_060_317_093, 16_044_839_210_400);
        let b = Rat::ONE - a;
        assert_eq!(a + b, Rat::ONE);
        assert!(a < Rat::new(1, 7) && a > Rat::new(1, 8));
    }

    #[test]
    fn serde_round_trip() {
        let r = Rat::new(22, 7);
        let json = serde_json_lite(&r);
        assert_eq!(json, "[22,7]");
    }

    // Minimal check that serialization emits the reduced pair without
    // pulling serde_json into this crate's deps: reuse serde's token-level
    // guarantees via Display of the tuple.
    fn serde_json_lite(r: &Rat) -> String {
        format!("[{},{}]", r.num(), r.den())
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_add_associates(a in -100i64..100, b in 1i64..20, c in -100i64..100,
                               d in 1i64..20, e in -100i64..100, f in 1i64..20) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            let z = Rat::new(e, f);
            prop_assert_eq!((x + y) + z, x + (y + z));
        }

        #[test]
        fn prop_mul_distributes(a in -100i64..100, b in 1i64..20, c in -100i64..100,
                                d in 1i64..20, e in -100i64..100, f in 1i64..20) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            let z = Rat::new(e, f);
            prop_assert_eq!(x * (y + z), x * y + x * z);
        }

        #[test]
        fn prop_sub_add_inverse(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x + y - y, x);
        }

        #[test]
        fn prop_always_reduced(a in -10_000i64..10_000, b in 1i64..10_000) {
            let x = Rat::new(a, b);
            prop_assert!(x.den() > 0);
            prop_assert_eq!(crate::int::gcd(x.num(), x.den()), if x.num() == 0 { x.den() } else { 1 });
        }

        #[test]
        fn prop_floor_ceil_bracket(a in -10_000i64..10_000, b in 1i64..100) {
            let x = Rat::new(a, b);
            let fl = Rat::int(x.floor());
            let ce = Rat::int(x.ceil());
            prop_assert!(fl <= x && x <= ce);
            prop_assert!(ce - fl <= Rat::ONE);
            prop_assert_eq!(x.is_integer(), fl == ce);
        }

        #[test]
        fn prop_ord_consistent_with_f64(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }

        #[test]
        fn prop_div_mul_inverse(a in -1000i64..1000, b in 1i64..100, c in 1i64..1000, d in 1i64..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d); // nonzero by construction
            prop_assert_eq!(x / y * y, x);
        }
    }
}
