//! Bench E7: scheduler cost — the practicality dimension of §1. Measures
//! simulated subtasks per second for each algorithm (EPDF, PD², PF, PD,
//! PD^B), each quantum model (SFQ, DVQ, staggered) and the competing
//! optimal families (BF, maxflow), scaling the task count and the
//! processor count.
//!
//! Run with `cargo bench -p pfair-bench --bench throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

/// A deterministic full-utilization system with roughly `n` tasks on `m`
/// processors (generated with max_period scaled so the task count lands
/// near `n`).
fn system(m: u32, max_period: i64, horizon: i64, seed: u64) -> TaskSystem {
    let weights = random_weights(&TaskGenConfig::full(m, max_period), seed);
    releasegen::generate(&weights, &ReleaseConfig::periodic(horizon), seed)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms_sfq");
    let sys = system(8, 16, 48, 42);
    let n = sys.num_subtasks() as u64;
    println!(
        "algorithm benchmark system: {} tasks, {} subtasks, m=8",
        sys.num_tasks(),
        n
    );
    g.throughput(Throughput::Elements(n));
    for alg in Algorithm::all() {
        g.bench_with_input(BenchmarkId::new("sfq", alg.to_string()), &sys, |b, sys| {
            b.iter(|| simulate_sfq(std::hint::black_box(sys), 8, alg.order(), &mut FullQuantum))
        });
    }
    g.bench_with_input(BenchmarkId::new("sfq", "PD^B"), &sys, |b, sys| {
        b.iter(|| simulate_sfq_pdb(std::hint::black_box(sys), 8, &mut FullQuantum))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("models_pd2");
    let sys = system(8, 16, 48, 43);
    let n = sys.num_subtasks() as u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("sfq", |b| {
        b.iter(|| simulate_sfq(std::hint::black_box(&sys), 8, &Pd2, &mut FullQuantum))
    });
    g.bench_function("dvq_full_costs", |b| {
        b.iter(|| simulate_dvq(std::hint::black_box(&sys), 8, &Pd2, &mut FullQuantum))
    });
    g.bench_function("dvq_uniform_costs", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            simulate_dvq(std::hint::black_box(&sys), 8, &Pd2, &mut cost)
        })
    });
    g.bench_function("staggered", |b| {
        b.iter(|| simulate_staggered(std::hint::black_box(&sys), 8, &Pd2, &mut FullQuantum))
    });
    // The competing optimal families: BF decides only at period
    // boundaries (so it should dominate this group), maxflow pays for a
    // Dinic solve over the PF-window network.
    g.bench_function("bf", |b| {
        b.iter(|| simulate_bf(std::hint::black_box(&sys), 8, &mut FullQuantum))
    });
    g.bench_function("flow", |b| {
        b.iter(|| simulate_flow(std::hint::black_box(&sys), 8, &mut FullQuantum))
    });
    g.finish();
}

fn bench_scaling_tasks(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_tasks");
    g.sample_size(15);
    for max_period in [8i64, 16, 32, 64] {
        let sys = system(8, max_period, 2 * max_period, 44);
        let n = sys.num_subtasks() as u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(
            BenchmarkId::new("dvq_pd2_tasks", sys.num_tasks()),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let mut cost = UniformCost::new(Rat::new(1, 2), 7);
                    simulate_dvq(std::hint::black_box(sys), 8, &Pd2, &mut cost)
                })
            },
        );
    }
    g.finish();
}

fn bench_scaling_processors(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_processors");
    g.sample_size(15);
    for m in [2u32, 4, 8, 16, 32] {
        let sys = system(m, 16, 32, 45);
        let n = sys.num_subtasks() as u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("dvq_pd2_m", m), &sys, |b, sys| {
            b.iter(|| {
                let mut cost = UniformCost::new(Rat::new(1, 2), 7);
                simulate_dvq(std::hint::black_box(sys), m, &Pd2, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_keyed_vs_comparator(c: &mut Criterion) {
    // The tentpole of the precomputed-key layer: the same PD² order run
    // through the keyed fast path (default) and through the comparator
    // fallback (`ComparatorOnly`), at n ∈ {10, 100, 1000} tasks. The
    // throughput element count is the number of scheduling decisions
    // (= placements = subtasks), so `elem/s` reads as decisions/sec.
    let mut g = c.benchmark_group("keyed_vs_comparator");
    g.sample_size(15);
    let base = [
        (1i64, 2i64),
        (1, 3),
        (2, 5),
        (3, 8),
        (1, 6),
        (5, 12),
        (1, 4),
        (7, 24),
        (2, 3),
        (1, 8),
    ];
    for n in [10usize, 100, 1000] {
        let weights: Vec<Weight> = (0..n)
            .map(|i| {
                let (e, p) = base[i % base.len()];
                Weight::new(e, p)
            })
            .collect();
        let util: Rat = weights.iter().map(|w| w.as_rat()).sum();
        let m = util.ceil() as u32;
        let sys = releasegen::generate(&weights, &ReleaseConfig::periodic(24), 46);
        let decisions = sys.num_subtasks() as u64;
        g.throughput(Throughput::Elements(decisions));
        for (engine, keyed) in [("dvq", true), ("dvq", false), ("sfq", true), ("sfq", false)] {
            let id = BenchmarkId::new(
                format!("{engine}_{}", if keyed { "keyed" } else { "comparator" }),
                n,
            );
            g.bench_with_input(id, &sys, |b, sys| {
                let comparator = ComparatorOnly(&Pd2);
                let order: &dyn PriorityOrder = if keyed { &Pd2 } else { &comparator };
                match engine {
                    "dvq" => b.iter(|| {
                        let mut cost = UniformCost::new(Rat::new(1, 2), 7);
                        simulate_dvq(std::hint::black_box(sys), m, order, &mut cost)
                    }),
                    _ => b.iter(|| {
                        simulate_sfq(std::hint::black_box(sys), m, order, &mut FullQuantum)
                    }),
                }
            });
        }
    }
    g.finish();
}

fn bench_large_scale(c: &mut Criterion) {
    // The bucketed ready queue + integer-tick fast path at scale: keyed
    // PD² only, n ∈ {10⁴, 10⁵} tasks. The comparator fallback is omitted —
    // at these sizes its quadratic ready-scan makes a single iteration
    // take minutes.
    let mut g = c.benchmark_group("large_scale");
    g.sample_size(10);
    let base = [
        (1i64, 2i64),
        (1, 3),
        (2, 5),
        (3, 8),
        (1, 6),
        (5, 12),
        (1, 4),
        (7, 24),
        (2, 3),
        (1, 8),
    ];
    for n in [10_000usize, 100_000] {
        let weights: Vec<Weight> = (0..n)
            .map(|i| {
                let (e, p) = base[i % base.len()];
                Weight::new(e, p)
            })
            .collect();
        let util: Rat = weights.iter().map(|w| w.as_rat()).sum();
        let m = util.ceil() as u32;
        let sys = releasegen::generate(&weights, &ReleaseConfig::periodic(24), 46);
        let decisions = sys.num_subtasks() as u64;
        g.throughput(Throughput::Elements(decisions));
        g.bench_with_input(BenchmarkId::new("dvq_keyed", n), &sys, |b, sys| {
            b.iter(|| {
                let mut cost = UniformCost::new(Rat::new(1, 2), 7);
                simulate_dvq(std::hint::black_box(sys), m, &Pd2, &mut cost)
            })
        });
        g.bench_with_input(BenchmarkId::new("sfq_keyed", n), &sys, |b, sys| {
            b.iter(|| simulate_sfq(std::hint::black_box(sys), m, &Pd2, &mut FullQuantum))
        });
    }
    g.finish();
}

fn bench_online_vs_offline(c: &mut Criterion) {
    // The online scheduler's heap dispatch vs the offline simulator's
    // ready-vector scan, on identical periodic workloads.
    let mut g = c.benchmark_group("online_vs_offline");
    g.sample_size(15);
    // max_period stays ≤ 36: exact utilization sums over distinct periods
    // need a common denominator of lcm(2..=max_period), and lcm(2..=48)
    // overflows the i64-backed Rat (which panics loudly rather than wrap).
    for (m, max_period) in [(8u32, 16i64), (16, 32), (32, 36)] {
        // fill_exact would append a remainder weight whose reduced period
        // is lcm-scale, exploding the per-job subtask count; the online
        // comparison wants realistic weights instead.
        let weights = pfair::workload::random_weights(
            &TaskGenConfig {
                target_util: Rat::int(i64::from(m)),
                max_period,
                dist: WeightDist::Uniform,
                fill_exact: false,
            },
            77,
        );
        let jobs = 4u64;
        // Offline system with the same job count.
        let mut b = pfair::taskmodel::TaskSystemBuilder::new();
        for &w in &weights {
            let t = b.add_task(w);
            for i in 1..=jobs * w.e() as u64 {
                b.push(t, i, 0, None).unwrap();
            }
        }
        let sys = b.build();
        let n = sys.num_subtasks() as u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("offline_scan", n), &sys, |bch, sys| {
            bch.iter(|| simulate_dvq(std::hint::black_box(sys), m, &Pd2, &mut FullQuantum))
        });
        g.bench_with_input(
            BenchmarkId::new("online_heap", n),
            &weights,
            |bch, weights| {
                bch.iter(|| {
                    let mut s = OnlineDvq::new(m);
                    let ids: Vec<TaskId> = weights.iter().map(|&w| s.add_task(w)).collect();
                    for (&t, &w) in ids.iter().zip(weights.iter()) {
                        for j in 0..jobs {
                            s.submit_job(t, j as i64 * w.p()).unwrap();
                        }
                    }
                    s.run_until_idle(&mut |_, _| Rat::ONE)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_models,
    bench_scaling_tasks,
    bench_scaling_processors,
    bench_keyed_vs_comparator,
    bench_large_scale,
    bench_online_vs_offline
);
criterion_main!(benches);
