//! Bench O1: the max-flow schedulability oracle vs the PD² simulator —
//! agreement regenerated, cost of each compared.
//!
//! Run with `cargo bench -p pfair-bench --bench oracle`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfair::analysis::schedulability::{flow_schedulable, WindowMode};
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle_vs_simulator");
    g.sample_size(12);
    for (m, horizon) in [(2u32, 16i64), (4, 24), (8, 32)] {
        let ws = random_weights(&TaskGenConfig::full(m, 10), 7_700 + u64::from(m));
        let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(horizon), 7);
        let n = sys.num_subtasks() as u64;
        // Regenerate the agreement before timing.
        let fs = flow_schedulable(&sys, m, WindowMode::PfWindow);
        let sched = simulate_sfq(&sys, m, &Pd2, &mut FullQuantum);
        let misses = check_window_containment(&sys, &sched).len();
        println!(
            "O1 m={m}: oracle schedulable={} simulator misses={misses} -> {}",
            fs.schedulable,
            if fs.schedulable && misses == 0 {
                "agree"
            } else {
                "DISAGREE"
            }
        );
        assert!(fs.schedulable && misses == 0);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("flow_oracle", n), &sys, |b, sys| {
            b.iter(|| flow_schedulable(std::hint::black_box(sys), m, WindowMode::PfWindow))
        });
        g.bench_with_input(BenchmarkId::new("pd2_simulator", n), &sys, |b, sys| {
            b.iter(|| simulate_sfq(std::hint::black_box(sys), m, &Pd2, &mut FullQuantum))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
