//! Bench R1: the real multi-threaded runtime's two hot paths.
//!
//! * **Combiner throughput** — raw delegation-lock request rates: N
//!   publisher threads hammering `DelegationLock::publish` with a trivial
//!   counter state, so the number prices the flat-combining machinery
//!   alone (slot push, lock election, batch drain), not scheduling.
//! * **Dispatch-pass latency** — end-to-end `execute()` over a fixed pool
//!   of seeded workloads at 1/2/4/8 worker threads with `spin = 0`
//!   (quanta near-instant, so dispatch + combining + thread choreography
//!   dominate), against the single-threaded `OnlineDvq` reference driving
//!   the *same* workloads — the price of running the schedule for real
//!   rather than simulating it.
//!
//! Run with `cargo bench -p pfair-bench --bench runtime`; numbers are
//! recorded in `BENCH_runtime.json` at the repo root, and the CI-facing
//! subset is ratcheted by `pfairsim perf --runtime`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfair::conformance::{generate_runtime_case, RuntimeCase};
use pfair::prelude::*;
use pfair::runtime::DelegationLock;

const REQUESTS_PER_PUBLISHER: u64 = 5_000;

fn bench_combiner(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    for publishers in [2usize, 4, 8] {
        let total = REQUESTS_PER_PUBLISHER * publishers as u64;
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(
            BenchmarkId::new("combiner_publish", publishers),
            &publishers,
            |b, &publishers| {
                b.iter(|| {
                    let lock: DelegationLock<u64, u64> = DelegationLock::new(0, publishers);
                    let apply = |state: &mut u64, batch: Vec<u64>| {
                        for req in batch {
                            *state = state.wrapping_add(req);
                        }
                    };
                    crossbeam::scope(|s| {
                        for t in 0..publishers {
                            let lock = &lock;
                            s.spawn(move |_| {
                                for i in 0..REQUESTS_PER_PUBLISHER {
                                    lock.publish(t, i, apply);
                                }
                            });
                        }
                    })
                    .expect("no publisher panicked");
                    std::hint::black_box(lock.into_inner())
                })
            },
        );
    }
    g.finish();
}

/// A fixed pool of seeded 2..=8-processor workloads; quanta counts are
/// what `Throughput::Elements` reports per dispatch-pass benchmark.
fn case_pool(m: u32) -> (Vec<(u64, RuntimeCase)>, u64) {
    let cases: Vec<(u64, RuntimeCase)> = (0..8u64)
        .map(|s| (s, generate_runtime_case(s, m)))
        .collect();
    let quanta = cases.iter().map(|(_, c)| c.sys.num_subtasks() as u64).sum();
    (cases, quanta)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    for m in [1u32, 2, 4, 8] {
        let (cases, quanta) = case_pool(m);
        g.throughput(Throughput::Elements(quanta));
        g.bench_with_input(BenchmarkId::new("dispatch_pass", m), &m, |b, &m| {
            b.iter(|| {
                for (seed, case) in &cases {
                    let mut cfg = RuntimeConfig::new(m);
                    cfg.seed = *seed;
                    cfg.spin = 0;
                    std::hint::black_box(execute(&case.sys, &case.jobs, &cfg));
                }
            })
        });
    }
    g.finish();
}

fn bench_single_thread_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    // The same workloads the m = 2 dispatch-pass bench executes, driven
    // through the single-threaded online scheduler: the no-threads
    // floor the runtime's overhead is measured against.
    let (cases, quanta) = case_pool(2);
    g.throughput(Throughput::Elements(quanta));
    g.bench_function("single_thread_reference", |b| {
        b.iter(|| {
            for (seed, case) in &cases {
                let mut dvq = OnlineDvq::new(2);
                for t in case.sys.tasks() {
                    dvq.add_task(t.weight);
                }
                for &(task, at) in &case.jobs {
                    dvq.submit_job(task, at).expect("generated plan is valid");
                }
                let log = dvq.run_until_idle(&mut |task, index| {
                    quantum_cost(*seed, JitterRegime::Mild, task, index)
                });
                std::hint::black_box(log);
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_combiner,
    bench_dispatch,
    bench_single_thread_reference
);
criterion_main!(benches);
