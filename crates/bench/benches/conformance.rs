//! Bench E8: differential fuzzing throughput — how many generated cases
//! per second the conformance harness sustains, at campaign sizes
//! n ∈ {10, 100, 1000}, plus the marginal cost of one full invariant-bank
//! check and of shrinking a planted-bug counterexample.
//!
//! Run with `cargo bench -p pfair-bench --bench conformance`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfair::conformance::{
    check_seed, generate_case, mutants, run_campaign, shrink, CampaignConfig, GenConfig, REFERENCE,
};

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("conformance");
    g.sample_size(10);
    for trials in [10usize, 100, 1000] {
        g.throughput(Throughput::Elements(trials as u64));
        g.bench_with_input(
            BenchmarkId::new("campaign_cases", trials),
            &trials,
            |b, &trials| {
                let cfg = CampaignConfig {
                    trials,
                    base_seed: 1,
                    threads: 1,
                    gen: GenConfig::default(),
                    time_limit: None,
                    shrink: false,
                    stop_on_first: false,
                };
                b.iter(|| run_campaign(std::hint::black_box(&cfg), &REFERENCE))
            },
        );
    }
    g.finish();
}

fn bench_single_case(c: &mut Criterion) {
    let mut g = c.benchmark_group("conformance");
    g.sample_size(20);
    // One case through the whole invariant bank (generation included).
    g.bench_function("check_seed", |b| {
        let gen = GenConfig::default();
        b.iter(|| check_seed(std::hint::black_box(&gen), 42, &REFERENCE))
    });
    g.finish();
}

fn bench_shrink(c: &mut Criterion) {
    // Shrink a real planted-bug counterexample: the first violation the
    // inverted-b-bit mutant produces from the test suite's seed window.
    let mutant = &mutants()[0];
    let gen = GenConfig::default();
    let (seed, invariant) = (0xC0FFEEu64..)
        .take(1000)
        .find_map(|s| {
            check_seed(&gen, s, &mutant.engines)
                .err()
                .map(|v| (s, v.invariant))
        })
        .expect("mutant not detected in seed window");
    let spec = generate_case(&gen, seed);
    let mut g = c.benchmark_group("conformance");
    g.sample_size(10);
    g.bench_function("shrink_counterexample", |b| {
        b.iter(|| shrink(std::hint::black_box(&spec), &invariant, &mutant.engines))
    });
    g.finish();
}

criterion_group!(benches, bench_campaign, bench_single_case, bench_shrink);
criterion_main!(benches);
