//! Microbenchmarks of the hot substrate: exact rational arithmetic, the
//! Pfair window formulas, priority comparisons, and the event queue of
//! the DVQ simulator.
//!
//! These quantify where the DVQ engine's extra cost (vs slot-driven SFQ)
//! comes from: rational reductions at every event and the per-decision
//! ready-set scan.
//!
//! Run with `cargo bench -p pfair-bench --bench micro`.

use criterion::{criterion_group, criterion_main, Criterion};
use pfair::prelude::*;
use pfair::taskmodel::window;

fn bench_rational(c: &mut Criterion) {
    let mut g = c.benchmark_group("rational");
    let a = Rat::new(355, 113);
    let b = Rat::new(1_000_003, 720_720);
    g.bench_function("add", |bch| {
        bch.iter(|| std::hint::black_box(a) + std::hint::black_box(b))
    });
    g.bench_function("mul", |bch| {
        bch.iter(|| std::hint::black_box(a) * std::hint::black_box(b))
    });
    g.bench_function("cmp", |bch| {
        bch.iter(|| std::hint::black_box(a).cmp(&std::hint::black_box(b)))
    });
    g.bench_function("floor", |bch| bch.iter(|| std::hint::black_box(a).floor()));
    g.finish();
}

fn bench_windows(c: &mut Criterion) {
    let mut g = c.benchmark_group("windows");
    let w = Weight::new(7, 12);
    g.bench_function("release_deadline", |bch| {
        bch.iter(|| {
            let i = std::hint::black_box(12_345u64);
            (window::release(w, i), window::deadline(w, i))
        })
    });
    g.bench_function("group_deadline_closed_form", |bch| {
        bch.iter(|| {
            window::group_deadline(
                std::hint::black_box(Weight::new(11, 12)),
                std::hint::black_box(12_345),
            )
        })
    });
    g.bench_function("group_deadline_cascade_oracle", |bch| {
        bch.iter(|| {
            window::group_deadline_by_cascade(
                std::hint::black_box(Weight::new(11, 12)),
                std::hint::black_box(12_345),
            )
        })
    });
    g.finish();
}

fn bench_priority(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_cmp");
    let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (2, 3), (1, 6), (5, 6)], 24);
    let refs: Vec<SubtaskRef> = sys.iter_refs().map(|(r, _)| r).collect();
    for alg in pfair::core::Algorithm::all() {
        let ord = alg.order();
        g.bench_function(alg.to_string(), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for &a in &refs {
                    for &b in &refs {
                        if ord.cmp(&sys, a, b) == std::cmp::Ordering::Less {
                            acc += 1;
                        }
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_sort_ready_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("ready_set");
    let sys = release::periodic(
        &[
            (7, 8),
            (3, 4),
            (1, 2),
            (2, 3),
            (1, 6),
            (5, 6),
            (1, 3),
            (5, 12),
        ],
        48,
    );
    let refs: Vec<SubtaskRef> = sys.iter_refs().map(|(r, _)| r).collect();
    g.bench_function("sort_by_pd2", |bch| {
        bch.iter(|| {
            let mut v = refs.clone();
            pfair::core::priority::sort_by_priority(&Pd2, &sys, &mut v);
            v
        })
    });
    g.bench_function("min_by_pd2", |bch| {
        bch.iter(|| refs.iter().copied().min_by(|&a, &b| Pd2.cmp(&sys, a, b)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rational,
    bench_windows,
    bench_priority,
    bench_sort_ready_set
);
criterion_main!(benches);
