//! Ablation bench: which PD² tie-breaks are load-bearing, and what do
//! they cost?
//!
//! Regenerates the ablation findings of EXPERIMENTS.md — EPDF and the
//! no-group-deadline variant miss deadlines on the pinned instances while
//! PD² does not — and measures the per-decision cost of each variant on a
//! common workload.
//!
//! Run with `cargo bench -p pfair-bench --bench ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfair::core::{Pd2NoBBit, Pd2NoGroupDeadline};
use pfair::prelude::*;
use pfair::workload::{random_weights, releasegen};

fn pinned_epdf_instance() -> TaskSystem {
    release::periodic(
        &[
            (2, 3),
            (5, 6),
            (1, 1),
            (3, 5),
            (2, 3),
            (1, 1),
            (3, 5),
            (19, 30),
        ],
        30,
    )
}

fn pinned_no_gd_instance() -> TaskSystem {
    release::periodic(
        &[
            (5, 6),
            (4, 5),
            (5, 6),
            (4, 5),
            (11, 12),
            (1, 2),
            (1, 2),
            (49, 60),
        ],
        60,
    )
}

fn bench_ablation(c: &mut Criterion) {
    // Regenerate the findings.
    {
        let sys = pinned_epdf_instance();
        let epdf = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Epdf, &mut FullQuantum)).max;
        let pd2 = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Pd2, &mut FullQuantum)).max;
        println!("ablation: EPDF instance — EPDF max {epdf}, PD2 max {pd2}");
        assert!(epdf.is_positive() && pd2.is_zero());
    }
    {
        let sys = pinned_no_gd_instance();
        let nogd = tardiness_stats(
            &sys,
            &simulate_sfq(&sys, 6, &Pd2NoGroupDeadline, &mut FullQuantum),
        )
        .max;
        let pd2 = tardiness_stats(&sys, &simulate_sfq(&sys, 6, &Pd2, &mut FullQuantum)).max;
        println!("ablation: cascade instance — noGD max {nogd}, PD2 max {pd2}");
        assert!(nogd.is_positive() && pd2.is_zero());
    }

    // Divergence frequency over random heavy systems: how often does each
    // variant produce a *different schedule* than PD² (even when nothing
    // misses)?
    {
        let mut diverge_nogd = 0;
        let mut diverge_nob = 0;
        let mut diverge_epdf = 0;
        let trials = 40u64;
        for seed in 0..trials {
            let ws = random_weights(
                &TaskGenConfig {
                    target_util: Rat::int(4),
                    max_period: 12,
                    dist: WeightDist::Heavy,
                    fill_exact: true,
                },
                500 + seed,
            );
            let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(24), seed);
            let base = simulate_sfq(&sys, 4, &Pd2, &mut FullQuantum);
            let same = |other: &Schedule| {
                sys.iter_refs()
                    .all(|(st, _)| base.start(st) == other.start(st))
            };
            if !same(&simulate_sfq(
                &sys,
                4,
                &Pd2NoGroupDeadline,
                &mut FullQuantum,
            )) {
                diverge_nogd += 1;
            }
            if !same(&simulate_sfq(&sys, 4, &Pd2NoBBit, &mut FullQuantum)) {
                diverge_nob += 1;
            }
            if !same(&simulate_sfq(&sys, 4, &Epdf, &mut FullQuantum)) {
                diverge_epdf += 1;
            }
        }
        println!(
            "ablation divergence over {trials} heavy systems: noGD {diverge_nogd}, noB {diverge_nob}, EPDF {diverge_epdf}"
        );
    }

    // Cost of each variant on a common workload.
    let ws = random_weights(&TaskGenConfig::full(8, 16), 42);
    let sys = releasegen::generate(&ws, &ReleaseConfig::periodic(48), 42);
    let n = sys.num_subtasks() as u64;
    let mut g = c.benchmark_group("ablation_cost");
    g.throughput(Throughput::Elements(n));
    let variants: [(&str, &dyn PriorityOrder); 4] = [
        ("EPDF", &Epdf),
        ("PD2-noGD", &Pd2NoGroupDeadline),
        ("PD2-noB", &Pd2NoBBit),
        ("PD2", &Pd2),
    ];
    for (name, order) in variants {
        g.bench_with_input(BenchmarkId::new("sfq", name), &sys, |b, sys| {
            b.iter(|| simulate_sfq(std::hint::black_box(sys), 8, order, &mut FullQuantum))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
