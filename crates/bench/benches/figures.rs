//! Bench F1–F6: regenerates every figure of the paper (asserting the
//! golden facts) and measures the cost of producing each one.
//!
//! Run with `cargo bench -p pfair-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use pfair::prelude::*;

fn fig2_system() -> TaskSystem {
    release::periodic_named(
        &[
            ("A", 1, 6),
            ("B", 1, 6),
            ("C", 1, 6),
            ("D", 1, 2),
            ("E", 1, 2),
            ("F", 1, 2),
        ],
        6,
    )
}

fn fig2_costs(delta: Rat) -> FixedCosts {
    FixedCosts::new(Rat::ONE)
        .with(TaskId(0), 1, Rat::ONE - delta)
        .with(TaskId(5), 1, Rat::ONE - delta)
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);

    // F1: window computation for the Fig. 1 task.
    {
        let sys = release::periodic(&[(3, 4)], 8);
        let s1 = &sys.task_subtasks(TaskId(0))[0];
        assert_eq!((s1.release, s1.deadline, s1.group_deadline), (0, 2, 4));
        println!("F1 ok: wt 3/4 windows [0,2) [1,3) [2,4), group deadline 4");
        g.bench_function("F1_windows_wt_3_4", |b| {
            b.iter(|| release::periodic(std::hint::black_box(&[(3, 4)]), 8))
        });
    }

    // F2(a): SFQ PD² schedule — zero tardiness.
    {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ZERO);
        println!("F2a ok: SFQ/PD2 tardiness 0");
        g.bench_function("F2a_sfq_pd2", |b| {
            b.iter(|| simulate_sfq(std::hint::black_box(&sys), 2, &Pd2, &mut FullQuantum))
        });
    }

    // F2(b): DVQ PD² with δ yields — tardiness exactly 1 − δ.
    {
        let sys = fig2_system();
        let delta = Rat::new(1, 64);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut fig2_costs(delta));
        assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ONE - delta);
        println!("F2b ok: DVQ/PD2 tardiness 1-δ = {}", Rat::ONE - delta);
        g.bench_function("F2b_dvq_pd2_delta", |b| {
            b.iter(|| simulate_dvq(std::hint::black_box(&sys), 2, &Pd2, &mut fig2_costs(delta)))
        });
    }

    // F2(c)/F6(a): PD^B — tardiness exactly one quantum.
    {
        let sys = fig2_system();
        let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        assert_eq!(tardiness_stats(&sys, &sched).max, Rat::ONE);
        println!("F2c/F6a ok: PD^B tardiness exactly 1");
        g.bench_function("F2c_sfq_pdb", |b| {
            b.iter(|| simulate_sfq_pdb(std::hint::black_box(&sys), 2, &mut FullQuantum))
        });
    }

    // F3: the predecessor-blocking reconstruction.
    {
        use pfair::taskmodel::release::{structured, ReleaseSpec};
        let sys = structured(
            &[
                ReleaseSpec::periodic("A", 1, 84),
                ReleaseSpec {
                    name: "B",
                    e: 1,
                    p: 3,
                    delays: &[],
                    drops: &[],
                    early: 1,
                },
                ReleaseSpec::periodic("C", 1, 2),
                ReleaseSpec::periodic("D", 2, 3),
                ReleaseSpec::periodic("E", 2, 3),
                ReleaseSpec::periodic("F", 3, 4),
            ],
            6,
        )
        .unwrap();
        let delta = Rat::new(1, 4);
        let mk = || {
            FixedCosts::new(Rat::ONE)
                .with(TaskId(4), 2, Rat::ONE - delta)
                .with(TaskId(5), 3, Rat::ONE - delta)
        };
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut mk());
        let events = detect_blocking(&sys, &sched, &Pd2);
        assert!(events.iter().any(|e| e.kind == BlockingKind::Predecessor));
        println!("F3 ok: predecessor blocking observed");
        g.bench_function("F3_predecessor_blocking", |b| {
            b.iter(|| {
                let sched = simulate_dvq(std::hint::black_box(&sys), 3, &Pd2, &mut mk());
                detect_blocking(&sys, &sched, &Pd2)
            })
        });
    }

    // F4: classification of the DVQ schedule.
    {
        let sys = fig2_system();
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut fig2_costs(Rat::new(1, 4)));
        let classes = classify_subtasks(&sched);
        assert!(classes.iter().any(|&(_, c)| c == SubtaskClass::Olapped));
        println!("F4 ok: Aligned/Olapped/Free classification");
        g.bench_function("F4_classify", |b| {
            b.iter(|| classify_subtasks(std::hint::black_box(&sched)))
        });
    }

    // F6(b,c): right shift + k-compliance walk.
    {
        let sys = fig2_system();
        let sched_b = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        let order = ranks(&sched_b);
        for k in 0..=sys.num_subtasks() {
            let tau_k = k_compliant_system(&sys, &order, k);
            let s = simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum);
            assert!(check_window_containment(&tau_k, &s).is_empty());
        }
        println!("F6bc ok: every τ^k schedulable under PD²");
        g.bench_function("F6_k_compliance_walk", |b| {
            b.iter(|| {
                for k in 0..=sys.num_subtasks() {
                    let tau_k = k_compliant_system(&sys, &order, k);
                    std::hint::black_box(simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum));
                }
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
