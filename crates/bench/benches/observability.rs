//! Bench: cost of the streaming observability layer.
//!
//! The observers are statically dispatched (`Observer::ENABLED` is a
//! `const`, every emission site is gated on it), so a run with
//! [`NoopObserver`] must compile down to the unobserved simulators —
//! within noise of `simulate_sfq`/`simulate_dvq` on the same n = 1000
//! workload `keyed_vs_comparator` uses. The live observers then price the
//! layer: counters ([`MetricsObserver`]), online inversion detection
//! ([`BlockingObserver`]), exact per-slot lag ([`LagObserver`]) and full
//! event capture ([`JsonlObserver`]).
//!
//! Run with `cargo bench -p pfair-bench --bench observability`; numbers
//! are recorded in `BENCH_observability.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfair::prelude::*;
use pfair::workload::releasegen;

/// The `keyed_vs_comparator` n = 1000 workload, verbatim: the acceptance
/// bar is "NoopObserver within 5% of those recorded numbers".
fn system_1000() -> (TaskSystem, u32) {
    let base = [
        (1i64, 2i64),
        (1, 3),
        (2, 5),
        (3, 8),
        (1, 6),
        (5, 12),
        (1, 4),
        (7, 24),
        (2, 3),
        (1, 8),
    ];
    let weights: Vec<Weight> = (0..1000)
        .map(|i| {
            let (e, p) = base[i % base.len()];
            Weight::new(e, p)
        })
        .collect();
    let util: Rat = weights.iter().map(|w| w.as_rat()).sum();
    let m = util.ceil() as u32;
    let sys = releasegen::generate(&weights, &ReleaseConfig::periodic(24), 46);
    (sys, m)
}

fn bench_observability(c: &mut Criterion) {
    let mut g = c.benchmark_group("observability");
    g.sample_size(15);
    let (sys, m) = system_1000();
    g.throughput(Throughput::Elements(sys.num_subtasks() as u64));

    g.bench_function("dvq_unobserved", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            simulate_dvq(std::hint::black_box(&sys), m, &Pd2, &mut cost)
        })
    });
    g.bench_function("dvq_noop", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            simulate_dvq_observed(
                std::hint::black_box(&sys),
                m,
                &Pd2,
                &mut cost,
                &mut NoopObserver,
            )
        })
    });
    g.bench_function("dvq_metrics", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            let mut obs = MetricsObserver::new(m);
            simulate_dvq_observed(std::hint::black_box(&sys), m, &Pd2, &mut cost, &mut obs)
        })
    });
    g.bench_function("dvq_blocking", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            let mut obs = BlockingObserver::new(&sys, &Pd2);
            simulate_dvq_observed(std::hint::black_box(&sys), m, &Pd2, &mut cost, &mut obs)
        })
    });
    g.bench_function("dvq_jsonl", |b| {
        b.iter(|| {
            let mut cost = UniformCost::new(Rat::new(1, 2), 7);
            let mut obs = JsonlObserver::new();
            simulate_dvq_observed(std::hint::black_box(&sys), m, &Pd2, &mut cost, &mut obs)
        })
    });

    g.bench_function("sfq_unobserved", |b| {
        b.iter(|| simulate_sfq(std::hint::black_box(&sys), m, &Pd2, &mut FullQuantum))
    });
    g.bench_function("sfq_noop", |b| {
        b.iter(|| {
            simulate_sfq_observed(
                std::hint::black_box(&sys),
                m,
                &Pd2,
                &mut FullQuantum,
                &mut NoopObserver,
            )
        })
    });
    g.bench_function("sfq_metrics", |b| {
        b.iter(|| {
            let mut obs = MetricsObserver::new(m);
            simulate_sfq_observed(
                std::hint::black_box(&sys),
                m,
                &Pd2,
                &mut FullQuantum,
                &mut obs,
            )
        })
    });
    // Exact per-slot lag needs integral event times to keep the rational
    // arithmetic representable at this scale; full quanta provide that.
    g.bench_function("sfq_lag", |b| {
        b.iter(|| {
            let mut obs = LagObserver::new(&sys);
            let sched = simulate_sfq_observed(
                std::hint::black_box(&sys),
                m,
                &Pd2,
                &mut FullQuantum,
                &mut obs,
            );
            obs.finish(sys.horizon());
            sched
        })
    });
    g.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
