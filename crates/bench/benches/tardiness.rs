//! Bench E1/E2/E4/E6: the tardiness experiments. Each cell prints the
//! measured shape (max tardiness vs the theorem's bound) and then times
//! one sweep.
//!
//! Run with `cargo bench -p pfair-bench --bench tardiness`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::experiment::CostKind;

fn cell(
    m: u32,
    model: ModelKind,
    algorithm: Algorithm,
    cost: CostKind,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        m,
        algorithm,
        model,
        taskgen: TaskGenConfig::full(m, 12),
        release: ReleaseConfig::periodic(24),
        cost,
        trials: 20,
        base_seed: seed,
    }
}

fn bench_tardiness(c: &mut Criterion) {
    let adversarial = CostKind::Adversarial {
        delta: Rat::new(1, 128),
        yield_percent: 70,
    };

    let mut g = c.benchmark_group("tardiness");
    g.sample_size(10);

    // E1 (Theorem 3): PD² under DVQ, tardiness ≤ 1, across M.
    for m in [2u32, 4, 8] {
        let cfg = cell(
            m,
            ModelKind::Dvq,
            Algorithm::Pd2,
            adversarial,
            100 + u64::from(m),
        );
        let sweep = run_sweep(&cfg, 4);
        println!(
            "E1 m={m}: subtasks={} misses={} max_tardiness={} (bound 1) -> {}",
            sweep.total_subtasks(),
            sweep.total_misses(),
            sweep.max_tardiness(),
            if sweep.max_tardiness() <= Rat::ONE {
                "ok"
            } else {
                "VIOLATION"
            }
        );
        assert!(sweep.max_tardiness() <= Rat::ONE);
        g.bench_with_input(BenchmarkId::new("E1_dvq_pd2", m), &cfg, |b, cfg| {
            b.iter(|| run_sweep(std::hint::black_box(cfg), 4))
        });
    }

    // E2 (Theorem 2): PD^B under SFQ, tardiness ≤ 1.
    for m in [2u32, 4, 8] {
        let cfg = cell(
            m,
            ModelKind::SfqPdb,
            Algorithm::Pd2,
            CostKind::Full,
            200 + u64::from(m),
        );
        let sweep = run_sweep(&cfg, 4);
        println!(
            "E2 m={m}: subtasks={} misses={} max_tardiness={} (bound 1) -> {}",
            sweep.total_subtasks(),
            sweep.total_misses(),
            sweep.max_tardiness(),
            if sweep.max_tardiness() <= Rat::ONE {
                "ok"
            } else {
                "VIOLATION"
            }
        );
        assert!(sweep.max_tardiness() <= Rat::ONE);
        g.bench_with_input(BenchmarkId::new("E2_sfq_pdb", m), &cfg, |b, cfg| {
            b.iter(|| run_sweep(std::hint::black_box(cfg), 4))
        });
    }

    // E3 baseline: PD² under SFQ, tardiness = 0.
    {
        let cfg = cell(8, ModelKind::Sfq, Algorithm::Pd2, CostKind::Full, 300);
        let sweep = run_sweep(&cfg, 4);
        println!(
            "E3 m=8: subtasks={} max_tardiness={} (optimal) -> {}",
            sweep.total_subtasks(),
            sweep.max_tardiness(),
            if sweep.max_tardiness() == Rat::ZERO {
                "ok"
            } else {
                "VIOLATION"
            }
        );
        assert_eq!(sweep.max_tardiness(), Rat::ZERO);
        g.bench_function("E3_sfq_pd2_m8", |b| {
            b.iter(|| run_sweep(std::hint::black_box(&cfg), 4))
        });
    }

    // E4: EPDF worsens by ≤ 1 quantum from SFQ to DVQ.
    {
        let sfq_cfg = cell(8, ModelKind::Sfq, Algorithm::Epdf, CostKind::Full, 400);
        let dvq_cfg = cell(8, ModelKind::Dvq, Algorithm::Epdf, adversarial, 400);
        let sfq = run_sweep(&sfq_cfg, 4);
        let dvq = run_sweep(&dvq_cfg, 4);
        println!(
            "E4 m=8 EPDF: SFQ max={} DVQ max={} (claim: DVQ ≤ SFQ + 1) -> {}",
            sfq.max_tardiness(),
            dvq.max_tardiness(),
            if dvq.max_tardiness() <= sfq.max_tardiness() + Rat::ONE {
                "ok"
            } else {
                "VIOLATION"
            }
        );
        assert!(dvq.max_tardiness() <= sfq.max_tardiness() + Rat::ONE);
        g.bench_function("E4_epdf_dvq_m8", |b| {
            b.iter(|| run_sweep(std::hint::black_box(&dvq_cfg), 4))
        });
    }

    // E6 tightness: Fig. 2 family, tardiness = 1 − δ for shrinking δ.
    {
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        for den in [16i64, 1024, 1_048_576] {
            let delta = Rat::new(1, den);
            let mut costs = FixedCosts::new(Rat::ONE)
                .with(TaskId(0), 1, Rat::ONE - delta)
                .with(TaskId(5), 1, Rat::ONE - delta);
            let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
            let max = tardiness_stats(&sys, &sched).max;
            println!(
                "E6 δ=1/{den}: max tardiness = {max} (expect 1-δ) -> {}",
                if max == Rat::ONE - delta {
                    "ok"
                } else {
                    "VIOLATION"
                }
            );
            assert_eq!(max, Rat::ONE - delta);
        }
        g.bench_function("E6_tightness_delta_sweep", |b| {
            b.iter(|| {
                for den in [16i64, 1024, 1_048_576] {
                    let delta = Rat::new(1, den);
                    let mut costs = FixedCosts::new(Rat::ONE)
                        .with(TaskId(0), 1, Rat::ONE - delta)
                        .with(TaskId(5), 1, Rat::ONE - delta);
                    std::hint::black_box(simulate_dvq(&sys, 2, &Pd2, &mut costs));
                }
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_tardiness);
criterion_main!(benches);
