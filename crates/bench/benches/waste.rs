//! Bench E5: wasted-capacity comparison across quantum models as the mean
//! actual cost falls (the §1 motivation for DVQ). Prints the regenerated
//! table, then times each model's sweep.
//!
//! Run with `cargo bench -p pfair-bench --bench waste`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfair::core::Algorithm;
use pfair::prelude::*;
use pfair::workload::experiment::CostKind;

fn cfg(model: ModelKind, cost: CostKind) -> ExperimentConfig {
    ExperimentConfig {
        m: 4,
        algorithm: Algorithm::Pd2,
        model,
        taskgen: TaskGenConfig::full(4, 12),
        release: ReleaseConfig::periodic(24),
        cost,
        trials: 15,
        base_seed: 550,
    }
}

fn bench_waste(c: &mut Criterion) {
    let mut g = c.benchmark_group("waste");
    g.sample_size(10);

    println!("E5: mean wasted fraction by model (M=4, full utilization)");
    println!("{:>6} {:>10} {:>12} {:>10}", "c̄", "SFQ", "staggered", "DVQ");
    for (label, mean_cost) in [
        ("1", Rat::ONE),
        ("7/8", Rat::new(7, 8)),
        ("3/4", Rat::new(3, 4)),
        ("1/2", Rat::new(1, 2)),
    ] {
        let cost = if mean_cost == Rat::ONE {
            CostKind::Full
        } else {
            CostKind::Scaled(mean_cost)
        };
        let sfq = run_sweep(&cfg(ModelKind::Sfq, cost), 4);
        let stag = run_sweep(&cfg(ModelKind::Staggered, cost), 4);
        let dvq = run_sweep(&cfg(ModelKind::Dvq, cost), 4);
        println!(
            "{label:>6} {:>10.4} {:>12.4} {:>10.4}",
            sfq.mean_wasted_fraction(),
            stag.mean_wasted_fraction(),
            dvq.mean_wasted_fraction()
        );
        // Shape: DVQ reclaims everything; fixed-quantum models waste
        // (1 − c̄) of every quantum.
        assert_eq!(dvq.mean_wasted_fraction(), 0.0);
        if mean_cost < Rat::ONE {
            assert!(sfq.mean_wasted_fraction() > 0.0);
            assert!(stag.mean_wasted_fraction() > 0.0);
        }
    }

    let half = CostKind::Scaled(Rat::new(1, 2));
    for (name, model) in [
        ("sfq", ModelKind::Sfq),
        ("staggered", ModelKind::Staggered),
        ("dvq", ModelKind::Dvq),
    ] {
        let c_model = cfg(model, half);
        g.bench_with_input(
            BenchmarkId::new("E5_sweep", name),
            &c_model,
            |b, c_model| b.iter(|| run_sweep(std::hint::black_box(c_model), 4)),
        );
    }

    g.finish();
}

criterion_group!(benches, bench_waste);
criterion_main!(benches);
