//! Shared helpers for the bench harness live directly in the bench
//! files; this crate exists to host the `benches/` targets.
#![forbid(unsafe_code)]
