//! # pfair — Desynchronized Pfair Scheduling on Multiprocessors
//!
//! A complete, from-scratch implementation and experimental reproduction of
//! *UmaMaheswari C. Devi and James H. Anderson, "Desynchronized Pfair
//! Scheduling on Multiprocessors" (IPPS 2005)*: Pfair task models, the
//! EPDF/PD²/PF/PD priority algorithms and the paper's PD^B worst-case
//! construction, simulators for the SFQ / DVQ / staggered quantum models,
//! and the analysis and workload machinery that validates the paper's
//! tardiness bounds.
//!
//! ## Sixty-second tour
//!
//! ```
//! use pfair::prelude::*;
//!
//! // The paper's Fig. 2 task set: three weight-1/6 and three weight-1/2
//! // tasks, total utilization 2, on M = 2 processors.
//! let sys = release::periodic_named(
//!     &[("A", 1, 6), ("B", 1, 6), ("C", 1, 6),
//!       ("D", 1, 2), ("E", 1, 2), ("F", 1, 2)],
//!     6,
//! );
//! assert!(sys.is_feasible(2));
//!
//! // Under the classical SFQ model, PD² is optimal: zero tardiness.
//! let sfq = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
//! assert_eq!(tardiness_stats(&sys, &sfq).max, Rat::ZERO);
//!
//! // Under the DVQ model, let A_1 and F_1 yield δ early: the resulting
//! // priority inversion makes F_2 miss its deadline — but by less than
//! // one quantum (Theorem 3).
//! let delta = Rat::new(1, 4);
//! let mut costs = FixedCosts::new(Rat::ONE)
//!     .with(TaskId(0), 1, Rat::ONE - delta)
//!     .with(TaskId(5), 1, Rat::ONE - delta);
//! let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
//! let stats = tardiness_stats(&sys, &dvq);
//! assert!(stats.max.is_positive() && stats.max < Rat::ONE);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`numeric`] | exact rationals, time |
//! | [`taskmodel`] | periodic/IS/GIS tasks, windows, b-bits, group deadlines |
//! | [`core`] | EPDF, PD², PF, PD, PD^B priorities |
//! | [`sim`] | SFQ / DVQ / staggered simulators, cost models |
//! | [`obs`] | streaming observers: metrics, exact lag, blocking, JSONL export |
//! | [`analysis`] | tardiness, validity, lag, blocking, waste |
//! | [`workload`] | random task systems, stochastic costs, sweep harness |
//! | [`trace`] | ASCII Gantt / window diagrams, JSON export |
//! | [`online`] | online heap-based PD² scheduler (sporadic arrivals) |
//! | [`runtime`] | real multi-threaded execution: delegation-lock dispatch, replay-proven |
//! | [`conformance`] | differential fuzzing: invariant bank, campaigns, shrinking |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pfair_analysis as analysis;
pub use pfair_conformance as conformance;
pub use pfair_core as core;
pub use pfair_numeric as numeric;
pub use pfair_obs as obs;
pub use pfair_online as online;
pub use pfair_runtime as runtime;
pub use pfair_sim as sim;
pub use pfair_taskmodel as taskmodel;
pub use pfair_trace as trace;
pub use pfair_workload as workload;

// pfair-lint: allow(dead-pub): the guided tour is consumed as rendered docs and doctests, never referenced by path.
pub mod paper;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pfair_analysis::{
        all_jobs, check_structural, check_window_containment, classify_subtasks,
        context_switch_stats, dbf, detect_blocking, find_overload, jobs_of, k_compliant_system,
        migration_stats, postpone_charged, ranks, schedule_report, subtask_tardiness,
        tardiness_stats, waste_stats, BlockingKind, SubtaskClass, SwitchStats, TardinessStats,
        WasteStats,
    };
    pub use pfair_core::{
        pdb, Algorithm, ComparatorOnly, Epdf, EpdfKey, KeyCache, KeyDispatch, Pd, Pd2, PdKey, Pf,
        PriorityOrder, SubtaskKey,
    };
    pub use pfair_numeric::{QuantumScale, Rat, Time};
    pub use pfair_obs::{
        BlockingObserver, BlockingRecord, InversionKind, JsonlObserver, LagObserver,
        MetricsObserver, NoopObserver, Observer, ReadyCause, SchedEvent,
    };
    pub use pfair_online::{
        OnlineAssignment, OnlineDvq, OnlineError, OnlineSfq, Pd2Key, TickAssignment,
    };
    pub use pfair_runtime::{
        execute, quantum_cost, DispatchCore, FaultPlan, JitterRegime, Mode, RuntimeConfig,
        RuntimeRun,
    };
    pub use pfair_sim::{
        is_boundary_periodic, simulate_bf, simulate_bf_observed, simulate_dvq,
        simulate_dvq_observed, simulate_flow, simulate_flow_observed, simulate_sfq,
        simulate_sfq_affine, simulate_sfq_affine_observed, simulate_sfq_observed, simulate_sfq_pdb,
        simulate_sfq_pdb_instrumented, simulate_sfq_pdb_observed, simulate_sfq_pdb_with,
        simulate_staggered, simulate_staggered_observed, CostModel, ExactOnly, FixedCosts,
        FullQuantum, PdbSlotStats, Placement, QuantumModel, ScaledCost, Schedule, SfqPolicy,
    };
    pub use pfair_taskmodel::{
        release, ModelError, Subtask, SubtaskId, SubtaskRef, Task, TaskId, TaskSystem,
        TaskSystemBuilder, Weight,
    };
    pub use pfair_trace::{
        render_gantt, render_svg, render_windows, trace_bundle, GanttOptions, SvgOptions,
        TraceBundle,
    };
    pub use pfair_workload::{
        run_sweep, AdversarialYield, BimodalCost, ExperimentConfig, ModelKind, PartialFinalSubtask,
        ReleaseConfig, ReleaseKind, RunSummary, TaskGenConfig, UniformCost, WeightDist,
    };
}
