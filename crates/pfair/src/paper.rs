//! A guided tour: the paper, section by section, as API calls.
//!
//! Each subsection below quotes the paper's claim and demonstrates it with
//! a compiling, asserting example (all run as doctests). Read this module
//! top to bottom to learn both the paper and the library.
//!
//! # §2 — the task model
//!
//! *"Each task T is broken into a potentially infinite sequence of
//! quantum-length subtasks … `r(T_i) = ⌊(i−1)/wt(T)⌋ ∧ d(T_i) =
//! ⌈i/wt(T)⌉`."*
//!
//! ```
//! use pfair::prelude::*;
//! use pfair::taskmodel::window;
//!
//! let w = Weight::new(3, 4); // Fig. 1(a)
//! assert_eq!((window::release(w, 1), window::deadline(w, 1)), (0, 2));
//! assert_eq!((window::release(w, 2), window::deadline(w, 2)), (1, 3));
//! assert_eq!((window::release(w, 3), window::deadline(w, 3)), (2, 4));
//! ```
//!
//! *"A correct schedule … exists for a GIS task system τ on M processors
//! iff its total utilization is at most M."*
//!
//! ```
//! use pfair::prelude::*;
//! use pfair::analysis::schedulability::{flow_schedulable, WindowMode};
//!
//! let sys = release::periodic(&[(1, 2), (1, 2), (1, 1)], 8);
//! assert!(sys.is_feasible(2));                    // Σwt = 2 ≤ 2
//! assert!(flow_schedulable(&sys, 2, WindowMode::PfWindow).schedulable);
//! assert!(!flow_schedulable(&sys, 1, WindowMode::PfWindow).schedulable);
//! ```
//!
//! # §2 — optimal scheduling under SFQ
//!
//! *"At present, three optimal Pfair scheduling algorithms — PF, PD, and
//! PD² — … are known."*
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic(&[(3, 4), (2, 3), (5, 12), (1, 2), (1, 6)], 24);
//! assert_eq!(sys.utilization(), Rat::new(5, 2));
//! for alg in pfair::core::Algorithm::all() {
//!     let sched = simulate_sfq(&sys, 3, alg.order(), &mut FullQuantum);
//!     let misses = check_window_containment(&sys, &sched).len();
//!     match alg {
//!         pfair::core::Algorithm::Epdf => {} // suboptimal in general
//!         _ => assert_eq!(misses, 0, "{alg} is optimal"),
//!     }
//! }
//! ```
//!
//! # §3 — the DVQ model and its priority inversions
//!
//! *"Allowing a new quantum to begin at time 2 − δ … leads to B₁ and C₁
//! being scheduled … Therefore, at time 2, D₂ and E₂ are blocked by
//! lower-priority subtasks."* (Fig. 2(b))
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic_named(
//!     &[("A", 1, 6), ("B", 1, 6), ("C", 1, 6),
//!       ("D", 1, 2), ("E", 1, 2), ("F", 1, 2)], 6);
//! let delta = Rat::new(1, 4);
//! let mut costs = FixedCosts::new(Rat::ONE)
//!     .with(TaskId(0), 1, Rat::ONE - delta)
//!     .with(TaskId(5), 1, Rat::ONE - delta);
//! let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
//!
//! // B₁ grabs a processor at 2 − δ…
//! let b1 = sys.find(SubtaskId { task: TaskId(1), index: 1 }).unwrap();
//! assert_eq!(dvq.start(b1), Rat::int(2) - delta);
//! // …and D₂ (higher priority, eligible at 2) is blocked:
//! let events = detect_blocking(&sys, &dvq, &Pd2);
//! assert!(events.iter().any(|e| e.kind == BlockingKind::Eligibility));
//! ```
//!
//! # §3 — Theorem 3, and its tightness
//!
//! *"Deadlines are missed by at most the maximum size of one quantum
//! only … the fact that deadlines are known to be missed under the DVQ
//! model implies that our result is tight."*
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic_named(
//!     &[("A", 1, 6), ("B", 1, 6), ("C", 1, 6),
//!       ("D", 1, 2), ("E", 1, 2), ("F", 1, 2)], 6);
//! for den in [4i64, 64, 4096] {
//!     let delta = Rat::new(1, den);
//!     let mut costs = FixedCosts::new(Rat::ONE)
//!         .with(TaskId(0), 1, Rat::ONE - delta)
//!         .with(TaskId(5), 1, Rat::ONE - delta);
//!     let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
//!     // Max tardiness is exactly 1 − δ: bounded by, and approaching, 1.
//!     assert_eq!(tardiness_stats(&sys, &dvq).max, Rat::ONE - delta);
//! }
//! ```
//!
//! # §3.1 — PD^B, the worst case at slot boundaries
//!
//! *"We consider allocations in the DVQ model … in the limit δ → 0, and
//! thus reduce them to allocations that conform to the SFQ model."*
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic_named(
//!     &[("A", 1, 6), ("B", 1, 6), ("C", 1, 6),
//!       ("D", 1, 2), ("E", 1, 2), ("F", 1, 2)], 6);
//! let delta = Rat::new(1, 1024);
//! let mut costs = FixedCosts::new(Rat::ONE)
//!     .with(TaskId(0), 1, Rat::ONE - delta)
//!     .with(TaskId(5), 1, Rat::ONE - delta);
//! let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
//! let pdb = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
//! // Every DVQ allocation postpones to exactly PD^B's slot:
//! for (st, _) in sys.iter_refs() {
//!     assert_eq!(Rat::int(dvq.start(st).ceil()), pdb.start(st));
//! }
//! // And PD^B attains the Theorem 2 bound exactly:
//! assert_eq!(tardiness_stats(&sys, &pdb).max, Rat::ONE);
//! ```
//!
//! # §3.2 — Aligned / Olapped / Free
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic(&[(1, 2), (1, 2)], 4);
//! let mut half = ScaledCost(Rat::new(1, 2));
//! let dvq = simulate_dvq(&sys, 1, &Pd2, &mut half);
//! let classes = classify_subtasks(&dvq);
//! // Quanta starting on boundaries are Aligned; a short quantum run
//! // mid-slot that ends by the boundary is Free.
//! assert!(classes.iter().any(|&(_, c)| c == SubtaskClass::Aligned));
//! assert!(classes.iter().any(|&(_, c)| c == SubtaskClass::Free));
//! // Lemma 3: the S_B postponement never moves anything earlier.
//! for (st, postponed) in postpone_charged(&dvq) {
//!     assert!(postponed >= dvq.start(st));
//! }
//! ```
//!
//! # §3.3 — the k-compliance ladder
//!
//! *"We systematically convert S to S_B by decreasing the eligibility time
//! of exactly one subtask at a time … and showing that the intermediate
//! schedules in this process remain valid."*
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys_b = release::periodic_named(
//!     &[("A", 1, 6), ("B", 1, 6), ("C", 1, 6),
//!       ("D", 1, 2), ("E", 1, 2), ("F", 1, 2)], 6);
//! let order = ranks(&simulate_sfq_pdb(&sys_b, 2, &mut FullQuantum));
//! for k in 0..=sys_b.num_subtasks() {
//!     let tau_k = k_compliant_system(&sys_b, &order, k);
//!     let sched = simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum);
//!     assert!(check_window_containment(&tau_k, &sched).is_empty());
//! }
//! ```
//!
//! # §1 — the motivation, measured
//!
//! *"When a job completes before the next quantum boundary, the rest of
//! that quantum … is wasted."*
//!
//! ```
//! use pfair::prelude::*;
//!
//! let sys = release::periodic(&[(1, 2), (1, 2), (1, 2), (1, 2)], 8);
//! let mk = || ScaledCost(Rat::new(3, 4));
//! let sfq = waste_stats(&simulate_sfq(&sys, 2, &Pd2, &mut mk()));
//! let dvq = waste_stats(&simulate_dvq(&sys, 2, &Pd2, &mut mk()));
//! assert!(sfq.wasted.is_positive());   // SFQ strands every yield tail
//! assert!(dvq.wasted.is_zero());       // DVQ reclaims all of it
//! assert!(dvq.makespan <= sfq.makespan);
//! ```
