//! Seeded per-quantum execution jitter.
//!
//! The paper's DVQ model exists because real quanta do not all take
//! exactly one time unit: a subtask that finishes early *δ-yields* its
//! processor, desynchronizing quantum boundaries across processors
//! (§2, Fig. 1). The runtime makes those yields happen for real: every
//! dispatched quantum draws its actual cost from [`quantum_cost`], a pure
//! hash of `(seed, task, index)`, and the worker thread burns a slice of
//! CPU proportional to that cost before reporting completion.
//!
//! Determinism is the point: the cost depends only on the seed and the
//! subtask's identity — never on which worker runs it or when — so the
//! deterministic-mode schedule is reproducible bit-for-bit and the
//! single-threaded [`OnlineDvq`](pfair_online::OnlineDvq) reference can be
//! driven with the identical cost source.

use pfair_numeric::Rat;
use pfair_taskmodel::TaskId;

/// How much per-quantum execution-time variation the workers inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JitterRegime {
    /// Every quantum takes its full unit: no δ-yields, synchronized
    /// boundaries (the degenerate case where DVQ coincides with SFQ
    /// timing).
    None,
    /// Costs in `{5/8, …, 8/8}`: frequent but small early yields, the
    /// "provisioned worst case is rarely met" situation §6 argues is the
    /// common one.
    Mild,
    /// Costs in `{1/8, …, 8/8}`: wild swings, maximal boundary
    /// desynchronization.
    Adversarial,
}

/// splitmix64 finalizer — the same mixer the `rand` shim's `StdRng` uses,
/// reused here so a single `u64` seed spreads over all subtasks.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The actual execution cost of subtask `index` of `task`, in `(0, 1]`
/// quanta: a pure, seeded function of the subtask's identity.
///
/// Costs land on the eighths grid so the event queue arithmetic stays on
/// small denominators whatever the regime.
#[must_use]
pub fn quantum_cost(seed: u64, regime: JitterRegime, task: TaskId, index: u64) -> Rat {
    let spread = match regime {
        JitterRegime::None => return Rat::ONE,
        JitterRegime::Mild => 4,
        JitterRegime::Adversarial => 8,
    };
    let h = mix(seed ^ mix(u64::from(task.0) ^ mix(index)));
    let drop = i64::try_from(h % spread).expect("spread is at most 8");
    // `drop = 0` is the full quantum; each further step yields 1/8 earlier.
    Rat::new(8 - drop, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_stay_in_unit_range_and_replay() {
        for regime in [
            JitterRegime::None,
            JitterRegime::Mild,
            JitterRegime::Adversarial,
        ] {
            for task in 0..8u32 {
                for index in 1..64u64 {
                    let c = quantum_cost(0xC0FFEE, regime, TaskId(task), index);
                    assert!(c.is_positive() && c <= Rat::ONE, "{regime:?} gave {c}");
                    assert_eq!(c, quantum_cost(0xC0FFEE, regime, TaskId(task), index));
                }
            }
        }
    }

    #[test]
    fn regimes_differ_and_adversarial_reaches_deep_yields() {
        let mut mild_min = Rat::ONE;
        let mut adv_min = Rat::ONE;
        for task in 0..8u32 {
            for index in 1..64u64 {
                mild_min = mild_min.min(quantum_cost(7, JitterRegime::Mild, TaskId(task), index));
                adv_min = adv_min.min(quantum_cost(
                    7,
                    JitterRegime::Adversarial,
                    TaskId(task),
                    index,
                ));
            }
        }
        assert_eq!(mild_min, Rat::new(5, 8), "mild bottoms out at 5/8");
        assert_eq!(adv_min, Rat::new(1, 8), "adversarial reaches 1/8");
    }

    #[test]
    fn seed_changes_the_draw() {
        let draws: Vec<Rat> = (0..32)
            .map(|s| quantum_cost(s, JitterRegime::Adversarial, TaskId(0), 1))
            .collect();
        assert!(
            draws.iter().any(|&c| c != draws[0]),
            "32 seeds never changed the cost"
        );
    }
}
