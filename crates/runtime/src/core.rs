//! The deterministic dispatch core behind the delegation lock.
//!
//! [`DispatchCore`] is the single-threaded heart of the runtime: whichever
//! worker currently holds the combiner role drains the request slots and
//! drives this state machine. Its scheduling semantics are *exactly* those
//! of [`pfair_online::OnlineDvq`] — same event heap ordering, same
//! KeyCache-backed PD² ready queue, same ascending-processor dispatch pass
//! — with one addition: a quantum's logical completion may only be
//! *processed* once the worker that executed it has physically reported
//! done.
//!
//! That gate is what makes the two execution modes of the tentpole work:
//!
//! * **[`Mode::Deterministic`]** keeps the eager `ProcFree` events of the
//!   online scheduler in the heap and simply *stalls* ([`Status::Stalled`])
//!   when the next logical event is a completion whose worker has not
//!   reported yet. Events are therefore processed in precisely the order
//!   `OnlineDvq` processes them, whatever the thread interleaving — the
//!   logical-time barrier — and the resulting schedule is bit-identical to
//!   the single-threaded reference (proof obligation (a)).
//! * **[`Mode::FreeRunning`]** trusts physical arrival instead: completions
//!   are applied in the order workers deliver them
//!   ([`DispatchCore::complete_unordered`]), logical time advancing
//!   monotonically to `max(now, completion)`. The schedule then genuinely
//!   depends on the interleaving, and correctness is established per run by
//!   replaying the recorded event stream through the conformance bank
//!   (proof obligation (b)).
//!
//! This module is the *deterministic half* of the crate: it must contain no
//! wall-clock, thread, or entropy use at all (`pfair-lint`'s
//! `no-nondeterminism` rule covers `crates/runtime` with no allows in this
//! file). Everything nondeterministic lives in [`crate::exec`] behind
//! justified allows.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pfair_core::key::{KeyCache, Pd2Key};
use pfair_numeric::{Rat, Time};
use pfair_obs::{Observer, ReadyCause, RecordingObserver, SchedEvent};
use pfair_online::OnlineAssignment;
use pfair_taskmodel::{window, SubtaskId, SubtaskRef, TaskId, TaskSystem, Weight};

use crate::jitter::{quantum_cost, JitterRegime};

/// Which completion-ordering discipline the core runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Logical-time barrier: completions are processed in exact logical
    /// order, stalling on workers as needed. Bit-identical to `OnlineDvq`.
    Deterministic,
    /// Completions are processed as workers deliver them; the schedule
    /// depends on real thread timing and is checked by replay.
    FreeRunning,
}

/// A planted concurrency fault, for proving the replay harness is
/// load-bearing. `FaultPlan::None` is the production configuration; the
/// other variants are the mutants `crates/conformance` catalogues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// No fault: correct runtime.
    None,
    /// The dispatch batch is published torn: every entry after the first
    /// in a multi-assignment batch is recorded with the *previous* entry's
    /// processor, as a racing reader of a non-atomic batch would see it.
    /// Execution itself stays correct — only the event stream tears.
    TornDispatchBatch,
    /// The combiner loses the first completion request it drains: the
    /// classic lost-wakeup, leaving the dispatch core waiting forever for
    /// a quantum that already finished.
    LostWakeupCombiner,
    /// Ready subtasks are keyed from the previous subtask's KeyCache slot
    /// (a stale read), silently reordering PD² dispatch.
    StaleKeyCacheRead,
}

/// A request published into a delegation-lock slot.
#[derive(Clone, Copy, Debug)]
pub enum Request {
    /// A job arrival: release the next job of `task` at time `at`.
    Submit {
        /// The task.
        task: TaskId,
        /// The (integral) release time.
        at: i64,
    },
    /// All arrivals are in; event processing may begin.
    Begin,
    /// Worker `proc` finished executing its current quantum (a completion
    /// when the full quantum was used, a δ-yield when it finished early).
    Done {
        /// The reporting processor.
        proc: u32,
    },
}

/// What [`DispatchCore::advance`] ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Every released subtask has been dispatched and logically completed.
    Done,
    /// Deterministic mode: the next logical event is a completion whose
    /// worker has not physically reported yet.
    Stalled,
    /// Free-running mode: nothing to do until a worker reports done.
    Idle,
}

/// One not-yet-dispatched subtask of a task's chain.
#[derive(Clone, Copy, Debug)]
struct SubSpec {
    index: u64,
    st: SubtaskRef,
    eligible: i64,
    deadline: i64,
}

#[derive(Clone, Debug)]
struct TaskState {
    weight: Weight,
    jobs: u64,
    last_release: Option<i64>,
    queue: VecDeque<SubSpec>,
    pred_completion: Time,
    chain_busy: bool,
    head_armed: bool,
}

/// Heap events, ordered like `OnlineDvq`'s (`ProcFree` before `Activate`
/// at equal instants, then by processor / task id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    ProcFree(u32, TaskId),
    Activate(TaskId),
}

/// The quantum in flight on a processor: `(subtask, completion, deadline)`.
type RunningQuantum = (SubtaskId, Time, i64);

/// The dispatch state machine the combiner drives.
#[derive(Debug)]
pub struct DispatchCore {
    sys: TaskSystem,
    keys: KeyCache<Pd2Key>,
    mode: Mode,
    fault: FaultPlan,
    seed: u64,
    regime: JitterRegime,
    m: u32,
    now: Time,
    started: bool,
    tasks: Vec<TaskState>,
    ready: BinaryHeap<Reverse<(Pd2Key, u32)>>,
    ready_spec: Vec<Option<SubSpec>>,
    events: BinaryHeap<Reverse<(Time, Ev)>>,
    free: Vec<u32>,
    running: Vec<Option<RunningQuantum>>,
    /// Deterministic mode: has the worker physically reported the quantum
    /// dispatched to this processor?
    phys_done: Vec<bool>,
    /// Quanta dispatched but not yet logically freed.
    outstanding: u32,
    /// The instant currently being batch-drained, if any.
    batch: Option<Time>,
    log: Vec<OnlineAssignment>,
    /// Assignments dispatched since the last [`Self::take_assignments`]:
    /// the combiner delivers these to worker mailboxes.
    pending: Vec<OnlineAssignment>,
    obs: RecordingObserver,
}

impl DispatchCore {
    /// A core over `m ≥ 1` virtual processors for `sys`, whose subtasks
    /// must cover exactly the jobs later submitted. Costs are drawn from
    /// [`quantum_cost`] with `(seed, regime)`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(
        sys: TaskSystem,
        m: u32,
        seed: u64,
        regime: JitterRegime,
        mode: Mode,
        fault: FaultPlan,
    ) -> DispatchCore {
        assert!(m >= 1, "need at least one processor");
        let keys = KeyCache::build(&sys);
        let tasks = sys
            .tasks()
            .iter()
            .map(|t| TaskState {
                weight: t.weight,
                jobs: 0,
                last_release: None,
                queue: VecDeque::new(),
                pred_completion: Rat::ZERO,
                chain_busy: false,
                head_armed: false,
            })
            .collect();
        let num_tasks = sys.num_tasks();
        DispatchCore {
            sys,
            keys,
            mode,
            fault,
            seed,
            regime,
            m,
            now: Rat::ZERO,
            started: false,
            tasks,
            ready: BinaryHeap::new(),
            ready_spec: vec![None; num_tasks],
            events: BinaryHeap::new(),
            free: (0..m).collect(),
            running: vec![None; m as usize],
            phys_done: vec![false; m as usize],
            outstanding: 0,
            batch: None,
            log: Vec::new(),
            pending: Vec::new(),
            obs: RecordingObserver::new(),
        }
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The number of virtual processors.
    #[must_use]
    pub fn num_procs(&self) -> u32 {
        self.m
    }

    /// Submits the next job of `task`, released at `at` — the `Submit`
    /// request handler. Mirrors `OnlineDvq::submit_job_observed`, with the
    /// spec windows cross-checked against the owned [`TaskSystem`] so the
    /// KeyCache lookups are guaranteed fresh.
    ///
    /// # Panics
    /// The driver controls submissions, so violations (sporadic separation,
    /// submission after [`Self::begin`], a job the system never released)
    /// are bugs and panic with the broken invariant.
    pub fn submit(&mut self, task: TaskId, at: i64) {
        assert!(
            !self.started,
            "all arrivals must be published before Begin (T{} at {at})",
            task.0
        );
        let state = &mut self.tasks[task.idx()];
        if let Some(prev) = state.last_release {
            assert!(
                at >= prev + state.weight.p(),
                "sporadic separation violated: T{} released at {at}, earliest {}",
                task.0,
                prev + state.weight.p()
            );
        }
        let w = state.weight;
        let j = state.jobs;
        let theta = at - i64::try_from(j).expect("job count fits i64") * w.p();
        let e = u64::try_from(w.e()).expect("execution requirement is positive");
        let first = j * e + 1;
        for index in first..first + e {
            let id = SubtaskId { task, index };
            let st = self
                .sys
                .find(id)
                .unwrap_or_else(|| panic!("T{}_{index} submitted but not in the system", task.0));
            let s = self.sys.subtask(st);
            assert!(
                s.theta == theta && s.eligible == theta + window::release(w, index),
                "system subtask T{}_{index} disagrees with the submission plan \
                 (theta {} vs {theta}): the KeyCache would serve a wrong key",
                task.0,
                s.theta
            );
            let spec = SubSpec {
                index,
                st,
                eligible: s.eligible,
                deadline: s.deadline,
            };
            self.obs
                .on_event(&SchedEvent::Released { id, at: s.eligible });
            self.tasks[task.idx()].queue.push_back(spec);
        }
        let state = &mut self.tasks[task.idx()];
        state.jobs += 1;
        state.last_release = Some(at);
        self.arm_head(task);
    }

    /// The `Begin` request handler: arrivals are complete, event
    /// processing may start. Before this, [`Self::advance`] refuses to run
    /// so that partially-published arrival batches can never dispatch —
    /// the same "all submissions precede the run" contract `OnlineDvq`
    /// callers follow.
    pub fn begin(&mut self) {
        self.started = true;
    }

    /// Deterministic mode: worker `proc` physically finished its quantum.
    pub fn mark_done(&mut self, proc: u32) {
        assert!(
            self.mode == Mode::Deterministic,
            "mark_done is the deterministic-mode completion path"
        );
        assert!(
            self.running[proc as usize].is_some(),
            "processor {proc} reported done while idle"
        );
        self.phys_done[proc as usize] = true;
    }

    /// The logical completion time of the quantum in flight on `proc` —
    /// the combiner sorts a batch of `Done`s by this before applying them
    /// in free-running mode, so physical timing only reorders across
    /// batches, never within one.
    #[must_use]
    pub fn completion_of(&self, proc: u32) -> Time {
        self.running[proc as usize]
            .as_ref()
            .map(|&(_, completion, _)| completion)
            .expect("queried completion of an idle processor")
    }

    /// Free-running mode: apply worker `proc`'s completion now, at logical
    /// time `max(now, completion)`. Activations that logically precede the
    /// completion are processed first; if the report arrives late (another
    /// processor's later completion already advanced `now`), the freed
    /// processor simply idled the gap — visible in the replayed schedule
    /// as capacity loss, never as an invalid placement.
    pub fn complete_unordered(&mut self, proc: u32) {
        assert!(
            self.mode == Mode::FreeRunning,
            "complete_unordered is the free-running completion path"
        );
        let (id, completion, deadline) = self.running[proc as usize]
            .take()
            .expect("processor reported done while idle");
        // Logically-earlier activations come first.
        self.drain_events_below(completion);
        let eff = self.now.max(completion);
        self.ensure_batch(eff);
        self.finish_quantum(proc, id, completion, deadline);
    }

    /// Processes logical events until input is needed: a physical
    /// completion (both modes) or, deterministic mode, the specific worker
    /// the next `ProcFree` waits on. Dispatch decisions land in the
    /// pending-assignment buffer ([`Self::take_assignments`]).
    pub fn advance(&mut self) -> Status {
        if !self.started {
            return Status::Idle;
        }
        loop {
            let Some(&Reverse((t, ev))) = self.events.peek() else {
                self.close_batch();
                return if self.outstanding == 0 && self.ready.is_empty() {
                    Status::Done
                } else {
                    Status::Idle
                };
            };
            let eff = self.now.max(t);
            if let Some(bt) = self.batch {
                if eff > bt {
                    self.close_batch();
                    continue;
                }
            }
            match self.mode {
                Mode::Deterministic => {
                    if let Ev::ProcFree(proc, _) = ev {
                        if !self.phys_done[proc as usize] {
                            // Mid-batch stalls keep the batch open: the
                            // instant is not fully drained, so dispatching
                            // now would diverge from `OnlineDvq`.
                            return Status::Stalled;
                        }
                    }
                }
                Mode::FreeRunning => {
                    if self.outstanding > 0 && eff >= self.min_outstanding() {
                        // An in-flight quantum logically completes first;
                        // wait for its worker.
                        return Status::Idle;
                    }
                }
            }
            self.ensure_batch(eff);
            let Reverse((_, ev)) = self.events.pop().expect("peeked event still queued");
            match ev {
                Ev::ProcFree(proc, _) => {
                    let (id, completion, deadline) = self.running[proc as usize]
                        .take()
                        .expect("a freed processor was running a quantum");
                    self.phys_done[proc as usize] = false;
                    self.finish_quantum(proc, id, completion, deadline);
                }
                Ev::Activate(task) => self.activate(task),
            }
        }
    }

    /// Assignments dispatched since the last call, in dispatch order; the
    /// combiner delivers them to worker mailboxes.
    pub fn take_assignments(&mut self) -> Vec<OnlineAssignment> {
        std::mem::take(&mut self.pending)
    }

    /// Consumes the core: the full dispatch log and the recorded event
    /// stream.
    #[must_use]
    pub fn into_parts(self) -> (Vec<OnlineAssignment>, Vec<SchedEvent>) {
        (self.log, self.obs.into_events())
    }

    /// Earliest logical completion among in-flight quanta.
    fn min_outstanding(&self) -> Time {
        self.running
            .iter()
            .flatten()
            .map(|&(_, completion, _)| completion)
            .min()
            .expect("outstanding > 0 implies an in-flight quantum")
    }

    /// Processes heap events whose effective instant is strictly below
    /// `limit` (free-running helper; the heap holds only activations).
    fn drain_events_below(&mut self, limit: Time) {
        while let Some(&Reverse((t, ev))) = self.events.peek() {
            let eff = self.now.max(t);
            if eff >= limit {
                break;
            }
            if let Some(bt) = self.batch {
                if eff > bt {
                    self.close_batch();
                    continue;
                }
            }
            self.ensure_batch(eff);
            self.events.pop();
            match ev {
                Ev::ProcFree(..) => {
                    unreachable!("free-running mode keeps completions out of the heap")
                }
                Ev::Activate(task) => self.activate(task),
            }
        }
    }

    /// Opens the batch at instant `eff` (emitting its `Tick`) if no batch
    /// is open; closes and reopens if `eff` moved past an open batch.
    fn ensure_batch(&mut self, eff: Time) {
        if let Some(bt) = self.batch {
            if eff == bt {
                return;
            }
            self.close_batch();
        }
        self.batch = Some(eff);
        self.now = eff;
        self.obs.on_event(&SchedEvent::Tick { at: eff });
    }

    /// Logically frees `proc` after its quantum: deadline verdict, freeing,
    /// and re-arming the task's chain. The caller has already taken the
    /// quantum out of `running` and opened the batch the freeing lands in.
    fn finish_quantum(&mut self, proc: u32, id: SubtaskId, completion: Time, deadline: i64) {
        self.obs.on_event(&SchedEvent::QuantumEnd {
            id,
            proc,
            completion,
            deadline,
            waste: Rat::ZERO,
        });
        let d = Rat::int(deadline);
        if completion > d {
            self.obs.on_event(&SchedEvent::DeadlineMiss {
                id,
                completion,
                deadline,
                tardiness: completion - d,
            });
        } else {
            self.obs.on_event(&SchedEvent::DeadlineHit {
                id,
                completion,
                deadline,
            });
        }
        self.free.push(proc);
        self.outstanding -= 1;
        let state = &mut self.tasks[id.task.idx()];
        state.chain_busy = false;
        self.arm_head(id.task);
    }

    /// The `Activate` handler: moves the chain head to the ready queue,
    /// keyed from the KeyCache.
    fn activate(&mut self, task: TaskId) {
        let batch_t = self.batch.expect("activation happens inside a batch");
        let state = &mut self.tasks[task.idx()];
        state.head_armed = false;
        if state.chain_busy {
            return; // stale arm
        }
        let Some(spec) = state.queue.pop_front() else {
            return;
        };
        state.chain_busy = true;
        let cause = if batch_t == Rat::int(spec.eligible) {
            ReadyCause::Eligibility
        } else {
            ReadyCause::Predecessor
        };
        self.obs.on_event(&SchedEvent::Ready {
            id: SubtaskId {
                task,
                index: spec.index,
            },
            at: batch_t,
            cause,
        });
        let key = self.key_for(spec.st);
        self.ready.push(Reverse((key, task.0)));
        self.ready_spec[task.idx()] = Some(spec);
    }

    /// The KeyCache read backing the dispatch pass. The
    /// [`FaultPlan::StaleKeyCacheRead`] mutant serves the *previous*
    /// subtask's slot — the value a racing reader would see before the
    /// cache line for this subtask lands.
    fn key_for(&self, st: SubtaskRef) -> Pd2Key {
        if self.fault == FaultPlan::StaleKeyCacheRead {
            if let Some(pred) = self.sys.subtask(st).pred {
                return self.keys.key(pred);
            }
        }
        self.keys.key(st)
    }

    /// Arms the chain head's activation event if the task has pending work
    /// and nothing of it is ready/running.
    fn arm_head(&mut self, task: TaskId) {
        let state = &mut self.tasks[task.idx()];
        if state.chain_busy || state.head_armed {
            return;
        }
        let Some(head) = state.queue.front() else {
            return;
        };
        let act = Rat::int(head.eligible).max(state.pred_completion);
        state.head_armed = true;
        self.events.push(Reverse((act, Ev::Activate(task))));
    }

    /// Closes the open batch: one KeyCache-backed PD² dispatch pass over
    /// the drained instant, handing free processors (lowest index first)
    /// to ready subtasks in priority order.
    fn close_batch(&mut self) {
        let Some(t) = self.batch.take() else {
            return;
        };
        self.free.sort_unstable_by(|a, b| b.cmp(a));
        let mut prev_proc: Option<u32> = None;
        while !self.free.is_empty() && !self.ready.is_empty() {
            let Reverse((_, task_raw)) = self.ready.pop().expect("ready nonempty");
            let task = TaskId(task_raw);
            let spec = self.ready_spec[task.idx()]
                .take()
                .expect("ready entry has a spec");
            let proc = self.free.pop().expect("free nonempty");
            let c = quantum_cost(self.seed, self.regime, task, spec.index);
            assert!(
                c.is_positive() && c <= Rat::ONE,
                "jitter produced cost {c} outside (0, 1]"
            );
            let completion = self.now + c;
            let id = SubtaskId {
                task,
                index: spec.index,
            };
            // The torn-batch mutant records later entries of a
            // multi-assignment batch with the previous entry's processor;
            // the *execution* (mailboxes, log) stays correct.
            let recorded_proc = match (self.fault, prev_proc) {
                (FaultPlan::TornDispatchBatch, Some(prev)) => prev,
                _ => proc,
            };
            self.obs.on_event(&SchedEvent::QuantumStart {
                id,
                proc: recorded_proc,
                start: self.now,
                cost: c,
                holds_until: completion,
                deadline: spec.deadline,
                bbit: self.keys.key(spec.st).bbit,
                group_deadline: self.keys.key(spec.st).group_deadline,
            });
            self.running[proc as usize] = Some((id, completion, spec.deadline));
            self.phys_done[proc as usize] = false;
            self.outstanding += 1;
            let assignment = OnlineAssignment {
                task,
                index: spec.index,
                proc,
                start: self.now,
                cost: c,
                deadline: spec.deadline,
            };
            self.log.push(assignment.clone());
            self.pending.push(assignment);
            self.tasks[task.idx()].pred_completion = completion;
            if self.mode == Mode::Deterministic {
                self.events
                    .push(Reverse((completion, Ev::ProcFree(proc, task))));
            }
            prev_proc = Some(proc);
        }
        if !self.free.is_empty() {
            self.obs.on_event(&SchedEvent::Idle {
                at: t,
                procs: u32::try_from(self.free.len()).expect("m fits u32"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_online::OnlineDvq;
    use pfair_taskmodel::TaskSystemBuilder;

    /// A periodic system plus its submission plan: every task releases
    /// `jobs` back-to-back jobs from time 0.
    fn periodic(weights: &[(i64, i64)], jobs: u64) -> (TaskSystem, Vec<(TaskId, i64)>) {
        let mut b = TaskSystemBuilder::new();
        let ids: Vec<TaskId> = weights
            .iter()
            .map(|&(e, p)| b.add_task(Weight::new(e, p)))
            .collect();
        let mut plan = Vec::new();
        for (t, &(e, p)) in ids.iter().zip(weights) {
            for j in 0..jobs {
                let ji = i64::try_from(j).expect("job count");
                plan.push((*t, ji * p));
                for index in j * u64::try_from(e).expect("e > 0") + 1
                    ..=(j + 1) * u64::try_from(e).expect("e > 0")
                {
                    b.push(*t, index, 0, None).expect("valid periodic release");
                }
            }
        }
        plan.sort_by_key(|&(t, at)| (at, t));
        (b.build(), plan)
    }

    /// Drives the core synchronously: whenever it stalls or idles, the
    /// earliest-completing in-flight quantum reports done.
    fn drive(core: &mut DispatchCore) -> (Vec<OnlineAssignment>, Vec<SchedEvent>) {
        core.begin();
        loop {
            match core.advance() {
                Status::Done => break,
                Status::Stalled | Status::Idle => {
                    let proc = (0..core.m)
                        .filter(|&p| core.running[p as usize].is_some())
                        .min_by_key(|&p| (core.completion_of(p), p))
                        .expect("a stalled core has in-flight work");
                    match core.mode {
                        Mode::Deterministic => core.mark_done(proc),
                        Mode::FreeRunning => core.complete_unordered(proc),
                    }
                }
            }
            core.take_assignments();
        }
        let taken = std::mem::take(&mut core.log);
        let events = std::mem::take(&mut core.obs).into_events();
        (taken, events)
    }

    fn reference(
        sys: &TaskSystem,
        plan: &[(TaskId, i64)],
        m: u32,
        seed: u64,
        regime: JitterRegime,
    ) -> (Vec<OnlineAssignment>, Vec<SchedEvent>) {
        let mut obs = RecordingObserver::new();
        let mut s = OnlineDvq::new(m);
        for t in sys.tasks() {
            s.add_task(t.weight);
        }
        for &(t, at) in plan {
            s.submit_job_observed(t, at, &mut obs).expect("valid plan");
        }
        let log = s.run_until_idle_observed(
            &mut |task, index| quantum_cost(seed, regime, task, index),
            &mut obs,
        );
        (log, obs.into_events())
    }

    #[test]
    fn deterministic_mode_is_bit_identical_to_online_dvq() {
        for seed in 0..8u64 {
            let (sys, plan) = periodic(&[(1, 2), (1, 3), (2, 5), (1, 6)], 3);
            let mut core = DispatchCore::new(
                sys.clone(),
                2,
                seed,
                JitterRegime::Adversarial,
                Mode::Deterministic,
                FaultPlan::None,
            );
            for &(t, at) in &plan {
                core.submit(t, at);
            }
            let (log, events) = drive(&mut core);
            let (ref_log, ref_events) = reference(&sys, &plan, 2, seed, JitterRegime::Adversarial);
            assert_eq!(log, ref_log, "schedule diverged at seed {seed}");
            assert_eq!(events, ref_events, "event stream diverged at seed {seed}");
        }
    }

    #[test]
    fn free_running_in_logical_order_matches_the_reference_schedule() {
        // When completions are applied in logical order (as `drive` does),
        // free-running mode reduces to the deterministic schedule.
        let (sys, plan) = periodic(&[(1, 2), (1, 3), (1, 6)], 2);
        let mut core = DispatchCore::new(
            sys.clone(),
            2,
            11,
            JitterRegime::Mild,
            Mode::FreeRunning,
            FaultPlan::None,
        );
        for &(t, at) in &plan {
            core.submit(t, at);
        }
        let (log, _) = drive(&mut core);
        let (ref_log, _) = reference(&sys, &plan, 2, 11, JitterRegime::Mild);
        assert_eq!(log, ref_log);
    }

    #[test]
    fn free_running_tolerates_late_completion_reports() {
        // Two quanta in flight; the one that logically completes *second*
        // reports first. The late processor idles the gap; both quanta and
        // all successors still dispatch, and time never goes backwards.
        let (sys, plan) = periodic(&[(1, 2), (1, 2)], 2);
        let mut core = DispatchCore::new(
            sys,
            2,
            3,
            JitterRegime::Adversarial,
            Mode::FreeRunning,
            FaultPlan::None,
        );
        for &(t, at) in &plan {
            core.submit(t, at);
        }
        core.begin();
        assert_eq!(core.advance(), Status::Idle);
        core.take_assignments();
        let (a, b) = (core.completion_of(0), core.completion_of(1));
        let (late, early) = if a >= b { (0u32, 1u32) } else { (1, 0) };
        core.complete_unordered(late); // out of logical order
        core.complete_unordered(early);
        loop {
            match core.advance() {
                Status::Done => break,
                _ => {
                    let proc = (0..2)
                        .filter(|&p| core.running[p as usize].is_some())
                        .min_by_key(|&p| (core.completion_of(p), p))
                        .expect("in-flight work");
                    core.complete_unordered(proc);
                }
            }
            core.take_assignments();
        }
        assert_eq!(core.log.len(), 4, "both jobs of both tasks dispatched");
        for w in core.log.windows(2) {
            assert!(w[0].start <= w[1].start, "dispatch log left time order");
        }
    }

    #[test]
    fn stale_keycache_fault_serves_the_predecessors_slot() {
        let (sys, _) = periodic(&[(2, 5)], 1);
        let a1 = sys
            .find(SubtaskId {
                task: TaskId(0),
                index: 1,
            })
            .expect("T0_1 exists");
        let a2 = sys
            .find(SubtaskId {
                task: TaskId(0),
                index: 2,
            })
            .expect("T0_2 exists");
        let clean = DispatchCore::new(
            sys.clone(),
            1,
            0,
            JitterRegime::None,
            Mode::Deterministic,
            FaultPlan::None,
        );
        let stale = DispatchCore::new(
            sys,
            1,
            0,
            JitterRegime::None,
            Mode::Deterministic,
            FaultPlan::StaleKeyCacheRead,
        );
        assert_eq!(clean.key_for(a2), clean.keys.key(a2));
        assert_eq!(
            stale.key_for(a2),
            stale.keys.key(a1),
            "the stale read serves the predecessor's cache slot"
        );
        assert_ne!(
            stale.key_for(a2),
            stale.keys.key(a2),
            "weight 2/5 gives T0_1 and T0_2 distinct keys, so the tear is visible"
        );
        // Chain heads have no predecessor: the stale read is invisible there.
        assert_eq!(stale.key_for(a1), stale.keys.key(a1));
    }

    #[test]
    fn torn_batch_fault_tears_the_event_stream_but_not_the_log() {
        // Three tasks ready at once on three processors: a multi-entry
        // dispatch batch, so the tear has something to tear.
        let (sys, plan) = periodic(&[(1, 2), (1, 2), (1, 2)], 1);
        let run = |fault| {
            let mut core = DispatchCore::new(
                sys.clone(),
                3,
                0,
                JitterRegime::None,
                Mode::Deterministic,
                fault,
            );
            for &(t, at) in &plan {
                core.submit(t, at);
            }
            drive(&mut core)
        };
        let (clean_log, clean_events) = run(FaultPlan::None);
        let (torn_log, torn_events) = run(FaultPlan::TornDispatchBatch);
        assert_eq!(clean_log, torn_log, "execution itself stays correct");
        assert_ne!(clean_events, torn_events, "the recorded stream tears");
        let procs = |events: &[SchedEvent]| -> Vec<u32> {
            events
                .iter()
                .filter_map(|e| match e {
                    SchedEvent::QuantumStart { proc, .. } => Some(*proc),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(procs(&clean_events), vec![0, 1, 2]);
        assert_eq!(procs(&torn_events), vec![0, 0, 1], "torn publication");
    }

    #[test]
    fn advance_refuses_to_run_before_begin() {
        let (sys, plan) = periodic(&[(1, 2)], 1);
        let mut core = DispatchCore::new(
            sys,
            1,
            0,
            JitterRegime::None,
            Mode::Deterministic,
            FaultPlan::None,
        );
        for &(t, at) in &plan {
            core.submit(t, at);
        }
        assert_eq!(core.advance(), Status::Idle);
        assert!(core.take_assignments().is_empty());
    }
}
