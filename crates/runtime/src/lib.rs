//! Real multi-core PD²-DVQ execution.
//!
//! Everything below `crates/runtime` in the workspace *simulates* the
//! paper's desynchronized-quantum model; this crate *runs* it. `M` worker
//! threads each own a virtual processor and actually burn CPU for every
//! quantum they execute, with seeded per-quantum jitter ([`jitter`]) so
//! δ-yields — the early completions that desynchronize quantum boundaries
//! (§2 of the paper) — happen for real. Scheduling decisions are
//! centralized through a flat-combining delegation lock ([`lock`]):
//! workers publish yield/arrival/completion requests into per-worker
//! slots, and whichever worker holds the combiner role drains the batch
//! and runs one KeyCache-backed PD² dispatch pass over the deterministic
//! core ([`core`]).
//!
//! Correctness is *proven per run*, two ways ([`exec`]):
//!
//! * **Deterministic mode** imposes a logical-time barrier on completions,
//!   making the schedule bit-identical to the single-threaded
//!   [`pfair_online::OnlineDvq`] reference regardless of thread timing.
//! * **Free-running mode** lets physical timing order completions; the
//!   recorded event stream is then replayed through
//!   `pfair_sim::replay_events` into the conformance bank, which checks
//!   DVQ structural validity, allocation conservation, and the paper's
//!   Theorem 3 tardiness bound on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod exec;
pub mod jitter;
pub mod lock;

pub use crate::core::{DispatchCore, FaultPlan, Mode, Request, Status};
pub use crate::exec::{execute, RuntimeConfig, RuntimeRun};
pub use crate::jitter::{quantum_cost, JitterRegime};
pub use crate::lock::DelegationLock;
