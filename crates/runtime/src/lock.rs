//! A flat-combining delegation lock.
//!
//! Classic mutual exclusion makes every thread take the lock to apply its
//! own operation; *flat combining* (Hendler, Incze, Shavit & Tzafrir,
//! SPAA 2010) instead has threads **publish** requests into per-thread
//! slots, and whichever thread happens to hold the lock — the *combiner*
//! — drains every slot and applies the whole batch against the protected
//! state in one go. Threads that fail the lock election spin on their own
//! slot until some combiner has consumed it.
//!
//! That shape is exactly what the runtime's dispatch path wants: `M`
//! workers complete quanta at desynchronized instants, and each batch the
//! combiner drains becomes one PD² dispatch pass over the
//! [`DispatchCore`](crate::core::DispatchCore) — scheduling work rides
//! along with whichever worker yielded last, no dedicated scheduler
//! thread needed.
//!
//! The lock is generic over state `T` and request `R`: unit tests drive
//! it with a plain counter to check the combining contract (every
//! published request applied exactly once, no lost or duplicated
//! requests) separately from scheduling semantics.

use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;

/// How many requests one slot can hold before its publisher must wait for
/// a combiner to drain it. Publishers block (combining) on a full slot,
/// so this only bounds memory, not correctness.
const SLOT_CAPACITY: usize = 64;

/// A flat-combining delegation lock: per-publisher request slots around a
/// combiner-owned state `T`.
#[derive(Debug)]
pub struct DelegationLock<T, R> {
    slots: Vec<ArrayQueue<R>>,
    core: Mutex<T>,
}

impl<T, R> DelegationLock<T, R> {
    /// A lock over `state` with `publishers` independent request slots.
    ///
    /// # Panics
    /// Panics if `publishers == 0`.
    #[must_use]
    pub fn new(state: T, publishers: usize) -> DelegationLock<T, R> {
        assert!(publishers > 0, "need at least one publisher slot");
        DelegationLock {
            slots: (0..publishers)
                .map(|_| ArrayQueue::new(SLOT_CAPACITY))
                .collect(),
            core: Mutex::new(state),
        }
    }

    /// Publishes `req` into `slot` and does not return until some combiner
    /// (possibly this thread) has consumed it. `apply` is the combining
    /// function, invoked under the lock with every request the combiner
    /// drained, in slot order and FIFO within each slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn publish<F>(&self, slot: usize, req: R, apply: F)
    where
        F: Fn(&mut T, Vec<R>) + Copy,
    {
        let mut req = req;
        loop {
            match self.slots[slot].push(req) {
                Ok(()) => break,
                Err(back) => {
                    // Slot full: drain it ourselves if we win the lock,
                    // else give the current combiner a chance to.
                    req = back;
                    if !self.try_combine(apply) {
                        std::thread::yield_now();
                    }
                }
            }
        }
        while !self.slots[slot].is_empty() {
            if !self.try_combine(apply) {
                std::thread::yield_now();
            }
        }
    }

    /// One combining round: if the lock is free, drain every slot and
    /// apply the batch. Returns whether this thread combined. The batch
    /// may be empty — `apply` runs regardless, which lets callers use a
    /// no-request round as a progress probe.
    pub fn try_combine<F>(&self, apply: F) -> bool
    where
        F: Fn(&mut T, Vec<R>),
    {
        let Some(mut core) = self.core.try_lock() else {
            return false;
        };
        let mut batch = Vec::new();
        for slot in &self.slots {
            while let Some(req) = slot.pop() {
                batch.push(req);
            }
        }
        apply(&mut core, batch);
        true
    }

    /// Consumes the lock, returning the protected state. Callers must
    /// make sure no publisher is still active (e.g. after joining all
    /// worker threads).
    #[must_use]
    pub fn into_inner(self) -> T {
        self.core.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Combining contract under contention: every published request is
    /// applied exactly once, whatever thread ends up combining it.
    #[test]
    fn every_request_applies_exactly_once_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 1000;

        // State: (sum of applied requests, count of applied requests).
        let lock: DelegationLock<(u64, u64), u64> = DelegationLock::new((0, 0), THREADS);
        let apply = |state: &mut (u64, u64), batch: Vec<u64>| {
            for req in batch {
                state.0 += req;
                state.1 += 1;
            }
        };

        crossbeam::scope(|s| {
            for t in 0..THREADS {
                let lock = &lock;
                s.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        let value = u64::try_from(t).expect("small") * PER_THREAD + i;
                        lock.publish(t, value, apply);
                    }
                });
            }
        })
        .expect("no worker panicked");

        let total = u64::try_from(THREADS).expect("small") * PER_THREAD;
        let (sum, count) = lock.into_inner();
        assert_eq!(count, total, "requests lost or duplicated");
        assert_eq!(sum, (0..total).sum::<u64>(), "request payloads corrupted");
    }

    /// Requests from one publisher are combined in the order published,
    /// even when many combiners trade the lock.
    #[test]
    fn fifo_per_publisher_is_preserved_through_combining() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;

        // State: last-seen sequence number per publisher.
        let lock: DelegationLock<Vec<Option<u64>>, (usize, u64)> =
            DelegationLock::new(vec![None; THREADS], THREADS);
        let apply = |last: &mut Vec<Option<u64>>, batch: Vec<(usize, u64)>| {
            for (who, seq) in batch {
                if let Some(prev) = last[who] {
                    assert!(seq > prev, "publisher {who} reordered: {seq} after {prev}");
                }
                last[who] = Some(seq);
            }
        };

        crossbeam::scope(|s| {
            for t in 0..THREADS {
                let lock = &lock;
                s.spawn(move |_| {
                    for seq in 0..PER_THREAD {
                        lock.publish(t, (t, seq), apply);
                    }
                });
            }
        })
        .expect("no worker panicked");

        let last = lock.into_inner();
        for (who, seen) in last.iter().enumerate() {
            assert_eq!(*seen, Some(PER_THREAD - 1), "publisher {who} lost its tail");
        }
    }

    /// `publish` returns only after the request was consumed: the slot is
    /// empty again from the publisher's point of view.
    #[test]
    fn publish_blocks_until_consumed() {
        let lock: DelegationLock<Vec<u64>, u64> = DelegationLock::new(Vec::new(), 1);
        let apply = |state: &mut Vec<u64>, batch: Vec<u64>| state.extend(batch);
        for i in 0..10 {
            lock.publish(0, i, apply);
        }
        assert_eq!(lock.into_inner(), (0..10).collect::<Vec<u64>>());
    }
}
