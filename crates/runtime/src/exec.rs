//! The multi-threaded execution harness: real workers around the
//! deterministic core.
//!
//! [`execute`] spawns `M` worker threads, one per virtual processor.
//! Each worker blocks on a private mailbox until the dispatch core
//! assigns it a quantum, *burns CPU* proportional to the quantum's
//! jittered cost (`spin_work` — no wall clock, so the amount of work is
//! reproducible even though its duration is not), and then publishes a
//! [`Request::Done`] into its slot of the [`DelegationLock`]. Whichever
//! thread wins the combiner election drains the batch and drives the
//! [`DispatchCore`] — scheduling work rides along with worker threads;
//! there is no dedicated scheduler thread.
//!
//! The driver thread publishes every job arrival, then [`Request::Begin`],
//! then acts as a pure watchdog: a progress counter ticks on every
//! combining round, and if it stops moving for
//! [`RuntimeConfig::stall_timeout`] the driver declares the run stalled,
//! raises the shutdown flag, and wakes every mailbox so workers exit.
//! A correct runtime never stalls; the
//! [`FaultPlan::LostWakeupCombiner`](crate::FaultPlan)
//! mutant exists to prove the watchdog and the downstream
//! replay-completeness check are load-bearing.
//!
//! This module is the *nondeterministic half* of the crate: it is allowed
//! wall-clock timeouts and threads (with justified `pfair-lint` allows),
//! but every scheduling decision it produces comes out of the
//! deterministic core and is checked by replay.

use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use pfair_obs::SchedEvent;
use pfair_online::OnlineAssignment;
use pfair_taskmodel::{TaskId, TaskSystem};

use crate::core::{DispatchCore, FaultPlan, Mode, Request, Status};
use crate::jitter::JitterRegime;
use crate::lock::DelegationLock;

/// Configuration for one [`execute`] run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads / virtual processors.
    pub m: u32,
    /// Seed for the per-quantum jitter draw.
    pub seed: u64,
    /// How much execution-time variation workers inject.
    pub regime: JitterRegime,
    /// Deterministic (bit-identical to `OnlineDvq`) or free-running
    /// (physical completion order, checked by replay).
    pub mode: Mode,
    /// Planted concurrency fault, [`FaultPlan::None`] for production.
    pub fault: FaultPlan,
    /// Busy-work iterations per full quantum; each quantum burns
    /// `cost × spin` iterations. Zero makes quanta near-instant (still
    /// correct — completion *order* is what the modes govern).
    pub spin: u64,
    /// How long the watchdog waits without combiner progress before
    /// declaring the run stalled.
    pub stall_timeout: Duration,
}

impl RuntimeConfig {
    /// A sensible default for `m` workers: mild jitter, free-running,
    /// no fault, light spin, 10 s watchdog.
    #[must_use]
    pub fn new(m: u32) -> RuntimeConfig {
        RuntimeConfig {
            m,
            seed: 0,
            regime: JitterRegime::Mild,
            mode: Mode::FreeRunning,
            fault: FaultPlan::None,
            spin: 10_000,
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// The artifacts of one [`execute`] run.
#[derive(Debug)]
pub struct RuntimeRun {
    /// Every dispatch decision, in dispatch order — comparable against
    /// `OnlineDvq`'s log in deterministic mode.
    pub log: Vec<OnlineAssignment>,
    /// The recorded event stream, replayable through
    /// `pfair_sim::replay_events` into the conformance bank.
    pub events: Vec<SchedEvent>,
    /// Whether the watchdog had to kill the run (a correct runtime never
    /// stalls; planted lost-wakeup mutants do).
    pub stalled: bool,
}

/// One worker's mailbox: assignments the combiner has dispatched to its
/// processor, plus the condvar it sleeps on.
struct Mailbox {
    inbox: Mutex<VecDeque<OnlineAssignment>>,
    bell: Condvar,
}

/// Shared combiner-progress beat for the watchdog: the counter advances
/// on every combining round that applied at least one request.
struct Progress {
    rounds: Mutex<u64>,
    beat: Condvar,
}

/// Everything the combiner closure needs besides the core itself.
struct Shared {
    mailboxes: Vec<Mailbox>,
    progress: Progress,
    shutdown: AtomicBool,
    /// `LostWakeupCombiner`: arms exactly one dropped `Done`.
    lose_one: AtomicBool,
}

impl Shared {
    fn wake_everyone(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            // Taking the inbox lock orders the flag before any `wait`:
            // a worker that checked `shutdown` false is inside `wait`
            // (lock released) and receives this notification.
            let _guard = mb.inbox.lock();
            mb.bell.notify_all();
        }
        let _guard = self.progress.rounds.lock();
        self.progress.beat.notify_all();
    }
}

/// Burns CPU proportional to `cost` (in quanta) scaled by `spin`
/// iterations per full quantum. Pure arithmetic — no clocks — so the
/// *amount* of work is a deterministic function of the inputs.
fn spin_work(cost: pfair_numeric::Rat, spin: u64) {
    let iters_wide = cost.num() * i128::from(spin) / cost.den();
    let iters = u64::try_from(iters_wide).expect("cost in (0,1] keeps iterations within spin");
    let mut acc = 0u64;
    for i in 0..iters {
        acc = black_box(acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i));
    }
    black_box(acc);
}

/// The combining function: applies one drained request batch to the core
/// and distributes fresh assignments to worker mailboxes.
fn combine(core: &mut DispatchCore, batch: Vec<Request>, shared: &Shared) {
    let had_requests = !batch.is_empty();
    let mut dones: Vec<u32> = Vec::new();
    for req in batch {
        match req {
            Request::Submit { task, at } => core.submit(task, at),
            Request::Begin => core.begin(),
            Request::Done { proc } => {
                if shared.lose_one.swap(false, Ordering::SeqCst) {
                    // Planted lost wakeup: the combiner drains the request
                    // and forgets it. The quantum never logically
                    // completes; the watchdog eventually kills the run and
                    // the truncated stream fails replay-completeness.
                    continue;
                }
                dones.push(proc);
            }
        }
    }
    match core.mode() {
        Mode::Deterministic => {
            // Physical arrival order is irrelevant: completions are
            // *marked* and the core consumes them in logical order,
            // stalling on workers as needed.
            for proc in dones {
                core.mark_done(proc);
            }
        }
        Mode::FreeRunning => {
            // Within one batch, apply in logical-completion order so a
            // single drain cannot invert logically-ordered frees; across
            // batches, physical timing rules.
            dones.sort_by_key(|&proc| (core.completion_of(proc), proc));
            for proc in dones {
                core.complete_unordered(proc);
            }
        }
    }
    let status = core.advance();
    for assignment in core.take_assignments() {
        let mb = &shared.mailboxes[usize::try_from(assignment.proc).expect("proc fits usize")];
        mb.inbox.lock().push_back(assignment);
        mb.bell.notify_one();
    }
    if status == Status::Done {
        shared.wake_everyone();
    }
    if had_requests {
        let mut rounds = shared.progress.rounds.lock();
        *rounds += 1;
        shared.progress.beat.notify_all();
    }
}

/// One worker thread: wait for an assignment, burn the quantum, report
/// done, repeat until shutdown.
fn worker_loop(
    proc: u32,
    lock: &DelegationLock<DispatchCore, Request>,
    shared: &Shared,
    spin: u64,
) {
    let apply = |core: &mut DispatchCore, batch: Vec<Request>| combine(core, batch, shared);
    let mb = &shared.mailboxes[usize::try_from(proc).expect("proc fits usize")];
    loop {
        let assignment = {
            let mut inbox = mb.inbox.lock();
            loop {
                if let Some(a) = inbox.pop_front() {
                    break a;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                mb.bell.wait(&mut inbox);
            }
        };
        spin_work(assignment.cost, spin);
        lock.publish(
            usize::try_from(proc).expect("proc fits usize"),
            Request::Done { proc },
            apply,
        );
    }
}

/// Runs `sys` for real: `cfg.m` worker threads execute every submitted
/// job's quanta with injected jitter, delegating scheduling to a
/// flat-combined [`DispatchCore`]. `jobs` lists `(task, release)` pairs,
/// already sorted by the caller's intended submission order (release
/// times must respect each task's sporadic separation).
///
/// # Panics
/// Panics on an invalid submission plan (unknown task, separation
/// violation) or if a worker thread panics.
#[must_use]
pub fn execute(sys: &TaskSystem, jobs: &[(TaskId, i64)], cfg: &RuntimeConfig) -> RuntimeRun {
    let core = DispatchCore::new(
        sys.clone(),
        cfg.m,
        cfg.seed,
        cfg.regime,
        cfg.mode,
        cfg.fault,
    );
    let lock: DelegationLock<DispatchCore, Request> =
        DelegationLock::new(core, usize::try_from(cfg.m).expect("m fits usize") + 1);
    let shared = Shared {
        mailboxes: (0..cfg.m)
            .map(|_| Mailbox {
                inbox: Mutex::new(VecDeque::new()),
                bell: Condvar::new(),
            })
            .collect(),
        progress: Progress {
            rounds: Mutex::new(0),
            beat: Condvar::new(),
        },
        shutdown: AtomicBool::new(false),
        lose_one: AtomicBool::new(cfg.fault == FaultPlan::LostWakeupCombiner),
    };
    let apply = |core: &mut DispatchCore, batch: Vec<Request>| combine(core, batch, &shared);
    let driver_slot = usize::try_from(cfg.m).expect("m fits usize");
    let mut stalled = false;

    // pfair-lint: allow(no-nondeterminism): the one thread-spawn site of the runtime; every scheduling decision the workers race toward comes out of the deterministic DispatchCore and is proven by replay (free-running) or bit-equality (deterministic mode).
    crossbeam::scope(|s| {
        for proc in 0..cfg.m {
            let lock = &lock;
            let shared = &shared;
            s.spawn(move |_| worker_loop(proc, lock, shared, cfg.spin));
        }
        for &(task, at) in jobs {
            lock.publish(driver_slot, Request::Submit { task, at }, apply);
        }
        lock.publish(driver_slot, Request::Begin, apply);
        // Watchdog: progress must keep beating until shutdown.
        let mut rounds = shared.progress.rounds.lock();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let seen = *rounds;
            let res = shared
                .progress
                .beat
                .wait_for(&mut rounds, cfg.stall_timeout);
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if res.timed_out() && *rounds == seen {
                // No combining round completed a request for a full
                // timeout: a quantum's completion was lost. Kill the run;
                // the truncated event stream will fail replay.
                stalled = true;
                drop(rounds);
                shared.wake_everyone();
                break;
            }
        }
    })
    .expect("worker panicked");

    let (log, events) = lock.into_inner().into_parts();
    RuntimeRun {
        log,
        events,
        stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_numeric::Rat;
    use pfair_online::OnlineDvq;
    use pfair_taskmodel::{TaskSystemBuilder, Weight};

    use crate::jitter::quantum_cost;

    fn periodic(weights: &[(i64, i64)], jobs: u64) -> (TaskSystem, Vec<(TaskId, i64)>) {
        let mut b = TaskSystemBuilder::new();
        let ids: Vec<TaskId> = weights
            .iter()
            .map(|&(e, p)| b.add_task(Weight::new(e, p)))
            .collect();
        let mut plan = Vec::new();
        for (t, &(e, p)) in ids.iter().zip(weights) {
            let e_u = u64::try_from(e).expect("e > 0");
            for j in 0..jobs {
                plan.push((*t, i64::try_from(j).expect("job count") * p));
                for index in j * e_u + 1..=(j + 1) * e_u {
                    b.push(*t, index, 0, None).expect("valid periodic release");
                }
            }
        }
        plan.sort_by_key(|&(t, at)| (at, t));
        (b.build(), plan)
    }

    fn reference_log(
        sys: &TaskSystem,
        plan: &[(TaskId, i64)],
        m: u32,
        seed: u64,
        regime: JitterRegime,
    ) -> Vec<OnlineAssignment> {
        let mut s = OnlineDvq::new(m);
        for t in sys.tasks() {
            s.add_task(t.weight);
        }
        for &(t, at) in plan {
            s.submit_job(t, at).expect("valid plan");
        }
        s.run_until_idle(&mut |task, index| quantum_cost(seed, regime, task, index))
    }

    #[test]
    fn deterministic_execution_matches_online_dvq_across_thread_counts() {
        let (sys, plan) = periodic(&[(1, 2), (1, 3), (2, 5)], 3);
        for m in [1, 2, 4] {
            let expected = reference_log(&sys, &plan, m, 42, JitterRegime::Adversarial);
            let mut cfg = RuntimeConfig::new(m);
            cfg.seed = 42;
            cfg.regime = JitterRegime::Adversarial;
            cfg.mode = Mode::Deterministic;
            let run = execute(&sys, &plan, &cfg);
            assert!(!run.stalled, "correct runtime must not stall (m = {m})");
            assert_eq!(run.log, expected, "m = {m} diverged from OnlineDvq");
        }
    }

    #[test]
    fn free_running_schedules_every_quantum() {
        let (sys, plan) = periodic(&[(1, 2), (1, 4), (1, 4)], 4);
        let mut cfg = RuntimeConfig::new(2);
        cfg.seed = 9;
        cfg.regime = JitterRegime::Mild;
        let run = execute(&sys, &plan, &cfg);
        assert!(!run.stalled);
        assert_eq!(
            run.log.len(),
            sys.num_subtasks(),
            "every subtask dispatched"
        );
        let starts: Vec<Rat> = run.log.iter().map(|a| a.start).collect();
        for w in starts.windows(2) {
            assert!(w[0] <= w[1], "dispatch log left time order");
        }
    }

    #[test]
    fn lost_wakeup_mutant_stalls_and_truncates_the_log() {
        let (sys, plan) = periodic(&[(1, 2), (1, 2)], 2);
        let mut cfg = RuntimeConfig::new(2);
        cfg.fault = FaultPlan::LostWakeupCombiner;
        cfg.stall_timeout = Duration::from_millis(200);
        let run = execute(&sys, &plan, &cfg);
        assert!(run.stalled, "the lost wakeup must trip the watchdog");
        assert!(
            run.log.len() < sys.num_subtasks(),
            "the lost quantum's successors must be missing from the log"
        );
    }

    #[test]
    fn zero_spin_still_schedules_correctly() {
        let (sys, plan) = periodic(&[(2, 3), (1, 3)], 2);
        let expected = reference_log(&sys, &plan, 2, 5, JitterRegime::Mild);
        let mut cfg = RuntimeConfig::new(2);
        cfg.seed = 5;
        cfg.regime = JitterRegime::Mild;
        cfg.mode = Mode::Deterministic;
        cfg.spin = 0;
        let run = execute(&sys, &plan, &cfg);
        assert!(!run.stalled);
        assert_eq!(run.log, expected);
    }
}
