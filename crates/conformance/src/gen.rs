//! Seeded case generation.
//!
//! One seed deterministically selects every dimension of a differential
//! test: processor count, weight distribution, total utilization, release
//! model (periodic / sporadic / intra-sporadic / GIS, with optional early
//! releases), and actual-cost model. The stateful cost models are
//! materialized into explicit [`CaseSpec`] overrides immediately, so a
//! case replays bit-identically from its seed alone — the same seeding
//! discipline `experiment::run_sweep` uses (`base_seed + trial_index`).

use pfair_numeric::Rat;
use pfair_sim::{CostModel, FullQuantum, ScaledCost};
use pfair_workload::{
    random_weights, releasegen, AdversarialYield, BimodalCost, ReleaseConfig, ReleaseKind,
    TaskGenConfig, UniformCost, WeightDist,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::case::CaseSpec;

/// Size knobs for [`generate_case`].
///
/// The defaults are deliberately small: window overlap (hence priority
/// inversions and blocking) is densest on few processors with short
/// periods, and the shrinker works best when the haystack starts small.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Largest processor count to draw (inclusive).
    pub max_m: u32,
    /// Largest task period to draw.
    pub max_period: i64,
    /// Largest release horizon to draw (inclusive).
    pub max_horizon: i64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_m: 4,
            max_period: 10,
            max_horizon: 16,
        }
    }
}

/// Deterministically generates the fuzz case for `seed`.
#[must_use]
pub fn generate_case(cfg: &GenConfig, seed: u64) -> CaseSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(1..=cfg.max_m);

    let dist = match rng.gen_range(0u8..4) {
        0 => WeightDist::Uniform,
        1 => WeightDist::Light,
        2 => WeightDist::Heavy,
        _ => WeightDist::Bimodal { heavy_percent: 30 },
    };
    let full = rng.gen_bool(0.6);
    let target_util = if full {
        Rat::int(i64::from(m))
    } else {
        Rat::new(i64::from(m) * rng.gen_range(50i64..100), 100)
    };
    let task_cfg = TaskGenConfig {
        target_util,
        max_period: cfg.max_period,
        dist,
        fill_exact: full,
    };

    let horizon = rng.gen_range(4..=cfg.max_horizon);
    let base = ReleaseConfig::periodic(horizon);
    let release_cfg = match rng.gen_range(0u8..6) {
        0 | 1 => base,
        2 => ReleaseConfig {
            early: rng.gen_range(1..=2),
            ..base
        },
        3 => ReleaseConfig {
            kind: ReleaseKind::IntraSporadic,
            delay_percent: 20,
            early: rng.gen_range(0..=1),
            max_join: 2,
            ..base
        },
        4 => ReleaseConfig::gis(horizon),
        _ => ReleaseConfig {
            kind: ReleaseKind::Sporadic,
            delay_percent: 15,
            ..base
        },
    };

    let weights = random_weights(&task_cfg, seed);
    let sys = releasegen::generate(&weights, &release_cfg, seed ^ 0x9e37_79b9_7f4a_7c15);

    let mut cost: Box<dyn CostModel> = match rng.gen_range(0u8..6) {
        0 | 1 => Box::new(FullQuantum),
        2 => Box::new(ScaledCost(Rat::new(rng.gen_range(5i64..=8), 8))),
        3 => Box::new(UniformCost::new(Rat::new(1, 4), seed ^ 0x5eed_c057)),
        4 => Box::new(BimodalCost::new(
            70,
            Rat::new(1, 8),
            seed ^ 0x00b1_b0da_1000,
        )),
        _ => Box::new(AdversarialYield::new(
            Rat::new(1, rng.gen_range(8i64..=32)),
            60,
            seed ^ 0xadae_25a1,
        )),
    };
    CaseSpec::from_system(seed, m, &sys, |st| cost.cost(&sys, st))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Case;

    #[test]
    fn generation_is_deterministic_and_feasible() {
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            let a = generate_case(&cfg, seed);
            let b = generate_case(&cfg, seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            let case = Case::build(a).expect("generated case builds");
            assert!(case.is_feasible(), "seed {seed} infeasible");
        }
    }
}
