//! Differential conformance fuzzing for the Pfair engines.
//!
//! The paper's claims are *relational*: PD²-DVQ versus PD^B versus
//! right-shifted PD²-SFQ, keyed-heap versus comparator dispatch, online
//! versus offline scheduling — and the maxflow schedulability oracle
//! shares no code with any simulator. This crate turns those relations
//! into a standing correctness backstop:
//!
//! * [`invariant`] — an [`Invariant`] bank drawn
//!   from the theorems: schedule validity, the Theorem 2 and Theorem 3
//!   tardiness bounds, PD²-SFQ optimality, allocation conservation,
//!   maxflow-oracle agreement, keyed-vs-comparator equality,
//!   online/offline equivalence, PD^B Table-1 conformance, hyperperiod
//!   periodicity — plus the competing-family laws: Boundary-Fair
//!   boundary conservation (an independent re-derivation of the BF
//!   allocation rules), flow-solution validity (window containment,
//!   capacity, precedence), and Cucu-Grosjean predictability of the
//!   cost-independent slot engines (SFQ, BF, flow — deliberately *not*
//!   DVQ, whose anomalies are real; see EXPERIMENTS.md).
//! * [`gen`] — a seeded case generator: one `u64` deterministically picks
//!   the processor count, weight distribution, utilization, release model
//!   and actual-cost model, materialized into a serializable
//!   [`CaseSpec`].
//! * [`campaign`] — a threaded campaign runner reusing the
//!   `experiment::run_sweep` seeding discipline (`base_seed + trial`),
//!   so results are independent of the thread count.
//! * [`mod@shrink`] — a greedy delta-debugging shrinker reducing any failing
//!   case to a minimal replayable repro (drop tasks → erase offsets /
//!   early releases / index gaps → truncate chains → simplify yields →
//!   reduce processors).
//! * [`mod@mutants`] — planted-bug engine sets that the mutation test suite
//!   uses to prove the harness actually fires.
//! * [`mod@runtime`] — a replay bank for real multi-threaded
//!   `pfair-runtime` executions: the recorded event stream is replayed
//!   through `slotplay` and checked for completeness, conservation,
//!   structural validity, the Theorem 3 bound, and (in deterministic
//!   mode) bit-equality against `OnlineDvq` — plus planted concurrency
//!   mutants, each caught by a different invariant.
//!
//! The `pfairsim fuzz` CLI subcommand and the CI smoke job are thin
//! wrappers over [`campaign::run_campaign`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod case;
pub mod engines;
pub mod gen;
pub mod invariant;
pub mod mutants;
pub mod runtime;
pub mod shrink;

pub use campaign::{check_seed, run_campaign, CampaignConfig, CampaignOutcome, Violation};
pub use case::{Case, CaseSpec, CostOverride, SubtaskSpec, TaskSpec};
pub use engines::{Engines, REFERENCE};
pub use gen::{generate_case, GenConfig};
pub use invariant::{bank, check_case, check_one, Failure, Invariant};
pub use mutants::{mutants, runtime_mutants, Mutant, RuntimeMutant};
pub use runtime::{
    check_runtime_run, generate_runtime_case, run_and_check, runtime_bank, RuntimeCase,
    RuntimeInvariant,
};
pub use shrink::shrink;
