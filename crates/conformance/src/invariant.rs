//! The invariant bank.
//!
//! Each [`Invariant`] encodes one theorem or cross-engine agreement law
//! from the paper and checks it against a single [`Case`]. The bank is
//! deliberately redundant: a planted bug that slips past one checker (say,
//! a tardiness bound that happens to hold on small systems) is usually
//! caught by another (schedule equality across dispatch paths, or the
//! maxflow oracle, which shares no code with the simulators).

use std::panic::{catch_unwind, AssertUnwindSafe};

use pfair_analysis::{
    check_structural, check_window_containment, detect_blocking, flow_schedulable,
    max_lag_over_slots, tardiness_histogram, tardiness_stats, total_lag, BlockingKind, WindowMode,
};
use pfair_core::pdb;
use pfair_core::priority::ComparatorOnly;
use pfair_core::KeyDispatch;
use pfair_numeric::Rat;
use pfair_obs::{InversionKind, MetricsObserver, DEFAULT_BUCKETS};
use pfair_online::OnlineDvq;
use pfair_sim::{simulate_dvq_observed, simulate_sfq_observed, FullQuantum, Schedule};
use pfair_taskmodel::hyperperiod::{hyperperiod_of_weights, subtasks_per_hyperperiod};
use pfair_taskmodel::{SubtaskRef, TaskSystem};
use pfair_workload::{releasegen, ReleaseConfig};

use crate::case::Case;
use crate::engines::{Engines, ProbeSim};

/// One checkable law drawn from the paper's theorems (or from an
/// implementation-level agreement the repo guarantees).
pub trait Invariant: Sync {
    /// Stable name used in reports and by the shrinker to re-check.
    fn name(&self) -> &'static str;

    /// Whether the law is meaningful for this case (e.g. the online
    /// scheduler only expresses synchronous whole-job workloads). Cases
    /// are already feasibility-filtered before reaching the bank.
    fn applies(&self, _case: &Case) -> bool {
        true
    }

    /// Checks the law; `Err` carries a human-readable violation report.
    ///
    /// # Errors
    /// A description of the violated law and the witnessing subtasks.
    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String>;
}

/// An invariant violation (or an engine panic) on one case.
#[derive(Clone, Debug)]
pub struct Failure {
    /// [`Invariant::name`] of the violated law, or `"panic"` if an engine
    /// panicked outright.
    pub invariant: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// Runs every applicable invariant in [`bank`] against `case`, converting
/// engine panics into failures.
///
/// # Errors
/// The first violated invariant, as a [`Failure`].
pub fn check_case(case: &Case, engines: &Engines) -> Result<(), Failure> {
    for inv in bank() {
        check_one(inv.name(), case, engines)?;
    }
    Ok(())
}

/// Runs the single invariant named `name` against `case` (panics from the
/// engines are reported as failures, so the shrinker can chase crashes the
/// same way it chases violations).
///
/// # Errors
/// A [`Failure`] if the invariant is violated or an engine panics.
///
/// # Panics
/// If `name` does not match any invariant in [`bank`].
pub fn check_one(name: &str, case: &Case, engines: &Engines) -> Result<(), Failure> {
    let inv = bank()
        .iter()
        .find(|i| i.name() == name)
        .unwrap_or_else(|| panic!("unknown invariant {name:?}"));
    if !inv.applies(case) {
        return Ok(());
    }
    match catch_unwind(AssertUnwindSafe(|| inv.check(case, engines))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(detail)) => Err(Failure {
            invariant: inv.name(),
            detail,
        }),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(Failure {
                invariant: inv.name(),
                detail: format!("engine panicked: {msg}"),
            })
        }
    }
}

/// The full invariant bank, in checking order (cheap structural laws
/// first, expensive cross-engine comparisons last).
#[must_use]
pub fn bank() -> &'static [&'static dyn Invariant] {
    static BANK: [&dyn Invariant; 15] = [
        &StructuralValidity,
        &AllocationConservation,
        &SfqZeroTardiness,
        &DvqTardinessBound,
        &PdbTardinessBound,
        &BfBoundaryConservation,
        &FlowSolutionValidity,
        &MaxflowAgreement,
        &KeyedComparatorEquality,
        &SfqDvqFullCostAgreement,
        &Predictability,
        &PdbTable1Conformance,
        &OnlineOfflineEquivalence,
        &HyperperiodPeriodicity,
        &StreamingPosthocAgreement,
    ];
    &BANK
}

fn describe(sys: &TaskSystem, st: SubtaskRef) -> String {
    let s = sys.subtask(st);
    format!(
        "T{}_{} (r={}, d={}, e={})",
        s.id.task.0, s.id.index, s.release, s.deadline, s.eligible
    )
}

/// The slot each placement occupies, asserting integral starts (only
/// meaningful for slot-based runs, i.e. SFQ-shaped schedules).
fn slot_of(sched: &Schedule) -> Vec<(SubtaskRef, i64)> {
    sched
        .placements()
        .iter()
        .map(|pl| {
            assert!(
                pl.start.den() == 1,
                "expected integral slot start, got {:?}",
                pl.start
            );
            (pl.st, pl.start.num_i64())
        })
        .collect()
}

/// Every engine must produce a structurally valid schedule: each released
/// subtask placed once, within capacity, respecting eligibility and
/// predecessor completion.
#[derive(Debug)]
struct StructuralValidity;

impl Invariant for StructuralValidity {
    fn name(&self) -> &'static str {
        "structural-validity"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let runs: [(&str, Schedule); 4] = [
            (
                "sfq",
                (engines.sfq)(sys, m, engines.sfq_order, &mut case.cost_model()),
            ),
            (
                "dvq",
                (engines.dvq)(sys, m, engines.keyed_order, &mut case.cost_model()),
            ),
            (
                "staggered",
                (engines.staggered)(sys, m, engines.keyed_order, &mut case.cost_model()),
            ),
            ("pdb", (engines.pdb)(sys, m, &mut case.cost_model())),
        ];
        for (label, sched) in &runs {
            if let Some(err) = check_structural(sys, sched).into_iter().next() {
                return Err(format!("{label}: {err}"));
            }
        }
        Ok(())
    }
}

/// Eq. (1) conservation: every placement executes for exactly the cost the
/// case's cost model assigns — engines may neither truncate nor pad work.
#[derive(Debug)]
struct AllocationConservation;

impl Invariant for AllocationConservation {
    fn name(&self) -> &'static str {
        "allocation-conservation"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let runs: [(&str, Schedule); 2] = [
            (
                "sfq",
                (engines.sfq)(sys, m, engines.sfq_order, &mut case.cost_model()),
            ),
            (
                "dvq",
                (engines.dvq)(sys, m, engines.keyed_order, &mut case.cost_model()),
            ),
        ];
        for (label, sched) in &runs {
            for pl in sched.placements() {
                let s = sys.subtask(pl.st);
                let want = case.expected_cost(s.id.task, s.id.index);
                if pl.cost != want {
                    return Err(format!(
                        "{label}: {} executed for {:?}, cost model says {:?}",
                        describe(sys, pl.st),
                        pl.cost,
                        want
                    ));
                }
            }
        }
        Ok(())
    }
}

/// PD² optimality under SFQ: zero tardiness on every feasible system.
#[derive(Debug)]
struct SfqZeroTardiness;

impl Invariant for SfqZeroTardiness {
    fn name(&self) -> &'static str {
        "sfq-zero-tardiness"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sched = (engines.sfq)(
            &case.sys,
            case.spec.m,
            engines.sfq_order,
            &mut case.cost_model(),
        );
        let stats = tardiness_stats(&case.sys, &sched);
        if stats.max > Rat::ZERO {
            return Err(format!(
                "SFQ tardiness {:?} > 0 ({} deadline misses)",
                stats.max, stats.misses
            ));
        }
        Ok(())
    }
}

/// Theorem 3: PD²-DVQ tardiness is at most one quantum.
#[derive(Debug)]
struct DvqTardinessBound;

impl Invariant for DvqTardinessBound {
    fn name(&self) -> &'static str {
        "dvq-tardiness-bound"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sched = (engines.dvq)(
            &case.sys,
            case.spec.m,
            engines.keyed_order,
            &mut case.cost_model(),
        );
        let stats = tardiness_stats(&case.sys, &sched);
        if stats.max > Rat::ONE {
            return Err(format!(
                "DVQ tardiness {:?} > 1 (Theorem 3 bound, {} misses)",
                stats.max, stats.misses
            ));
        }
        Ok(())
    }
}

/// Theorem 2: PD^B tardiness under SFQ is at most one quantum.
#[derive(Debug)]
struct PdbTardinessBound;

impl Invariant for PdbTardinessBound {
    fn name(&self) -> &'static str {
        "pdb-tardiness-bound"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sched = (engines.pdb)(&case.sys, case.spec.m, &mut case.cost_model());
        let stats = tardiness_stats(&case.sys, &sched);
        if stats.max > Rat::ONE {
            return Err(format!(
                "PD^B tardiness {:?} > 1 (Theorem 2 bound, {} misses)",
                stats.max, stats.misses
            ));
        }
        Ok(())
    }
}

/// `true` iff the case is a synchronous periodic system: indices `1..n`
/// with no IS offsets and no early releasing (partial trailing jobs
/// allowed) — exactly the class [`pfair_sim::simulate_bf`] is defined on.
fn is_sync_periodic(case: &Case) -> bool {
    case.spec.tasks.iter().all(|t| {
        t.subtasks
            .iter()
            .enumerate()
            .all(|(k, s)| s.index == k as u64 + 1 && s.theta == 0 && s.early == 0)
    })
}

/// Slot-engine discipline shared by the BF and flow checkers: every
/// processor index below `m`, no processor double-booked in a slot, and no
/// task on two processors in one slot. Capacity `≤ m` per slot follows.
fn check_slot_discipline(sys: &TaskSystem, sched: &Schedule, m: u32) -> Result<(), String> {
    if let Some(pl) = sched.placements().iter().find(|pl| pl.proc >= m) {
        return Err(format!(
            "{} on processor {} ≥ m = {m}",
            describe(sys, pl.st),
            pl.proc
        ));
    }
    let mut by_proc: Vec<(i64, u32)> = Vec::with_capacity(sched.placements().len());
    let mut by_task: Vec<(i64, u32)> = Vec::with_capacity(sched.placements().len());
    for pl in sched.placements() {
        assert!(
            pl.start.den() == 1,
            "expected integral slot start, got {:?}",
            pl.start
        );
        by_proc.push((pl.start.num_i64(), pl.proc));
        by_task.push((pl.start.num_i64(), sys.subtask(pl.st).id.task.0));
    }
    by_proc.sort_unstable();
    if let Some(w) = by_proc.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!(
            "slot {}: processor {} double-booked",
            w[0].0, w[0].1
        ));
    }
    by_task.sort_unstable();
    if let Some(w) = by_task.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!(
            "slot {}: task T{} runs on two processors at once",
            w[0].0, w[0].1
        ));
    }
    Ok(())
}

/// Boundary-Fair conservation: the BF schedule must match an independent
/// re-derivation of the family's allocation rules, interval by interval —
/// per boundary interval `[b, b′)` every task receives exactly its
/// mandatory units `⌊fluid(b′) − alloc(b)⌋` plus at most one optional
/// unit, optional units granted from spare capacity in urgency order
/// (largest fractional remainder, earliest next own boundary, task id) —
/// together with the slot discipline, intra-task precedence, and
/// containment of every unit inside its job window (which is what makes
/// BF meet every *job* deadline despite ignoring Pfair subtask windows).
#[derive(Debug)]
struct BfBoundaryConservation;

impl Invariant for BfBoundaryConservation {
    fn name(&self) -> &'static str {
        "bf-boundary-conservation"
    }

    fn applies(&self, case: &Case) -> bool {
        is_sync_periodic(case)
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let sched = (engines.bf)(sys, m, &mut case.cost_model());
        if sched.placements().len() != sys.num_subtasks() {
            return Err(format!(
                "BF placed {} of {} subtasks",
                sched.placements().len(),
                sys.num_subtasks()
            ));
        }
        check_slot_discipline(sys, &sched, m)?;
        let slots = slot_of(&sched);
        let mut slot = vec![0i64; sys.num_subtasks()];
        for &(st, t) in &slots {
            slot[st.idx()] = t;
        }

        // Intra-task precedence and job-window containment.
        for task in sys.tasks() {
            let (e, p) = (task.weight.e(), task.weight.p());
            let mut prev: Option<i64> = None;
            for (j, st) in sys.task_subtask_refs(task.id).enumerate() {
                let t = slot[st.idx()];
                if let Some(pt) = prev {
                    if pt >= t {
                        return Err(format!(
                            "{} at slot {t} does not follow its predecessor (slot {pt})",
                            describe(sys, st)
                        ));
                    }
                }
                prev = Some(t);
                let job = i64::try_from(j).expect("subtask count fits i64") / e;
                if t < job * p || t + 1 > (job + 1) * p {
                    return Err(format!(
                        "{} at slot {t} outside its job window [{}, {})",
                        describe(sys, st),
                        job * p,
                        (job + 1) * p
                    ));
                }
            }
        }

        // Independent re-derivation of the allocation table: boundaries,
        // then per-interval mandatory + optional units in exact rationals.
        let n_tasks = sys.num_tasks();
        let mut bounds = vec![0i64];
        for task in sys.tasks() {
            let n = sys.task_subtasks(task.id).len() as i64;
            if n == 0 {
                continue;
            }
            let (e, p) = (task.weight.e(), task.weight.p());
            let jobs = (n + e - 1) / e;
            bounds.extend((1..=jobs).map(|k| k * p));
        }
        bounds.sort_unstable();
        bounds.dedup();
        let end = *bounds.last().expect("boundary 0 always present");
        if let Some(&(st, t)) = slots.iter().find(|&&(_, t)| t < 0 || t >= end) {
            return Err(format!(
                "{} at slot {t} outside the boundary horizon [0, {end})",
                describe(sys, st)
            ));
        }

        let mut task_slots: Vec<Vec<i64>> = vec![Vec::new(); n_tasks];
        for &(st, t) in &slots {
            task_slots[sys.subtask(st).id.task.idx()].push(t);
        }
        let mut alloc = vec![0i64; n_tasks];
        for w in bounds.windows(2) {
            let (b, b2) = (w[0], w[1]);
            let len = b2 - b;
            let mut expect = vec![0i64; n_tasks];
            let mut spare = i64::from(m) * len;
            let mut cands: Vec<(Rat, i64, usize)> = Vec::new();
            for (k, task) in sys.tasks().iter().enumerate() {
                let n = sys.task_subtasks(task.id).len() as i64;
                if alloc[k] >= n {
                    continue;
                }
                let fluid = (task.weight.as_rat() * Rat::int(b2)).min(Rat::int(n));
                let pw = fluid - Rat::int(alloc[k]);
                if !pw.is_positive() {
                    continue;
                }
                let mand = pw.floor();
                if mand > len || spare < mand {
                    return Err(format!(
                        "interval [{b}, {b2}): derived mandatory demand for task T{k} \
                         ({mand} units) exceeds the interval — the case is infeasible, \
                         which the campaign filter should have excluded"
                    ));
                }
                expect[k] = mand;
                spare -= mand;
                let frac = pw - Rat::int(mand);
                if frac.is_positive() && mand < len {
                    let next_own = (b / task.weight.p() + 1) * task.weight.p();
                    cands.push((frac, next_own, k));
                }
            }
            cands.sort_by(|x, y| {
                y.0.cmp(&x.0)
                    .then_with(|| x.1.cmp(&y.1))
                    .then_with(|| x.2.cmp(&y.2))
            });
            for &(_, _, k) in cands
                .iter()
                .take(usize::try_from(spare).expect("spare is nonnegative"))
            {
                expect[k] += 1;
            }
            for (k, want) in expect.iter().enumerate() {
                let got = task_slots[k].iter().filter(|&&t| b <= t && t < b2).count();
                let got = i64::try_from(got).expect("unit count fits i64");
                if got != *want {
                    return Err(format!(
                        "interval [{b}, {b2}): task T{k} received {got} units, \
                         the BF allocation rules say {want}"
                    ));
                }
                alloc[k] += want;
            }
        }
        Ok(())
    }
}

/// Flow-solution validity: every placement the flow engine extracts must
/// sit inside its subtask's PF-window (hence zero tardiness), respect the
/// slot discipline (capacity, processor and task exclusivity), and honor
/// intra-task precedence — i.e. the claimed max-flow solution really is a
/// window-valid schedule, independently re-checked against the task model.
#[derive(Debug)]
struct FlowSolutionValidity;

impl Invariant for FlowSolutionValidity {
    fn name(&self) -> &'static str {
        "flow-solution-validity"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let sched = (engines.flow)(sys, m, &mut case.cost_model());
        if sched.placements().len() != sys.num_subtasks() {
            return Err(format!(
                "flow engine placed {} of {} subtasks",
                sched.placements().len(),
                sys.num_subtasks()
            ));
        }
        check_slot_discipline(sys, &sched, m)?;
        let slots = slot_of(&sched);
        let mut slot = vec![0i64; sys.num_subtasks()];
        for &(st, t) in &slots {
            slot[st.idx()] = t;
        }
        for (st, s) in sys.iter_refs() {
            let t = slot[st.idx()];
            if t < s.release || t >= s.deadline {
                return Err(format!(
                    "{} placed at slot {t} outside its PF-window [{}, {})",
                    describe(sys, st),
                    s.release,
                    s.deadline
                ));
            }
            if let Some(p) = s.pred {
                if slot[p.idx()] >= t {
                    return Err(format!(
                        "{} at slot {t} does not follow its predecessor (slot {})",
                        describe(sys, st),
                        slot[p.idx()]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Predictability (Cucu-Grosjean sense) of the cost-independent families:
/// the slot engines — SFQ, BF, flow — commit to `(slot, processor)`
/// assignments without consulting actual execution costs, so replacing
/// the case's costs by the worst case (a full quantum) must leave every
/// assignment unchanged. DVQ is deliberately *not* covered: its
/// event-driven dispatch has genuine scheduling anomalies — shrinking one
/// cost reorders later dispatches (see EXPERIMENTS.md).
#[derive(Debug)]
struct Predictability;

impl Invariant for Predictability {
    fn name(&self) -> &'static str {
        "predictability"
    }

    fn applies(&self, case: &Case) -> bool {
        // With no cost overrides the two runs are literally the same call.
        !case.spec.costs.is_empty()
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let mut runs: Vec<(&str, Schedule, Schedule)> = vec![
            (
                "sfq",
                (engines.sfq)(sys, m, engines.keyed_order, &mut case.cost_model()),
                (engines.sfq)(sys, m, engines.keyed_order, &mut FullQuantum),
            ),
            (
                "flow",
                (engines.flow)(sys, m, &mut case.cost_model()),
                (engines.flow)(sys, m, &mut FullQuantum),
            ),
        ];
        if is_sync_periodic(case) {
            runs.push((
                "bf",
                (engines.bf)(sys, m, &mut case.cost_model()),
                (engines.bf)(sys, m, &mut FullQuantum),
            ));
        }
        for (label, actual, worst) in &runs {
            for (st, _) in sys.iter_refs() {
                let a = actual.placement(st);
                let b = worst.placement(st);
                if a.start != b.start || a.proc != b.proc {
                    return Err(format!(
                        "{label}: {} moves when costs shrink below the worst case — \
                         (start {:?}, proc {}) with actual costs vs (start {:?}, proc {}) at full cost",
                        describe(sys, st),
                        a.start,
                        a.proc,
                        b.start,
                        b.proc
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The maxflow oracle and the SFQ engine must agree on PF-window
/// schedulability. The oracle shares no code with the simulators, so this
/// is the harness's independent referee. Early releases move placements
/// ahead of PF windows by design, so the law applies only to cases
/// without them.
#[derive(Debug)]
struct MaxflowAgreement;

impl Invariant for MaxflowAgreement {
    fn name(&self) -> &'static str {
        "maxflow-agreement"
    }

    fn applies(&self, case: &Case) -> bool {
        case.spec
            .tasks
            .iter()
            .all(|t| t.subtasks.iter().all(|s| s.early == 0))
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let flow = flow_schedulable(&case.sys, case.spec.m, WindowMode::PfWindow);
        let sched = (engines.sfq)(&case.sys, case.spec.m, engines.sfq_order, &mut FullQuantum);
        let contained = check_window_containment(&case.sys, &sched).is_empty();
        if flow.schedulable != contained {
            return Err(format!(
                "maxflow oracle says schedulable={}, SFQ window containment={}",
                flow.schedulable, contained
            ));
        }
        Ok(())
    }
}

/// The keyed-heap and comparator dispatch paths must produce identical
/// schedules (same slot and processor per subtask) under both SFQ and DVQ.
#[derive(Debug)]
struct KeyedComparatorEquality;

impl Invariant for KeyedComparatorEquality {
    fn name(&self) -> &'static str {
        "keyed-vs-comparator"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        if engines.keyed_order.key_dispatch() == KeyDispatch::Comparator {
            return Ok(());
        }
        let sys = &case.sys;
        let m = case.spec.m;
        let comparator = ComparatorOnly(engines.comparator_order);
        for (label, keyed, scanned) in [
            (
                "sfq",
                (engines.sfq)(sys, m, engines.keyed_order, &mut case.cost_model()),
                (engines.sfq)(sys, m, &comparator, &mut case.cost_model()),
            ),
            (
                "dvq",
                (engines.dvq)(sys, m, engines.keyed_order, &mut case.cost_model()),
                (engines.dvq)(sys, m, &comparator, &mut case.cost_model()),
            ),
        ] {
            for (st, _) in sys.iter_refs() {
                let a = keyed.placement(st);
                let b = scanned.placement(st);
                if a.start != b.start || a.proc != b.proc {
                    return Err(format!(
                        "{label}: {} keyed→(start {:?}, proc {}) vs comparator→(start {:?}, proc {})",
                        describe(sys, st),
                        a.start,
                        a.proc,
                        b.start,
                        b.proc
                    ));
                }
            }
        }
        Ok(())
    }
}

/// With every actual cost a full quantum, DVQ degenerates to SFQ: the two
/// engines must place every subtask at the same time.
#[derive(Debug)]
struct SfqDvqFullCostAgreement;

impl Invariant for SfqDvqFullCostAgreement {
    fn name(&self) -> &'static str {
        "sfq-dvq-full-cost"
    }

    fn applies(&self, case: &Case) -> bool {
        case.spec.costs.is_empty()
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let sfq = (engines.sfq)(sys, m, engines.keyed_order, &mut FullQuantum);
        let dvq = (engines.dvq)(sys, m, engines.keyed_order, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            let a = sfq.start(st);
            let b = dvq.start(st);
            if a != b {
                return Err(format!(
                    "{} starts at {a:?} under SFQ but {b:?} under full-cost DVQ",
                    describe(sys, st)
                ));
            }
        }
        Ok(())
    }
}

/// Every PD^B slot decision must be justified by Table 1: the driver may
/// never idle a processor while work is ready, and may never schedule a
/// subtask over a waiting one that strictly dominates it at *every*
/// possible decision index.
#[derive(Debug)]
struct PdbTable1Conformance;

impl Invariant for PdbTable1Conformance {
    fn name(&self) -> &'static str {
        "pdb-table1-conformance"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m as usize;
        let sched = (engines.pdb)(sys, case.spec.m, &mut FullQuantum);
        let slots = slot_of(&sched);
        let mut slot = vec![0i64; sys.num_subtasks()];
        let mut horizon = 0i64;
        for &(st, t) in &slots {
            slot[st.idx()] = t;
            horizon = horizon.max(t);
        }
        for t in 0..=horizon {
            let ready: Vec<pdb::Ready> = sys
                .iter_refs()
                .filter(|(st, s)| {
                    s.eligible <= t
                        && slot[st.idx()] >= t
                        && s.pred.is_none_or(|p| slot[p.idx()] < t)
                })
                .map(|(st, s)| pdb::Ready {
                    st,
                    pred_holds_until_t: s.pred.is_some_and(|p| slot[p.idx()] == t - 1),
                })
                .collect();
            let scheduled: Vec<SubtaskRef> = ready
                .iter()
                .map(|r| r.st)
                .filter(|st| slot[st.idx()] == t)
                .collect();
            if scheduled.len() != ready.len().min(m) {
                return Err(format!(
                    "slot {t}: scheduled {} of {} ready subtasks on {m} processors",
                    scheduled.len(),
                    ready.len()
                ));
            }
            let part = pdb::classify(sys, t, &ready);
            let p = part.p().min(m);
            for r in &ready {
                let y = r.st;
                if slot[y.idx()] == t {
                    continue;
                }
                let cy = part.class_of(y).expect("waiting subtask is classified");
                for &x in &scheduled {
                    let cx = part.class_of(x).expect("scheduled subtask is classified");
                    let dominates_at_all_r = (1..=m).all(|rr| {
                        pdb::table1_leq(sys, y, cy, x, cx, rr, m, p)
                            && !pdb::table1_leq(sys, x, cx, y, cy, rr, m, p)
                    });
                    if dominates_at_all_r {
                        return Err(format!(
                            "slot {t}: scheduled {} ({cx:?}) over waiting {} ({cy:?}) that strictly dominates it at every decision index",
                            describe(sys, x),
                            describe(sys, y)
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The incremental online DVQ scheduler and the offline DVQ engine must
/// produce the same schedule on workloads both can express (synchronous
/// periodic systems of whole jobs).
#[derive(Debug)]
struct OnlineOfflineEquivalence;

impl Invariant for OnlineOfflineEquivalence {
    fn name(&self) -> &'static str {
        "online-offline-equivalence"
    }

    fn applies(&self, case: &Case) -> bool {
        case.is_whole_jobs()
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let offline = (engines.dvq)(
            sys,
            case.spec.m,
            engines.keyed_order,
            &mut case.cost_model(),
        );

        let mut online = OnlineDvq::new(case.spec.m);
        let mut ids = Vec::new();
        for t in &case.spec.tasks {
            ids.push(online.add_task(pfair_taskmodel::Weight::new(t.e, t.p)));
        }
        for (t, &id) in case.spec.tasks.iter().zip(&ids) {
            let jobs = t.subtasks.len() as i64 / t.e;
            for j in 0..jobs {
                online
                    .submit_job(id, j * t.p)
                    .map_err(|e| format!("online submit_job failed: {e:?}"))?;
            }
        }
        let log = online.run_until_idle(&mut |task, index| case.expected_cost(task, index));
        if log.len() != sys.num_subtasks() {
            return Err(format!(
                "online scheduler made {} assignments for {} subtasks",
                log.len(),
                sys.num_subtasks()
            ));
        }
        for a in &log {
            let st = sys
                .find(pfair_taskmodel::SubtaskId {
                    task: a.task,
                    index: a.index,
                })
                .ok_or_else(|| {
                    format!("online scheduled unknown subtask T{}_{}", a.task.0, a.index)
                })?;
            let pl = offline.placement(st);
            if pl.start != a.start || pl.proc != a.proc {
                return Err(format!(
                    "{}: online (start {:?}, proc {}) vs offline DVQ (start {:?}, proc {})",
                    describe(sys, st),
                    a.start,
                    a.proc,
                    pl.start,
                    pl.proc
                ));
            }
        }
        Ok(())
    }
}

/// Streaming observability must agree exactly with post-hoc analysis on
/// the same run: the engine's streaming blocking detector against
/// `detect_blocking`, and the streaming lag/metrics observers against
/// `total_lag` / `max_lag_over_slots` / `tardiness_stats` /
/// `tardiness_histogram` — rational equality throughout, no tolerance.
#[derive(Debug)]
struct StreamingPosthocAgreement;

impl StreamingPosthocAgreement {
    fn check_blocking(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let (sched, records) = (engines.streaming_blocking)(
            sys,
            case.spec.m,
            engines.keyed_order,
            &mut case.cost_model(),
        );
        let posthoc = detect_blocking(sys, &sched, engines.keyed_order);
        if records.len() != posthoc.len() {
            return Err(format!(
                "streaming blocking found {} inversions, post-hoc found {} (victims {:?} vs {:?})",
                records.len(),
                posthoc.len(),
                records.iter().map(|r| r.victim).collect::<Vec<_>>(),
                posthoc.iter().map(|e| e.victim).collect::<Vec<_>>(),
            ));
        }
        for (r, e) in records.iter().zip(&posthoc) {
            let kinds_agree = matches!(
                (r.kind, e.kind),
                (InversionKind::Eligibility, BlockingKind::Eligibility)
                    | (InversionKind::Predecessor, BlockingKind::Predecessor)
            );
            if r.victim != e.victim
                || r.ready_at != e.ready_at
                || r.scheduled_at != e.scheduled_at
                || !kinds_agree
                || r.blockers != e.blockers
            {
                return Err(format!(
                    "blocking record diverges for {}: streaming (ready {:?}, at {:?}, {:?}, blockers {:?}) vs post-hoc (ready {:?}, at {:?}, {:?}, blockers {:?})",
                    describe(sys, e.victim),
                    r.ready_at,
                    r.scheduled_at,
                    r.kind,
                    r.blockers,
                    e.ready_at,
                    e.scheduled_at,
                    e.kind,
                    e.blockers,
                ));
            }
        }
        Ok(())
    }

    fn check_lag_and_metrics(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let sys = &case.sys;
        let m = case.spec.m;
        let h = sys.horizon();
        // Lag involves the division `(t − start) / cost`, whose exact-
        // rational denominators grow multiplicatively in the cost
        // denominators; on the generator's GRID-resolution (720720) cost
        // models the reduced sums exceed i64 but stay far inside the
        // i128-backed `Rat`, so every generated case is compared — no
        // representability carve-out.
        for (label, probe) in [("sfq", ProbeSim::Sfq), ("dvq", ProbeSim::Dvq)] {
            let (sched, series, max) =
                (engines.lag_probe)(sys, m, engines.keyed_order, &mut case.cost_model(), probe);
            for &(t, l) in &series {
                let want = total_lag(sys, &sched, Rat::int(t));
                if l != want {
                    return Err(format!(
                        "{label}: streaming LAG({t}) = {l:?}, post-hoc = {want:?}"
                    ));
                }
            }
            let want_max = max_lag_over_slots(sys, &sched, h);
            if max != want_max {
                return Err(format!(
                    "{label}: streaming max LAG {max:?} vs post-hoc {want_max:?}"
                ));
            }
            // Metrics ride a separate observed run of the same
            // deterministic engine (the probe already carries its own
            // observer).
            let mut metrics = MetricsObserver::new(m);
            let sched = match probe {
                ProbeSim::Sfq => simulate_sfq_observed(
                    sys,
                    m,
                    engines.keyed_order,
                    &mut case.cost_model(),
                    &mut metrics,
                ),
                ProbeSim::Dvq => simulate_dvq_observed(
                    sys,
                    m,
                    engines.keyed_order,
                    &mut case.cost_model(),
                    &mut metrics,
                ),
            };
            let stats = tardiness_stats(sys, &sched);
            let worst_id = stats.worst.map(|st| sys.subtask(st).id);
            if metrics.deadline_misses() != stats.misses as u64
                || metrics.total_tardiness() != stats.total
                || metrics.max_tardiness() != stats.max
                || metrics.worst() != worst_id
            {
                return Err(format!(
                    "{label}: streaming tardiness (misses {}, total {:?}, max {:?}, worst {:?}) vs post-hoc (misses {}, total {:?}, max {:?}, worst {:?})",
                    metrics.deadline_misses(),
                    metrics.total_tardiness(),
                    metrics.max_tardiness(),
                    metrics.worst(),
                    stats.misses,
                    stats.total,
                    stats.max,
                    worst_id,
                ));
            }
            let want_hist = tardiness_histogram(sys, &sched, DEFAULT_BUCKETS);
            let got_hist: Vec<usize> = metrics.histogram().iter().map(|&c| c as usize).collect();
            if got_hist != want_hist {
                return Err(format!(
                    "{label}: streaming histogram {got_hist:?} vs post-hoc {want_hist:?}"
                ));
            }
        }
        Ok(())
    }
}

impl Invariant for StreamingPosthocAgreement {
    fn name(&self) -> &'static str {
        "streaming-posthoc-agreement"
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        self.check_blocking(case, engines)?;
        self.check_lag_and_metrics(case, engines)
    }
}

/// Hyperperiod periodicity: on the synchronous periodic closure of the
/// case's weights, the SFQ schedule repeats with period `H` — subtask
/// `i + k` starts exactly `H` after subtask `i`, at full *and* partial
/// utilization.
#[derive(Debug)]
struct HyperperiodPeriodicity;

impl Invariant for HyperperiodPeriodicity {
    fn name(&self) -> &'static str {
        "hyperperiod-periodicity"
    }

    fn applies(&self, case: &Case) -> bool {
        hyperperiod_of_weights(&case.weights()) <= 24
    }

    fn check(&self, case: &Case, engines: &Engines) -> Result<(), String> {
        let weights = case.weights();
        let h = hyperperiod_of_weights(&weights);
        let periodic = releasegen::generate(&weights, &ReleaseConfig::periodic(2 * h), 0);
        let sched = (engines.sfq)(&periodic, case.spec.m, engines.sfq_order, &mut FullQuantum);
        for (task, &w) in periodic.tasks().iter().zip(&weights) {
            let k = usize::try_from(subtasks_per_hyperperiod(w, h))
                .expect("subtasks per hyperperiod is positive and small");
            let refs: Vec<SubtaskRef> = periodic.task_subtask_refs(task.id).collect();
            for i in 0..refs.len().saturating_sub(k) {
                let a = sched.start(refs[i]);
                let b = sched.start(refs[i + k]);
                if b != a + Rat::int(h) {
                    return Err(format!(
                        "{} starts at {:?} but its successor one hyperperiod (H={h}) later starts at {:?}",
                        describe(&periodic, refs[i]),
                        a,
                        b
                    ));
                }
            }
        }
        Ok(())
    }
}
