//! The engine set a campaign exercises.
//!
//! An [`Engines`] value bundles the priority orders and simulator entry
//! points the invariant bank calls. The default, [`REFERENCE`], is the
//! production PD² stack; mutation tests substitute deliberately broken
//! components to prove the bank detects them.

use pfair_core::priority::PriorityOrder;
use pfair_core::Pd2;
use pfair_numeric::Rat;
use pfair_obs::{BlockingObserver, BlockingRecord, LagObserver};
use pfair_sim::{
    simulate_bf, simulate_dvq, simulate_dvq_observed, simulate_flow, simulate_sfq,
    simulate_sfq_observed, simulate_sfq_pdb, simulate_staggered, CostModel, Schedule,
};
use pfair_taskmodel::TaskSystem;

/// A priority-ordered simulator entry point (SFQ / DVQ / staggered shape).
pub type SimFn = fn(&TaskSystem, u32, &dyn PriorityOrder, &mut dyn CostModel) -> Schedule;

/// A PD^B simulator entry point (the selection procedure is built in).
pub type PdbFn = fn(&TaskSystem, u32, &mut dyn CostModel) -> Schedule;

/// A DVQ run with a streaming blocking detector attached: the schedule
/// plus the inversion records the stream produced, sorted by victim.
pub type ObservedDvqFn =
    fn(&TaskSystem, u32, &dyn PriorityOrder, &mut dyn CostModel) -> (Schedule, Vec<BlockingRecord>);

/// Which simulator shape a lag probe drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeSim {
    /// Synchronized fixed quanta.
    Sfq,
    /// Desynchronized variable quanta.
    Dvq,
}

/// An observed run with a streaming LAG accountant attached: the schedule
/// plus the streamed per-slot series `(t, LAG(τ, t))` through the system
/// horizon and its maximum.
pub type LagProbeFn = fn(
    &TaskSystem,
    u32,
    &dyn PriorityOrder,
    &mut dyn CostModel,
    ProbeSim,
) -> (Schedule, Vec<(i64, Rat)>, Rat);

/// The engines and priority orders one campaign checks against each other.
#[derive(Clone, Copy, Debug)]
pub struct Engines {
    /// Name shown in violation reports (`"reference"` or a mutant name).
    pub name: &'static str,
    /// Order driving the keyed-heap dispatch path.
    pub keyed_order: &'static dyn PriorityOrder,
    /// Order driving the comparator-scan dispatch path (wrapped in
    /// [`pfair_core::priority::ComparatorOnly`] by the invariants).
    pub comparator_order: &'static dyn PriorityOrder,
    /// Order used for SFQ runs whose tardiness the theorems bound.
    pub sfq_order: &'static dyn PriorityOrder,
    /// SFQ simulator.
    pub sfq: SimFn,
    /// DVQ simulator.
    pub dvq: SimFn,
    /// Staggered-quantum simulator.
    pub staggered: SimFn,
    /// SFQ/PD^B simulator.
    pub pdb: PdbFn,
    /// Boundary-Fair simulator (invariants call it only on synchronous
    /// periodic cases — the class BF is defined on).
    pub bf: PdbFn,
    /// Flow-network simulator.
    pub flow: PdbFn,
    /// DVQ simulator with the streaming blocking detector attached.
    pub streaming_blocking: ObservedDvqFn,
    /// Observed run with the streaming LAG accountant attached.
    pub lag_probe: LagProbeFn,
}

/// The production streaming hook: the real observed DVQ driver with a
/// [`BlockingObserver`] listening.
fn dvq_streaming_blocking(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> (Schedule, Vec<BlockingRecord>) {
    let mut obs = BlockingObserver::new(sys, order);
    let sched = simulate_dvq_observed(sys, m, order, cost, &mut obs);
    let (records, _) = obs.into_parts();
    (sched, records)
}

/// The production lag probe: the real observed drivers with a
/// [`LagObserver`] listening, finished through the system horizon.
fn streaming_lag_probe(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    sim: ProbeSim,
) -> (Schedule, Vec<(i64, Rat)>, Rat) {
    let mut lag = LagObserver::new(sys);
    let sched = match sim {
        ProbeSim::Sfq => simulate_sfq_observed(sys, m, order, cost, &mut lag),
        ProbeSim::Dvq => simulate_dvq_observed(sys, m, order, cost, &mut lag),
    };
    lag.finish(sys.horizon());
    let max = lag.max_lag();
    (sched, lag.series().to_vec(), max)
}

/// The production engine set: PD² everywhere, the real simulators.
pub const REFERENCE: Engines = Engines {
    name: "reference",
    keyed_order: &Pd2,
    comparator_order: &Pd2,
    sfq_order: &Pd2,
    sfq: simulate_sfq,
    dvq: simulate_dvq,
    staggered: simulate_staggered,
    pdb: simulate_sfq_pdb,
    bf: simulate_bf,
    flow: simulate_flow,
    streaming_blocking: dvq_streaming_blocking,
    lag_probe: streaming_lag_probe,
};
