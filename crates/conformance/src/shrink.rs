//! Greedy delta-debugging counterexample shrinking.
//!
//! Given a failing case and the name of the invariant it violated, the
//! shrinker repeatedly applies reduction passes — drop whole tasks, erase
//! IS offsets / early releases / GIS index gaps, truncate subtask chains,
//! simplify actual costs to full quanta, reduce the processor count — and
//! keeps a candidate only if it still (a) rebuilds through the validating
//! builder, (b) is feasible, and (c) fails the *same* invariant. Passes
//! run to a fixpoint, so the result is 1-minimal with respect to the move
//! set: no single remaining reduction preserves the failure.

use crate::case::{Case, CaseSpec};
use crate::engines::Engines;
use crate::invariant::check_one;

/// Does `spec` still fail the invariant named `invariant`?
fn fails_same(spec: &CaseSpec, invariant: &str, engines: &Engines) -> bool {
    if spec.tasks.is_empty() {
        return false;
    }
    let Ok(case) = Case::build(spec.clone()) else {
        return false;
    };
    if !case.is_feasible() {
        return false;
    }
    check_one(invariant, &case, engines).is_err()
}

/// Drops cost overrides that no longer name an existing subtask.
fn normalize_costs(spec: &mut CaseSpec) {
    let tasks = &spec.tasks;
    spec.costs.retain(|c| {
        tasks
            .get(c.task as usize)
            .is_some_and(|t| t.subtasks.iter().any(|s| s.index == c.index))
    });
}

/// Shrinks `spec` while it keeps failing `invariant` under `engines`.
///
/// # Panics
/// If `invariant` is not a known invariant name.
#[must_use]
pub fn shrink(spec: &CaseSpec, invariant: &str, engines: &Engines) -> CaseSpec {
    let mut best = spec.clone();
    if !fails_same(&best, invariant, engines) {
        // Not deterministically reproducible from the spec alone (should
        // not happen: generation and checking are both pure). Leave the
        // original untouched rather than "shrink" toward a passing case.
        return best;
    }

    for _ in 0..8 {
        let mut changed = false;

        // Pass 1: drop task chunks, ddmin-style — windows of half the
        // tasks down to single tasks. Violations on high-utilization
        // cases often need the contention, so every window drop is also
        // tried with the processor count reduced in the same step:
        // removing ~one processor's worth of work *and* a processor
        // preserves the pressure that a lone greedy drop destroys.
        let mut window = best.tasks.len().div_ceil(2);
        while window >= 1 {
            let mut any = false;
            let mut lo = 0usize;
            while lo < best.tasks.len() && best.tasks.len() > 1 {
                let hi = (lo + window).min(best.tasks.len());
                if hi - lo == best.tasks.len() {
                    lo += 1;
                    continue;
                }
                let mut adopted = false;
                // (a) drop the window, optionally shedding processors too.
                for dm in 0..best.m.min(3) {
                    let mut cand = best.clone();
                    cand.tasks.drain(lo..hi);
                    cand.costs
                        .retain(|c| !(lo..hi).contains(&(c.task as usize)));
                    for c in &mut cand.costs {
                        if c.task as usize >= hi {
                            c.task -= (hi - lo) as u32;
                        }
                    }
                    cand.m -= dm;
                    if fails_same(&cand, invariant, engines) {
                        best = cand;
                        adopted = true;
                        any = true;
                        changed = true;
                        break;
                    }
                }
                // (b) keep *only* the window (the ddmin complement move),
                // at every smaller processor count.
                if !adopted && hi - lo < best.tasks.len() {
                    'keep: for m in 1..=best.m {
                        let mut cand = best.clone();
                        cand.tasks = cand.tasks[lo..hi].to_vec();
                        cand.costs.retain(|c| (lo..hi).contains(&(c.task as usize)));
                        for c in &mut cand.costs {
                            c.task -= lo as u32;
                        }
                        cand.m = m;
                        if fails_same(&cand, invariant, engines) {
                            best = cand;
                            adopted = true;
                            any = true;
                            changed = true;
                            break 'keep;
                        }
                    }
                }
                if !adopted {
                    lo += 1;
                }
            }
            if !any {
                window /= 2;
            } else {
                window = window.min(best.tasks.len()).max(1);
            }
            if window > best.tasks.len() {
                window = best.tasks.len().div_ceil(2);
            }
        }

        // Pass 1b: exhaustive small-subset search. Order-inversion
        // witnesses (e.g. keyed-vs-comparator processor divergences) can
        // hinge on one specific *pair* of tasks that is not contiguous in
        // the spec, which window moves never isolate. With few enough
        // tasks, trying every 1-, 2- and 3-element subset directly is
        // cheap and escapes that trap.
        if best.tasks.len() > 3 && best.tasks.len() <= 16 {
            'subset: for size in 1..=3usize {
                let n = best.tasks.len();
                let mut pick = vec![0usize; size];
                let mut combos: Vec<Vec<usize>> = Vec::new();
                fn fill(
                    combos: &mut Vec<Vec<usize>>,
                    pick: &mut Vec<usize>,
                    depth: usize,
                    lo: usize,
                    n: usize,
                ) {
                    if depth == pick.len() {
                        combos.push(pick.clone());
                        return;
                    }
                    for i in lo..n {
                        pick[depth] = i;
                        fill(combos, pick, depth + 1, i + 1, n);
                    }
                }
                fill(&mut combos, &mut pick, 0, 0, n);
                for combo in &combos {
                    for m in 1..=best.m {
                        let mut cand = best.clone();
                        cand.tasks = combo.iter().map(|&i| best.tasks[i].clone()).collect();
                        cand.costs.retain_mut(|c| {
                            combo
                                .iter()
                                .position(|&i| i == c.task as usize)
                                .is_some_and(|new| {
                                    c.task = new as u32;
                                    true
                                })
                        });
                        cand.m = m;
                        if fails_same(&cand, invariant, engines) {
                            best = cand;
                            changed = true;
                            break 'subset;
                        }
                    }
                }
            }
        }

        // Pass 2: canonicalize each task — erase IS offsets, erase early
        // releases, close GIS index gaps (reindex 1..=len).
        for i in 0..best.tasks.len() {
            for kind in 0..3u8 {
                let mut cand = best.clone();
                match kind {
                    0 => cand.tasks[i].subtasks.iter_mut().for_each(|s| s.theta = 0),
                    1 => cand.tasks[i].subtasks.iter_mut().for_each(|s| s.early = 0),
                    _ => {
                        let remap: Vec<(u64, u64)> = cand.tasks[i]
                            .subtasks
                            .iter()
                            .enumerate()
                            .map(|(k, s)| (s.index, k as u64 + 1))
                            .collect();
                        for (k, s) in cand.tasks[i].subtasks.iter_mut().enumerate() {
                            s.index = k as u64 + 1;
                        }
                        for c in cand.costs.iter_mut().filter(|c| c.task as usize == i) {
                            if let Some(&(_, new)) = remap.iter().find(|&&(old, _)| old == c.index)
                            {
                                c.index = new;
                            }
                        }
                    }
                }
                if cand != best && fails_same(&cand, invariant, engines) {
                    best = cand;
                    changed = true;
                }
            }
        }

        // Pass 2b: global time-prefix truncation — drop every subtask
        // released at or after a cutoff, shrinking the cutoff while the
        // failure persists. Schedule divergences at slot `t` rarely need
        // anything released after `t`, and cutting all tasks at once
        // preserves the contention that per-task moves destroy.
        loop {
            let releases: Vec<i64> = best
                .tasks
                .iter()
                .filter_map(|t| {
                    let w = pfair_taskmodel::Weight::new(t.e, t.p);
                    t.subtasks
                        .iter()
                        .map(|s| s.theta + pfair_taskmodel::window::release(w, s.index))
                        .max()
                })
                .collect();
            let Some(&last) = releases.iter().max() else {
                break;
            };
            let mut adopted = false;
            for cutoff in [last / 2, last] {
                if cutoff <= 0 {
                    continue;
                }
                let mut cand = best.clone();
                for t in &mut cand.tasks {
                    let w = pfair_taskmodel::Weight::new(t.e, t.p);
                    t.subtasks.retain(|s| {
                        s.theta + pfair_taskmodel::window::release(w, s.index) < cutoff
                    });
                }
                // Remap cost-override task indices around emptied tasks.
                let dense: Vec<Option<u32>> = {
                    let mut next = 0u32;
                    cand.tasks
                        .iter()
                        .map(|t| {
                            if t.subtasks.is_empty() {
                                None
                            } else {
                                next += 1;
                                Some(next - 1)
                            }
                        })
                        .collect()
                };
                cand.costs.retain_mut(|c| {
                    dense
                        .get(c.task as usize)
                        .copied()
                        .flatten()
                        .is_some_and(|new| {
                            c.task = new;
                            true
                        })
                });
                cand.tasks.retain(|t| !t.subtasks.is_empty());
                normalize_costs(&mut cand);
                if cand != best && fails_same(&cand, invariant, engines) {
                    best = cand;
                    adopted = true;
                    changed = true;
                    break;
                }
            }
            if !adopted {
                break;
            }
        }

        // Pass 3: truncate subtask chains (halve, then decrement).
        for i in 0..best.tasks.len() {
            loop {
                let len = best.tasks[i].subtasks.len();
                if len <= 1 {
                    break;
                }
                let mut adopted = false;
                for target in [len / 2, len - 1] {
                    if target == 0 || target >= len {
                        continue;
                    }
                    let mut cand = best.clone();
                    cand.tasks[i].subtasks.truncate(target);
                    normalize_costs(&mut cand);
                    if fails_same(&cand, invariant, engines) {
                        best = cand;
                        adopted = true;
                        changed = true;
                        break;
                    }
                }
                if !adopted {
                    break;
                }
            }
        }

        // Pass 3b: drop individual subtasks anywhere in a chain (the GIS
        // model permits index gaps, so any subset of a chain is legal).
        for i in 0..best.tasks.len() {
            loop {
                if best.tasks[i].subtasks.len() <= 1 {
                    break;
                }
                let mut adopted = false;
                for k in (0..best.tasks[i].subtasks.len()).rev() {
                    let mut cand = best.clone();
                    cand.tasks[i].subtasks.remove(k);
                    normalize_costs(&mut cand);
                    if fails_same(&cand, invariant, engines) {
                        best = cand;
                        adopted = true;
                        changed = true;
                        break;
                    }
                }
                if !adopted {
                    break;
                }
            }
        }

        // Pass 4: simplify yields to full quanta (all overrides at once,
        // else one by one).
        if !best.costs.is_empty() {
            let mut cand = best.clone();
            cand.costs.clear();
            if fails_same(&cand, invariant, engines) {
                best = cand;
                changed = true;
            } else {
                for i in (0..best.costs.len()).rev() {
                    let mut cand = best.clone();
                    cand.costs.remove(i);
                    if fails_same(&cand, invariant, engines) {
                        best = cand;
                        changed = true;
                    }
                }
            }
        }

        // Pass 5: reduce the processor count (smallest first).
        for m in 1..best.m {
            let mut cand = best.clone();
            cand.m = m;
            if fails_same(&cand, invariant, engines) {
                best = cand;
                changed = true;
                break;
            }
        }

        if !changed {
            break;
        }
    }
    best
}
