//! Replay conformance for real multi-threaded runtime executions.
//!
//! `pfair-runtime` runs quanta on actual worker threads, so its schedules
//! cannot be re-derived by a deterministic engine call the way the rest of
//! the bank's can — in free-running mode the schedule genuinely depends on
//! thread timing. Correctness is therefore established **per run**: the
//! runtime records its event stream through `pfair-obs`, this module
//! replays the stream through [`pfair_sim::replay_events`] into a
//! [`Schedule`](pfair_sim::Schedule), and the [`runtime_bank`] checks the DVQ laws on the
//! replayed artifact — completeness (no quantum lost to a dropped wakeup),
//! allocation conservation (every quantum billed exactly its jittered
//! cost), structural validity (no torn processor assignment), the
//! Theorem 3 tardiness bound, and — in deterministic mode — bit-equality
//! against the single-threaded [`OnlineDvq`] reference.
//!
//! The bank is ordered: the planted concurrency mutants in
//! [`crate::mutants::runtime_mutants`] are each caught by a *different*
//! invariant, and the mutation tests assert which one fires first.

use pfair_analysis::{check_structural, tardiness_stats};
use pfair_numeric::Rat;
use pfair_obs::{RecordingObserver, SchedEvent};
use pfair_online::OnlineDvq;
use pfair_runtime::{execute, quantum_cost, Mode, RuntimeConfig, RuntimeRun};
use pfair_sim::replay_events;
use pfair_taskmodel::{TaskId, TaskSystem, TaskSystemBuilder, Weight};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::invariant::Failure;

/// A generated runtime workload: the task system plus its submission plan.
#[derive(Clone, Debug)]
pub struct RuntimeCase {
    /// The released task system (whole jobs, zero IS offsets).
    pub sys: TaskSystem,
    /// `(task, release)` pairs in submission order.
    pub jobs: Vec<(TaskId, i64)>,
}

/// Deterministically generates a runtime workload for `seed` on `m`
/// processors: 1–5 tasks of total utilization at most `3m/4` (headroom so
/// the Theorem 3 bound is expected to hold even when late physical
/// completion reports cost free-running capacity), each releasing 1–3
/// whole jobs, periodic with occasional sporadic gaps.
#[must_use]
pub fn generate_runtime_case(seed: u64, m: u32) -> RuntimeCase {
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(m) << 48));
    let cap = Rat::new(3 * i64::from(m), 4);
    let mut util = Rat::ZERO;
    let mut weights: Vec<Weight> = Vec::new();
    let want = rng.gen_range(2usize..=5);
    let mut rejected = 0u32;
    while weights.len() < want && rejected < 8 {
        let p = rng.gen_range(2i64..=8);
        let e = rng.gen_range(1i64..=(p - 1).min(4));
        let w = Weight::new(e, p);
        if util + w.as_rat() > cap {
            rejected += 1;
            continue;
        }
        util += w.as_rat();
        weights.push(w);
    }
    if weights.is_empty() {
        // Even a 1/8 task fits any cap ≥ 3/4: guarantee a non-trivial case.
        weights.push(Weight::new(1, 8));
    }

    let mut b = TaskSystemBuilder::new();
    let ids: Vec<TaskId> = weights.iter().map(|&w| b.add_task(w)).collect();
    let mut jobs = Vec::new();
    for (&task, &w) in ids.iter().zip(&weights) {
        let n_jobs = rng.gen_range(1u64..=3);
        let e = u64::try_from(w.e()).expect("execution requirement is positive");
        let mut at = 0i64;
        for j in 0..n_jobs {
            jobs.push((task, at));
            let theta = at - i64::try_from(j).expect("job count fits i64") * w.p();
            for index in j * e + 1..=(j + 1) * e {
                b.push(task, index, theta, None)
                    .expect("generator emits valid sporadic releases");
            }
            let gap = if rng.gen_bool(0.3) {
                rng.gen_range(0i64..=3)
            } else {
                0
            };
            at += w.p() + gap;
        }
    }
    jobs.sort_by_key(|&(t, at)| (at, t));
    RuntimeCase {
        sys: b.build(),
        jobs,
    }
}

/// One law every runtime execution must satisfy, checked against the
/// recorded artifacts of a single run.
pub struct RuntimeInvariant {
    /// Stable name used in reports and by the mutation bank-order tests.
    pub name: &'static str,
    check: fn(&RuntimeCase, &RuntimeConfig, &RuntimeRun) -> Result<(), String>,
}

/// The replay bank, in checking order. The order is load-bearing for the
/// mutation tests: a lost wakeup truncates the stream (completeness), a
/// torn dispatch batch double-books a processor (structural validity), a
/// stale key read reorders dispatch without breaking replay at all
/// (caught only by determinism-equality).
#[must_use]
pub fn runtime_bank() -> &'static [RuntimeInvariant] {
    static BANK: [RuntimeInvariant; 5] = [
        RuntimeInvariant {
            name: "replay-completeness",
            check: check_completeness,
        },
        RuntimeInvariant {
            name: "replay-conservation",
            check: check_conservation,
        },
        RuntimeInvariant {
            name: "replay-structural",
            check: check_structural_validity,
        },
        RuntimeInvariant {
            name: "replay-tardiness",
            check: check_tardiness_bound,
        },
        RuntimeInvariant {
            name: "determinism-equality",
            check: check_determinism_equality,
        },
    ];
    &BANK
}

/// Runs every invariant in [`runtime_bank`] order against one recorded
/// run.
///
/// # Errors
/// The first violated invariant, as a [`Failure`].
pub fn check_runtime_run(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), Failure> {
    for inv in runtime_bank() {
        (inv.check)(case, cfg, run).map_err(|detail| Failure {
            invariant: inv.name,
            detail,
        })?;
    }
    Ok(())
}

/// Executes `case` under `cfg` and checks the recorded run against the
/// full bank — the one-call entry the stress sweep and the mutation tests
/// share.
///
/// # Errors
/// The first violated invariant, as a [`Failure`].
pub fn run_and_check(case: &RuntimeCase, cfg: &RuntimeConfig) -> Result<(), Failure> {
    let run = execute(&case.sys, &case.jobs, cfg);
    check_runtime_run(case, cfg, &run)
}

/// Completeness: the run finished (no watchdog kill) and the event stream
/// schedules every released subtask exactly once on a valid processor.
fn check_completeness(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), String> {
    if run.stalled {
        return Err(format!(
            "the watchdog killed the run after {:?} without combiner progress: \
             a quantum completion was dropped ({} of {} subtasks dispatched)",
            cfg.stall_timeout,
            run.log.len(),
            case.sys.num_subtasks()
        ));
    }
    if run.log.len() != case.sys.num_subtasks() {
        return Err(format!(
            "dispatch log covers {} of {} subtasks",
            run.log.len(),
            case.sys.num_subtasks()
        ));
    }
    replay_events(&case.sys, cfg.m, &run.events).map(|_| ())
}

/// Eq. (1) conservation on the recorded stream: every quantum bills
/// exactly its seeded jittered cost, holds its processor for exactly that
/// long, and completes at exactly `start + cost`.
fn check_conservation(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), String> {
    let mut started: Vec<Option<(Rat, Rat)>> = vec![None; case.sys.num_subtasks()];
    for ev in &run.events {
        match ev {
            SchedEvent::QuantumStart {
                id,
                start,
                cost,
                holds_until,
                ..
            } => {
                let want = quantum_cost(cfg.seed, cfg.regime, id.task, id.index);
                if *cost != want {
                    return Err(format!(
                        "T{}_{} billed cost {cost}, the seeded jitter draw says {want}",
                        id.task.0, id.index
                    ));
                }
                if *holds_until != *start + *cost {
                    return Err(format!(
                        "T{}_{} holds its processor until {holds_until}, \
                         start + cost = {}",
                        id.task.0,
                        id.index,
                        *start + *cost
                    ));
                }
                if let Some(st) = case.sys.find(*id) {
                    started[st.idx()] = Some((*start, *cost));
                }
            }
            SchedEvent::QuantumEnd { id, completion, .. } => {
                let Some(st) = case.sys.find(*id) else {
                    continue;
                };
                let Some((start, cost)) = started[st.idx()] else {
                    return Err(format!(
                        "T{}_{} completed without a recorded start",
                        id.task.0, id.index
                    ));
                };
                if *completion != start + cost {
                    return Err(format!(
                        "T{}_{} completed at {completion}, its quantum ran \
                         [{start}, {}): work was truncated or padded",
                        id.task.0,
                        id.index,
                        start + cost
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Structural validity of the replayed schedule: per-processor
/// exclusivity (a torn dispatch batch double-books a processor),
/// eligibility, and predecessor completion.
fn check_structural_validity(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), String> {
    let sched = replay_events(&case.sys, cfg.m, &run.events)?;
    if let Some(err) = check_structural(&case.sys, &sched).into_iter().next() {
        return Err(format!("replayed schedule invalid: {err}"));
    }
    Ok(())
}

/// Theorem 3 on the replayed schedule: PD²-DVQ tardiness at most one
/// quantum.
fn check_tardiness_bound(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), String> {
    let sched = replay_events(&case.sys, cfg.m, &run.events)?;
    let stats = tardiness_stats(&case.sys, &sched);
    if stats.max > Rat::ONE {
        return Err(format!(
            "replayed tardiness {:?} > 1 (Theorem 3 bound, {} misses)",
            stats.max, stats.misses
        ));
    }
    Ok(())
}

/// Deterministic mode only: the run's dispatch log *and* event stream
/// must be bit-identical to the single-threaded [`OnlineDvq`] driven with
/// the same submissions and the same seeded cost source.
fn check_determinism_equality(
    case: &RuntimeCase,
    cfg: &RuntimeConfig,
    run: &RuntimeRun,
) -> Result<(), String> {
    if cfg.mode != Mode::Deterministic {
        return Ok(());
    }
    let mut obs = RecordingObserver::new();
    let mut reference = OnlineDvq::new(cfg.m);
    for t in case.sys.tasks() {
        reference.add_task(t.weight);
    }
    for &(task, at) in &case.jobs {
        reference
            .submit_job_observed(task, at, &mut obs)
            .map_err(|e| format!("reference rejected the submission plan: {e:?}"))?;
    }
    let want_log = reference.run_until_idle_observed(
        &mut |task, index| quantum_cost(cfg.seed, cfg.regime, task, index),
        &mut obs,
    );
    if run.log != want_log {
        let diverge = run
            .log
            .iter()
            .zip(&want_log)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| run.log.len().min(want_log.len()));
        return Err(format!(
            "deterministic-mode log diverges from OnlineDvq at assignment {diverge}: \
             runtime {:?} vs reference {:?}",
            run.log.get(diverge),
            want_log.get(diverge)
        ));
    }
    let want_events = obs.into_events();
    if run.events != want_events {
        let diverge = run
            .events
            .iter()
            .zip(&want_events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| run.events.len().min(want_events.len()));
        return Err(format!(
            "deterministic-mode event stream diverges from OnlineDvq at event {diverge}: \
             runtime {:?} vs reference {:?}",
            run.events.get(diverge),
            want_events.get(diverge)
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_runtime::FaultPlan;

    #[test]
    fn generated_cases_are_feasible_and_replayable() {
        for seed in 0..32 {
            for m in [1, 2, 4] {
                let case = generate_runtime_case(seed, m);
                assert!(!case.jobs.is_empty(), "seed {seed} generated no jobs");
                assert!(
                    case.sys.utilization() <= Rat::new(3 * i64::from(m), 4),
                    "seed {seed} exceeds the utilization cap"
                );
                assert!(case.sys.num_subtasks() > 0);
            }
        }
    }

    #[test]
    fn clean_runs_pass_the_full_bank_in_both_modes() {
        for seed in 0..6 {
            let m = 2;
            let case = generate_runtime_case(seed, m);
            for mode in [Mode::Deterministic, Mode::FreeRunning] {
                let mut cfg = RuntimeConfig::new(m);
                cfg.seed = seed;
                cfg.mode = mode;
                cfg.spin = 2_000;
                run_and_check(&case, &cfg).unwrap_or_else(|f| {
                    panic!("seed {seed} {mode:?}: {} fired: {}", f.invariant, f.detail)
                });
            }
        }
    }

    #[test]
    fn the_bank_rejects_a_truncated_stream() {
        let case = generate_runtime_case(3, 2);
        let mut cfg = RuntimeConfig::new(2);
        cfg.seed = 3;
        cfg.mode = Mode::Deterministic;
        let mut run = execute(&case.sys, &case.jobs, &cfg);
        run.events
            .retain(|ev| !matches!(ev, SchedEvent::QuantumStart { id, .. } if id.index == 1));
        run.log.clear();
        let f = check_runtime_run(&case, &cfg, &run).expect_err("must fire");
        assert_eq!(f.invariant, "replay-completeness");
    }

    #[test]
    fn fault_plans_are_reachable_through_the_config() {
        // Smoke: the fault knob plumbs through execute() — full catch
        // tests (which invariant fires on which mutant) live in the
        // workspace-level stress suite.
        let case = generate_runtime_case(1, 2);
        let mut cfg = RuntimeConfig::new(2);
        cfg.fault = FaultPlan::TornDispatchBatch;
        let run = execute(&case.sys, &case.jobs, &cfg);
        assert!(!run.stalled, "torn publication must not deadlock the run");
    }
}
