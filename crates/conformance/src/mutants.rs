//! Planted-bug engines ("mutants") for validating the harness itself.
//!
//! A fuzzing harness that never fires is indistinguishable from one that
//! cannot fire. Each mutant here swaps exactly one deliberately broken
//! component into the reference engine set — an inverted tie-break, a
//! dropped rule stage, a driver that ignores a precondition — and the
//! mutation test suite asserts that a seeded campaign catches every one
//! and shrinks its counterexample to a handful of tasks on ≤ 2
//! processors.

use core::cmp::Ordering;

use pfair_core::pdb;
use pfair_core::priority::PriorityOrder;
use pfair_core::{Pd2, Pd2NoGroupDeadline};
use pfair_maxflow::{EdgeId, FlowNetwork};
use pfair_numeric::{Rat, Time};
use pfair_obs::{BlockingObserver, BlockingRecord};
use pfair_sim::cost::checked_cost;
use pfair_sim::{
    simulate_dvq, simulate_dvq_observed, simulate_sfq, CostModel, Placement, QuantumModel, Schedule,
};
use pfair_taskmodel::{SubtaskRef, TaskId, TaskSystem};

use crate::engines::{Engines, ProbeSim, REFERENCE};

/// One deliberately broken engine set.
#[derive(Clone, Copy, Debug)]
pub struct Mutant {
    /// Mutant name (doubles as [`Engines::name`]).
    pub name: &'static str,
    /// What was broken, in one sentence.
    pub description: &'static str,
    /// The reference engines with the broken component swapped in.
    pub engines: Engines,
}

/// The full mutant roster.
#[must_use]
pub fn mutants() -> Vec<Mutant> {
    vec![
        Mutant {
            name: "inverted-b-bit",
            description: "PD² with the b-bit tie-break inverted (b = 0 wins instead of b = 1)",
            engines: Engines {
                name: "inverted-b-bit",
                comparator_order: &InvertedBBit,
                ..REFERENCE
            },
        },
        Mutant {
            name: "no-group-deadline",
            description: "PD² missing the group-deadline tie-break stage",
            engines: Engines {
                name: "no-group-deadline",
                comparator_order: &Pd2NoGroupDeadline,
                ..REFERENCE
            },
        },
        Mutant {
            name: "no-id-tie-break",
            description: "PD² without the deterministic final tie-break (residual ties left to container order)",
            engines: Engines {
                name: "no-id-tie-break",
                comparator_order: &NoIdTieBreak,
                ..REFERENCE
            },
        },
        Mutant {
            name: "latest-deadline-first",
            description: "priority order inverted outright: latest deadline first",
            engines: Engines {
                name: "latest-deadline-first",
                sfq_order: &LatestDeadlineFirst,
                ..REFERENCE
            },
        },
        Mutant {
            name: "pdb-eb-before-db",
            description: "PD^B selection that prefers EB over DB in the first M − p decisions",
            engines: Engines {
                name: "pdb-eb-before-db",
                pdb: simulate_pdb_eb_first,
                ..REFERENCE
            },
        },
        Mutant {
            name: "dvq-eager-successor",
            description: "DVQ that activates successors at predecessor start, ignoring completion",
            engines: Engines {
                name: "dvq-eager-successor",
                dvq: simulate_dvq_eager,
                ..REFERENCE
            },
        },
        Mutant {
            name: "bf-optional-by-id",
            description: "Boundary-Fair that grants optional units in task-id order instead of largest-remainder urgency",
            engines: Engines {
                name: "bf-optional-by-id",
                bf: simulate_bf_optional_by_id,
                ..REFERENCE
            },
        },
        Mutant {
            name: "bf-mandatory-only",
            description: "Boundary-Fair that never grants optional units (mandatory floor only)",
            engines: Engines {
                name: "bf-mandatory-only",
                bf: simulate_bf_mandatory_only,
                ..REFERENCE
            },
        },
        Mutant {
            name: "flow-overfull-slot",
            description: "flow engine whose slot → sink edges carry capacity m + 1 instead of m",
            engines: Engines {
                name: "flow-overfull-slot",
                flow: simulate_flow_overfull,
                ..REFERENCE
            },
        },
        Mutant {
            name: "flow-window-slip",
            description: "flow engine whose subtask windows extend one slot past the deadline (deadline inclusive instead of exclusive)",
            engines: Engines {
                name: "flow-window-slip",
                flow: simulate_flow_window_slip,
                ..REFERENCE
            },
        },
        Mutant {
            name: "dvq-cost-blind",
            description: "DVQ that ignores the cost model and bills every quantum as full",
            engines: Engines {
                name: "dvq-cost-blind",
                dvq: simulate_dvq_cost_blind,
                ..REFERENCE
            },
        },
        Mutant {
            name: "obs-drops-fractional-blocking",
            description: "streaming blocking detector that silently drops inversions dispatched at non-integral times",
            engines: Engines {
                name: "obs-drops-fractional-blocking",
                streaming_blocking: streaming_blocking_integral_only,
                ..REFERENCE
            },
        },
        Mutant {
            name: "rat-wraps-on-overflow",
            description: "lag accountant whose rational arithmetic silently wraps at i64 instead of widening to i128",
            engines: Engines {
                name: "rat-wraps-on-overflow",
                lag_probe: wrapping_lag_probe,
                ..REFERENCE
            },
        },
    ]
}

/// PD² with the b-bit comparison inverted: among equal deadlines, `b = 0`
/// is preferred over `b = 1`.
#[derive(Debug)]
struct InvertedBBit;

impl PriorityOrder for InvertedBBit {
    fn name(&self) -> &'static str {
        "PD2-inverted-b"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        let x = sys.subtask(a);
        let y = sys.subtask(b);
        x.deadline
            .cmp(&y.deadline)
            .then_with(|| x.bbit.cmp(&y.bbit))
            .then_with(|| {
                if x.bbit && y.bbit {
                    y.group_deadline.cmp(&x.group_deadline)
                } else {
                    Ordering::Equal
                }
            })
    }
}

/// PD²'s strict relation with residual ties left unresolved — the paper's
/// "broken arbitrarily" taken literally, so the comparator scan and the
/// keyed heap disagree whenever a tie survives.
#[derive(Debug)]
struct NoIdTieBreak;

impl PriorityOrder for NoIdTieBreak {
    fn name(&self) -> &'static str {
        "PD2-no-id-tie"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        Pd2.cmp_strict(sys, a, b)
    }

    fn cmp(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        self.cmp_strict(sys, a, b)
    }
}

/// The outright wrong order: latest deadline first.
#[derive(Debug)]
struct LatestDeadlineFirst;

impl PriorityOrder for LatestDeadlineFirst {
    fn name(&self) -> &'static str {
        "latest-deadline-first"
    }

    fn cmp_strict(&self, sys: &TaskSystem, a: SubtaskRef, b: SubtaskRef) -> Ordering {
        let x = sys.subtask(a);
        let y = sys.subtask(b);
        y.deadline.cmp(&x.deadline)
    }
}

/// [`pdb::select_slot`] with the planted bug: in the first `M − p`
/// decisions, EB is taken before DB whenever both are nonempty (the
/// reference resolves DB-vs-EB per its linearization; always preferring EB
/// lets a lower-priority eligibility-blocked subtask jump a deadline-based
/// one that Table 1 ranks strictly higher at every decision index).
fn select_slot_eb_first(sys: &TaskSystem, m: usize, part: &pdb::Partition) -> Vec<SubtaskRef> {
    let p = part.p().min(m);
    let mut eb = part.eb.as_slice();
    let mut pb = part.pb.as_slice();
    let mut db = part.db.as_slice();
    let mut picked = Vec::with_capacity(m.min(part.len()));

    while picked.len() < m - p {
        let take_db = match (db.first(), eb.first()) {
            (Some(_), None) => true,
            (None, Some(_)) | (Some(_), Some(_)) => false,
            (None, None) => {
                if let Some((&head, rest)) = pb.split_first() {
                    picked.push(head);
                    pb = rest;
                    continue;
                }
                return picked;
            }
        };
        if take_db {
            let (&head, rest) = db.split_first().expect("checked");
            picked.push(head);
            db = rest;
        } else {
            let (&head, rest) = eb.split_first().expect("checked");
            picked.push(head);
            eb = rest;
        }
    }

    while picked.len() < m {
        let candidates = [db.first(), eb.first(), pb.first()];
        let best = candidates
            .into_iter()
            .flatten()
            .copied()
            .min_by(|&a, &b| Pd2.cmp(sys, a, b));
        let Some(best) = best else { break };
        if db.first() == Some(&best) {
            db = &db[1..];
        } else if eb.first() == Some(&best) {
            eb = &eb[1..];
        } else {
            pb = &pb[1..];
        }
        picked.push(best);
    }
    picked
}

/// SFQ/PD^B driver wired to [`select_slot_eb_first`].
fn simulate_pdb_eb_first(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    assert!(m >= 1, "need at least one processor");
    let total = sys.num_subtasks();
    let mut placements = Vec::with_capacity(total);
    let mut slot_of: Vec<Option<i64>> = vec![None; total];
    let mut cursor: Vec<(u32, u32)> = (0..sys.num_tasks())
        .map(|k| sys.task_span(TaskId(k as u32)))
        .collect();
    let mut placed = 0usize;
    let mut t = 0i64;
    let mut ready: Vec<SubtaskRef> = Vec::with_capacity(sys.num_tasks());

    while placed < total {
        ready.clear();
        let mut next_interesting = i64::MAX;
        for &(cur, hi) in &cursor {
            if cur >= hi {
                continue;
            }
            let st = SubtaskRef(cur);
            let s = sys.subtask(st);
            let pred_done_at = match s.pred {
                None => i64::MIN,
                Some(p) => slot_of[p.idx()].expect("cursor implies pred scheduled") + 1,
            };
            let ready_at = s.eligible.max(pred_done_at);
            if ready_at <= t {
                ready.push(st);
            } else {
                next_interesting = next_interesting.min(ready_at);
            }
        }
        if ready.is_empty() {
            assert!(next_interesting < i64::MAX, "mutant PD^B driver stuck");
            assert!(next_interesting > t, "mutant PD^B driver stuck");
            t = next_interesting;
            continue;
        }
        let readiness: Vec<pdb::Ready> = ready
            .iter()
            .map(|&st| pdb::Ready {
                st,
                pred_holds_until_t: sys
                    .subtask(st)
                    .pred
                    .is_some_and(|p| slot_of[p.idx()] == Some(t - 1)),
            })
            .collect();
        let part = pdb::classify(sys, t, &readiness);
        let picked = select_slot_eb_first(sys, m as usize, &part);
        for (k, &st) in picked.iter().enumerate() {
            let c = checked_cost(cost.cost(sys, st), st);
            placements.push(Placement {
                st,
                proc: k as u32,
                start: Rat::int(t),
                cost: c,
                holds_until: Rat::int(t + 1),
            });
            slot_of[st.idx()] = Some(t);
            cursor[sys.subtask(st).id.task.idx()].0 += 1;
            placed += 1;
        }
        t += 1;
    }
    Schedule::new(sys, QuantumModel::Sfq, m, placements)
}

/// DVQ driver with the planted bug: a successor activates at
/// `max(eligible, predecessor start)` instead of
/// `max(eligible, predecessor completion)` — intra-task precedence is
/// ignored whenever a processor is free early enough.
fn simulate_dvq_eager(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> Schedule {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    enum Event {
        ProcFree(u32),
        Activate(SubtaskRef),
    }

    assert!(m >= 1, "need at least one processor");
    let total = sys.num_subtasks();
    let mut placements = Vec::with_capacity(total);
    let mut events: BinaryHeap<Reverse<(Time, Event)>> = BinaryHeap::new();
    for task in sys.tasks() {
        if let Some(head) = sys.task_subtask_refs(task.id).next() {
            let e = sys.subtask(head).eligible;
            events.push(Reverse((Time::int(e), Event::Activate(head))));
        }
    }
    for k in 0..m {
        events.push(Reverse((Time::ZERO, Event::ProcFree(k))));
    }

    let mut free: Vec<u32> = Vec::with_capacity(m as usize);
    let mut ready: Vec<SubtaskRef> = Vec::new();
    let mut placed = 0usize;

    while placed < total {
        let Some(&Reverse((now, _))) = events.peek() else {
            panic!("mutant DVQ event queue drained with {placed}/{total} placed");
        };
        while let Some(&Reverse((t, ev))) = events.peek() {
            if t != now {
                break;
            }
            events.pop();
            match ev {
                Event::ProcFree(k) => free.push(k),
                Event::Activate(st) => ready.push(st),
            }
        }
        free.sort_unstable();

        while !free.is_empty() && !ready.is_empty() {
            let (best, _) = ready
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| order.cmp(sys, a, b))
                .expect("ready nonempty");
            let st = ready.swap_remove(best);
            let proc = free.remove(0);
            let c = checked_cost(cost.cost(sys, st), st);
            let completion = now + c;
            placements.push(Placement {
                st,
                proc,
                start: now,
                cost: c,
                holds_until: completion,
            });
            placed += 1;
            events.push(Reverse((completion, Event::ProcFree(proc))));
            if let Some(succ) = sys.subtask(st).succ {
                // BUG: gates on the predecessor's *start*, not completion.
                let act = Time::int(sys.subtask(succ).eligible).max(now);
                events.push(Reverse((act, Event::Activate(succ))));
            }
        }
    }
    Schedule::new(sys, QuantumModel::Dvq, m, placements)
}

/// Streaming blocking hook with the planted bug: inversions whose victim
/// was dispatched at a non-integral time are silently dropped — exactly
/// the fractional-time events that distinguish DVQ from SFQ, so a purely
/// slot-aligned test diet would never notice.
fn streaming_blocking_integral_only(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
) -> (Schedule, Vec<BlockingRecord>) {
    let mut obs = BlockingObserver::new(sys, order);
    let sched = simulate_dvq_observed(sys, m, order, cost, &mut obs);
    let (mut records, _) = obs.into_parts();
    records.retain(|r| r.scheduled_at.den() == 1);
    (sched, records)
}

/// An i64-backed rational that silently wraps on overflow — the
/// arithmetic bug the full-range streaming-vs-post-hoc lag comparison
/// exists to catch. The classic naive implementation: no i128
/// intermediates, no gcd reduction, no checks. Numerators and
/// denominators just multiply and wrap, so it agrees exactly with
/// [`Rat`] while every product fits i64 and corrupts silently once a
/// GRID-resolution (720720) cost denominator enters a lag sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WrapRat {
    num: i64,
    den: i64,
}

impl WrapRat {
    fn int(v: i64) -> WrapRat {
        WrapRat { num: v, den: 1 }
    }

    fn from_rat(r: Rat) -> WrapRat {
        WrapRat {
            num: r.num() as i64, // pfair-lint: allow(no-lossy-cast): the planted truncation is the point of this mutant.
            den: r.den() as i64, // pfair-lint: allow(no-lossy-cast): ditto — the mutant must stay in wrapping i64.
        }
    }

    fn add(self, o: WrapRat) -> WrapRat {
        WrapRat {
            num: self
                .num
                .wrapping_mul(o.den)
                .wrapping_add(o.num.wrapping_mul(self.den)),
            den: self.den.wrapping_mul(o.den),
        }
    }

    fn sub(self, o: WrapRat) -> WrapRat {
        self.add(WrapRat {
            num: o.num.wrapping_neg(),
            den: o.den,
        })
    }

    fn div(self, o: WrapRat) -> WrapRat {
        WrapRat {
            num: self.num.wrapping_mul(o.den),
            den: self.den.wrapping_mul(o.num),
        }
    }

    fn to_rat(self) -> Rat {
        Rat::new(self.num, if self.den == 0 { 1 } else { self.den })
    }
}

/// `LAG(τ, t)` recomputed in [`WrapRat`] arithmetic — the same fluid
/// formulas as `pfair_analysis::total_lag`, minus the overflow safety.
fn wrap_total_lag(sys: &TaskSystem, sched: &Schedule, t: i64) -> WrapRat {
    let t_rat = Rat::int(t);
    let mut total = WrapRat::int(0);
    for task in sys.tasks() {
        for s in sys.task_subtasks(task.id) {
            if t <= s.release {
                break;
            }
            if t >= s.deadline {
                total = total.add(WrapRat::int(1));
            } else {
                total = total
                    .add(WrapRat::int(t - s.release).div(WrapRat::int(s.deadline - s.release)));
            }
        }
        for st in sys.task_subtask_refs(task.id) {
            let p = sched.placement(st);
            if t_rat >= p.completion() {
                total = total.sub(WrapRat::int(1));
            } else if t_rat > p.start {
                total =
                    total.sub(WrapRat::from_rat(t_rat - p.start).div(WrapRat::from_rat(p.cost)));
            }
        }
    }
    total
}

/// Lag probe with the planted bug: the schedule is the real one, but the
/// per-slot LAG series is accounted in [`WrapRat`], whose i64 arithmetic
/// wraps silently where the widened [`Rat`] reduces or panics.
fn wrapping_lag_probe(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    cost: &mut dyn CostModel,
    sim: ProbeSim,
) -> (Schedule, Vec<(i64, Rat)>, Rat) {
    let sched = match sim {
        ProbeSim::Sfq => simulate_sfq(sys, m, order, cost),
        ProbeSim::Dvq => simulate_dvq(sys, m, order, cost),
    };
    let series: Vec<(i64, Rat)> = (0..=sys.horizon())
        .map(|t| (t, wrap_total_lag(sys, &sched, t).to_rat()))
        .collect();
    let max = series.iter().map(|&(_, l)| l).max().unwrap_or(Rat::ZERO);
    (sched, series, max)
}

/// DVQ driver with the planted bug: the caller's cost model is discarded
/// and every quantum is billed as full.
fn simulate_dvq_cost_blind(
    sys: &TaskSystem,
    m: u32,
    order: &dyn PriorityOrder,
    _cost: &mut dyn CostModel,
) -> Schedule {
    simulate_dvq(sys, m, order, &mut pfair_sim::FullQuantum)
}

/// Which optional-unit policy a Boundary-Fair mutant runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BfOptionalPolicy {
    /// BUG: grant optional units in plain task-id order, discarding the
    /// largest-remainder / next-own-boundary urgency.
    ByIdOrder,
    /// BUG: never grant optional units at all.
    Never,
}

/// The Boundary-Fair chassis both BF mutants share: boundaries, exact
/// fluid pending work, mandatory floors and McNaughton wrap-around exactly
/// as the reference, with the optional-unit stage swapped for `policy`.
/// Overruns are clamped instead of asserted so the broken allocation flows
/// through to the schedule, where the conservation invariant can see it.
fn bf_mutant_schedule(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    policy: BfOptionalPolicy,
) -> Schedule {
    let n_tasks = sys.num_tasks();
    let mut bounds = vec![0i64];
    for task in sys.tasks() {
        let n = sys.task_subtasks(task.id).len() as i64;
        if n == 0 {
            continue;
        }
        let (e, p) = (task.weight.e(), task.weight.p());
        let jobs = (n + e - 1) / e;
        bounds.extend((1..=jobs).map(|k| k * p));
    }
    bounds.sort_unstable();
    bounds.dedup();

    let mut alloc = vec![0i64; n_tasks];
    let mut cursor: Vec<u32> = (0..n_tasks)
        .map(|k| {
            sys.task_span(TaskId(u32::try_from(k).expect("task count fits u32")))
                .0
        })
        .collect();
    let mut placements = Vec::with_capacity(sys.num_subtasks());
    let mut a = vec![0i64; n_tasks];
    let mut cands: Vec<(Rat, i64, usize)> = Vec::new();
    for w in bounds.windows(2) {
        let (b, b2) = (w[0], w[1]);
        let len = b2 - b;
        a.iter_mut().for_each(|x| *x = 0);
        cands.clear();
        let mut used = 0i64;
        for (k, task) in sys.tasks().iter().enumerate() {
            let n = sys.task_subtasks(task.id).len() as i64;
            if alloc[k] >= n {
                continue;
            }
            let fluid = (task.weight.as_rat() * Rat::int(b2)).min(Rat::int(n));
            let pw = fluid - Rat::int(alloc[k]);
            if !pw.is_positive() {
                continue;
            }
            let mand = pw.floor().min(len);
            a[k] = mand;
            used += mand;
            let frac = pw - Rat::int(pw.floor());
            if frac.is_positive() && mand < len {
                let next_own = (b / task.weight.p() + 1) * task.weight.p();
                cands.push((frac, next_own, k));
            }
        }
        let spare = (i64::from(m) * len - used).max(0);
        match policy {
            BfOptionalPolicy::ByIdOrder => cands.sort_unstable_by_key(|c| c.2),
            BfOptionalPolicy::Never => cands.clear(),
        }
        for &(_, _, k) in cands
            .iter()
            .take(usize::try_from(spare).expect("spare is nonnegative"))
        {
            a[k] += 1;
        }

        let mut tape = 0i64;
        for k in 0..n_tasks {
            if a[k] == 0 {
                continue;
            }
            let mut mine: Vec<(i64, u32)> = (0..a[k])
                .map(|j| {
                    let cell = tape + j;
                    (
                        b + cell % len,
                        u32::try_from(cell / len).expect("strip index fits u32"),
                    )
                })
                .collect();
            tape += a[k];
            mine.sort_unstable();
            for (slot, proc) in mine {
                let st = SubtaskRef(cursor[k]);
                cursor[k] += 1;
                alloc[k] += 1;
                let c = checked_cost(cost.cost(sys, st), st);
                placements.push(Placement {
                    st,
                    proc,
                    start: Rat::int(slot),
                    cost: c,
                    holds_until: Rat::int(slot + 1),
                });
            }
        }
    }
    Schedule::new(sys, QuantumModel::Bf, m, placements)
}

/// BF with optional units granted by task id instead of urgency.
fn simulate_bf_optional_by_id(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    bf_mutant_schedule(sys, m, cost, BfOptionalPolicy::ByIdOrder)
}

/// BF that never grants optional units.
fn simulate_bf_mandatory_only(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    bf_mutant_schedule(sys, m, cost, BfOptionalPolicy::Never)
}

/// Which capacity bug a flow mutant plants in the PF-window network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlowBug {
    /// BUG: slot → sink edges carry `m + 1`, so a slot can overfill.
    OverfullSlot,
    /// BUG: window edges extend through the deadline slot (inclusive), so
    /// a subtask can land one slot late.
    WindowSlip,
}

/// The flow-network chassis both flow mutants share: the same
/// deterministic PF-window network as the reference engine, built in one
/// pass and solved with a single Dinic run, with `bug` planted. The
/// extraction skips the reference's per-slot capacity assert so the
/// broken solution flows through to the schedule.
fn flow_mutant_schedule(
    sys: &TaskSystem,
    m: u32,
    cost: &mut dyn CostModel,
    bug: FlowBug,
) -> Schedule {
    let n = sys.num_subtasks();
    if n == 0 {
        return Schedule::new(sys, QuantumModel::Flow, m, Vec::new());
    }
    let slip = i64::from(bug == FlowBug::WindowSlip);
    let horizon = sys.max_deadline() + slip;
    let slot_cap = i64::from(m) + i64::from(bug == FlowBug::OverfullSlot);

    let n_tasks = sys.num_tasks();
    let mut ts_base = vec![0usize; n_tasks];
    let mut task_lo = vec![0i64; n_tasks];
    let mut task_hi = vec![0i64; n_tasks];
    let mut next = 1 + n;
    for (k, task) in sys.tasks().iter().enumerate() {
        let subs = sys.task_subtasks(task.id);
        ts_base[k] = next;
        if subs.is_empty() {
            continue;
        }
        task_lo[k] = subs.iter().map(|s| s.release).min().expect("nonempty");
        task_hi[k] = subs.iter().map(|s| s.deadline).max().expect("nonempty") + slip;
        next += usize::try_from(task_hi[k] - task_lo[k]).expect("window span fits usize");
    }
    let slot_base = next;
    let horizon_len = usize::try_from(horizon).expect("horizon fits usize");
    let sink = slot_base + horizon_len;
    let mut net = FlowNetwork::new(sink + 1);

    for t in 0..horizon_len {
        net.add_edge(slot_base + t, sink, slot_cap);
    }
    let mut window_edges: Vec<(EdgeId, SubtaskRef, i64)> = Vec::new();
    for (k, task) in sys.tasks().iter().enumerate() {
        for st in sys.task_subtask_refs(task.id) {
            let s = sys.subtask(st);
            net.add_edge(0, 1 + st.idx(), 1);
            for slot in s.release..s.deadline + slip {
                let ts = ts_base[k] + usize::try_from(slot - task_lo[k]).expect("in range");
                let eid = net.add_edge(1 + st.idx(), ts, 1);
                window_edges.push((eid, st, slot));
            }
        }
        for slot in task_lo[k]..task_hi[k] {
            let ts = ts_base[k] + usize::try_from(slot - task_lo[k]).expect("in range");
            let slot_idx = usize::try_from(slot).expect("in range");
            net.add_edge(ts, slot_base + slot_idx, 1);
        }
    }
    let saturated = net.max_flow(0, sink);
    assert!(
        saturated == i64::try_from(n).expect("subtask count fits i64"),
        "flow mutant: max flow {saturated} < {n} subtasks"
    );

    let mut slot_of: Vec<Option<i64>> = vec![None; n];
    for &(eid, st, slot) in &window_edges {
        if net.flow(eid) == 1 {
            slot_of[st.idx()] = Some(slot);
        }
    }
    let mut by_slot: Vec<(i64, SubtaskRef)> = slot_of
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let i_u32 = u32::try_from(i).expect("subtask count fits u32");
            (
                s.expect("saturation places every subtask"),
                SubtaskRef(i_u32),
            )
        })
        .collect();
    by_slot.sort_unstable();
    let mut placements = Vec::with_capacity(n);
    let mut i = 0;
    while i < by_slot.len() {
        let slot = by_slot[i].0;
        let run = by_slot[i..].iter().take_while(|x| x.0 == slot).count();
        for (proc, &(_, st)) in by_slot[i..i + run].iter().enumerate() {
            let c = checked_cost(cost.cost(sys, st), st);
            placements.push(Placement {
                st,
                proc: u32::try_from(proc).expect("proc fits u32"),
                start: Rat::int(slot),
                cost: c,
                holds_until: Rat::int(slot + 1),
            });
        }
        i += run;
    }
    Schedule::new(sys, QuantumModel::Flow, m, placements)
}

/// Flow engine with per-slot capacity `m + 1`.
fn simulate_flow_overfull(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    flow_mutant_schedule(sys, m, cost, FlowBug::OverfullSlot)
}

/// Flow engine whose windows include the deadline slot.
fn simulate_flow_window_slip(sys: &TaskSystem, m: u32, cost: &mut dyn CostModel) -> Schedule {
    flow_mutant_schedule(sys, m, cost, FlowBug::WindowSlip)
}

/// One deliberately planted concurrency bug in the real runtime.
///
/// Unlike [`Mutant`], which swaps a broken *engine* into the differential
/// harness, a runtime mutant arms a [`FaultPlan`](pfair_runtime::FaultPlan) inside `pfair-runtime`
/// itself — a torn dispatch batch, a lost combiner wakeup, a stale
/// KeyCache read — and the replay bank
/// ([`crate::runtime::runtime_bank`]) must catch the damage in the
/// recorded artifacts of a real multi-threaded run.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeMutant {
    /// Mutant name.
    pub name: &'static str,
    /// What was broken, in one sentence.
    pub description: &'static str,
    /// The fault to arm in [`pfair_runtime::RuntimeConfig::fault`].
    pub fault: pfair_runtime::FaultPlan,
    /// The execution mode under which the bug is observable.
    pub mode: pfair_runtime::Mode,
    /// The bank invariant expected to fire first on a catching seed.
    pub expect: &'static str,
}

/// The concurrency-mutant roster: each fault is caught by a *different*
/// invariant of the replay bank, which is what proves the bank's checks
/// are independent rather than one law firing for everything.
#[must_use]
pub fn runtime_mutants() -> Vec<RuntimeMutant> {
    use pfair_runtime::{FaultPlan, Mode};
    vec![
        RuntimeMutant {
            name: "torn-dispatch-batch",
            description: "the combiner records stale processor ids for all but the \
                          first entry of a multi-assignment dispatch batch, as if the \
                          batch were published non-atomically; delivery stays correct, \
                          so only the recorded stream is torn",
            fault: FaultPlan::TornDispatchBatch,
            mode: Mode::FreeRunning,
            expect: "replay-structural",
        },
        RuntimeMutant {
            name: "lost-wakeup-combiner",
            description: "the combiner drops the first completion it drains, the \
                          classic lost-wakeup: the worker already published and will \
                          never re-notify, so the run stalls and the watchdog \
                          truncates the log",
            fault: FaultPlan::LostWakeupCombiner,
            mode: Mode::FreeRunning,
            expect: "replay-completeness",
        },
        RuntimeMutant {
            name: "stale-keycache-read",
            description: "dispatch reads the predecessor's KeyCache slot for any \
                          subtask that has one, a stale-read race: every quantum still \
                          executes and replays cleanly, but priorities shift and the \
                          schedule silently diverges from the reference",
            fault: FaultPlan::StaleKeyCacheRead,
            mode: Mode::Deterministic,
            expect: "determinism-equality",
        },
    ]
}
