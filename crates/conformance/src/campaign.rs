//! Threaded, deterministic fuzzing campaigns.
//!
//! A campaign checks trials `base_seed + 0 … base_seed + trials − 1`
//! against the invariant bank, sharded across worker threads with the same
//! discipline as `experiment::run_sweep`: a shared atomic counter hands
//! out trial indices, each worker derives its case purely from
//! `base_seed + index`, and results land in per-trial slots — so the set
//! of violations found by a completed campaign is a function of the seed
//! alone, not of the thread count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::case::{Case, CaseSpec};
use crate::engines::Engines;
use crate::gen::{generate_case, GenConfig};
use crate::invariant::check_case;
use crate::shrink::shrink;

/// Configuration of one campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of trials (seeds `base_seed..base_seed + trials`).
    pub trials: usize,
    /// First seed.
    pub base_seed: u64,
    /// Worker threads (0 or 1 = run on the calling thread).
    pub threads: usize,
    /// Case-generation knobs.
    pub gen: GenConfig,
    /// Optional wall-clock budget; trials not started in time are skipped.
    pub time_limit: Option<Duration>,
    /// Shrink each violation's case to a minimal repro.
    pub shrink: bool,
    /// Stop handing out trials once a violation is found.
    pub stop_on_first: bool,
}

impl CampaignConfig {
    /// A serial, shrinking, stop-on-first campaign over `trials` seeds.
    #[must_use]
    pub fn quick(trials: usize, base_seed: u64) -> CampaignConfig {
        CampaignConfig {
            trials,
            base_seed,
            threads: 1,
            gen: GenConfig::default(),
            time_limit: None,
            shrink: true,
            stop_on_first: true,
        }
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Violation {
    /// The seed whose generated case violated the invariant (replay with
    /// `pfairsim fuzz --seed <seed> --trials 1`).
    pub seed: u64,
    /// Name of the violated invariant.
    pub invariant: String,
    /// Human-readable violation report.
    pub detail: String,
    /// The generated case.
    pub original: CaseSpec,
    /// The delta-debugged minimal case (when shrinking was enabled).
    pub shrunk: Option<CaseSpec>,
}

/// What a campaign found.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Trials actually executed (< `trials` only under `stop_on_first` or
    /// a time limit).
    pub trials_run: usize,
    /// Violations in trial order.
    pub violations: Vec<Violation>,
}

impl CampaignOutcome {
    /// `true` iff no invariant was violated.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the single case derived from `seed`.
///
/// # Errors
/// The violation, unshrunk, if any invariant fails (a generator-produced
/// spec that does not rebuild is reported under the pseudo-invariant
/// `"case-build"`; it cannot happen unless the generator itself is broken).
/// The violation is boxed: it carries the whole generated spec.
pub fn check_seed(gen: &GenConfig, seed: u64, engines: &Engines) -> Result<(), Box<Violation>> {
    let spec = generate_case(gen, seed);
    let case = match Case::build(spec.clone()) {
        Ok(case) => case,
        Err(e) => {
            return Err(Box::new(Violation {
                seed,
                invariant: "case-build".to_owned(),
                detail: format!("generated spec does not rebuild: {e:?}"),
                original: spec,
                shrunk: None,
            }))
        }
    };
    if !case.is_feasible() {
        return Err(Box::new(Violation {
            seed,
            invariant: "case-build".to_owned(),
            detail: "generated case is infeasible".to_owned(),
            original: spec,
            shrunk: None,
        }));
    }
    check_case(&case, engines).map_err(|f| {
        Box::new(Violation {
            seed,
            invariant: f.invariant.to_owned(),
            detail: f.detail,
            original: spec,
            shrunk: None,
        })
    })
}

/// Runs a campaign against `engines`.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig, engines: &Engines) -> CampaignOutcome {
    // pfair-lint: allow(no-nondeterminism): wall-clock reads bound the campaign's CPU budget only; which seeds run is deterministic, and every violation replays from its seed.
    let deadline = cfg.time_limit.map(|d| Instant::now() + d);
    let threads = cfg.threads.max(1);
    // Outer Option: trial not started. Inner: the trial's violation.
    let mut results: Vec<Option<Option<Box<Violation>>>> = vec![None; cfg.trials];
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    {
        let slots = parking_lot::Mutex::new(&mut results);
        // pfair-lint: allow(no-nondeterminism): trial k always checks seed base+k whatever thread claims it; threading changes the wall-clock, never which violations exist.
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    // pfair-lint: allow(no-nondeterminism): budget check only — a timed-out campaign reports fewer trials, never different results for a given seed.
                    if stop.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= cfg.trials {
                        break;
                    }
                    let outcome = check_seed(&cfg.gen, cfg.base_seed + k as u64, engines).err();
                    if outcome.is_some() && cfg.stop_on_first {
                        stop.store(true, Ordering::Relaxed);
                    }
                    slots.lock()[k] = Some(outcome);
                });
            }
        })
        .expect("campaign worker panicked");
    }

    let trials_run = results.iter().flatten().count();
    let mut violations: Vec<Violation> = results
        .into_iter()
        .flatten()
        .flatten()
        .map(|b| *b)
        .collect();
    if cfg.shrink {
        for v in &mut violations {
            if v.invariant != "case-build" {
                v.shrunk = Some(shrink(&v.original, &v.invariant, engines));
            }
        }
    }
    CampaignOutcome {
        trials_run,
        violations,
    }
}
