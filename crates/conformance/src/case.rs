//! Replayable fuzz cases.
//!
//! A [`CaseSpec`] is the *serializable* description of one differential
//! test: a processor count, a GIS task system given as per-subtask
//! `(index, θ, early)` triples, and the actual-cost overrides (every
//! subtask not listed costs a full quantum). The spec round-trips through
//! `serde_json`, rebuilds its [`TaskSystem`] via the validating
//! [`TaskSystemBuilder`], and is the unit the shrinker mutates — every
//! shrink candidate is re-validated by the same builder the generators
//! use, so a shrunk repro can never describe an ill-formed system.

use pfair_numeric::Rat;
use pfair_sim::FixedCosts;
use pfair_taskmodel::{
    window, ModelError, SubtaskRef, TaskId, TaskSystem, TaskSystemBuilder, Weight,
};
use serde::{Deserialize, Serialize};

/// One released subtask of a [`TaskSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubtaskSpec {
    /// 1-based subtask index `i` of `T_i`; gaps between consecutive
    /// entries model GIS drops.
    pub index: u64,
    /// IS offset `θ(T_i)` (monotone within a task).
    pub theta: i64,
    /// Early-release allowance: the eligibility time is `r(T_i) − early`,
    /// clamped to the model constraints (Eq. (6)).
    pub early: i64,
}

/// One task: a weight `e/p` plus its released subtasks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Per-job execution cost `T.e`.
    pub e: i64,
    /// Period `T.p`.
    pub p: i64,
    /// Released subtasks, in increasing index order.
    pub subtasks: Vec<SubtaskSpec>,
}

/// An actual-cost override: subtask `T_index` of task `task` yields after
/// `cost` (every subtask without an override costs a full quantum).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostOverride {
    /// Dense task index into [`CaseSpec::tasks`].
    pub task: u32,
    /// Subtask index.
    pub index: u64,
    /// Actual execution cost in `(0, 1]`.
    pub cost: Rat,
}

/// A complete, replayable fuzz case.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// The generator seed this case came from (kept through shrinking so a
    /// shrunk artifact still names its origin).
    pub seed: u64,
    /// Number of processors.
    pub m: u32,
    /// The task system.
    pub tasks: Vec<TaskSpec>,
    /// Actual-cost overrides (empty = every cost is a full quantum).
    pub costs: Vec<CostOverride>,
}

impl CaseSpec {
    /// Rebuilds the task system through the validating builder.
    ///
    /// The eligibility of each subtask is `r − early` clamped to the model
    /// constraints (non-negative, monotone, `≤ r`) — exactly the clamp the
    /// workload generator applies, so generator output round-trips
    /// unchanged while shrink candidates stay well-formed.
    ///
    /// # Errors
    /// Any model constraint violated by the spec, as a [`ModelError`].
    pub fn build(&self) -> Result<TaskSystem, ModelError> {
        let mut b = TaskSystemBuilder::new();
        for t in &self.tasks {
            let w = Weight::checked(t.e, t.p)?;
            let id = b.add_task(w);
            let mut prev_eligible = 0i64;
            for s in &t.subtasks {
                let r = s.theta + window::release(w, s.index);
                let eligible = (r - s.early).max(prev_eligible).max(0).min(r);
                b.push(id, s.index, s.theta, Some(eligible))?;
                prev_eligible = eligible;
            }
        }
        Ok(b.build())
    }

    /// Extracts a spec from a generated system (plus a cost assignment,
    /// queried once per subtask in system order). Tasks with no released
    /// subtasks are skipped; full-quantum costs are left implicit.
    pub fn from_system(
        seed: u64,
        m: u32,
        sys: &TaskSystem,
        mut cost_of: impl FnMut(SubtaskRef) -> Rat,
    ) -> CaseSpec {
        let mut tasks = Vec::new();
        let mut costs = Vec::new();
        for task in sys.tasks() {
            let subtasks: Vec<SubtaskSpec> = sys
                .task_subtask_refs(task.id)
                .map(|st| {
                    let s = sys.subtask(st);
                    SubtaskSpec {
                        index: s.id.index,
                        theta: s.theta,
                        early: s.release - s.eligible,
                    }
                })
                .collect();
            if subtasks.is_empty() {
                continue;
            }
            let dense = tasks.len() as u32;
            for st in sys.task_subtask_refs(task.id) {
                let c = cost_of(st);
                if c != Rat::ONE {
                    costs.push(CostOverride {
                        task: dense,
                        index: sys.subtask(st).id.index,
                        cost: c,
                    });
                }
            }
            tasks.push(TaskSpec {
                e: task.weight.e(),
                p: task.weight.p(),
                subtasks,
            });
        }
        CaseSpec {
            seed,
            m,
            tasks,
            costs,
        }
    }

    /// Total number of released subtasks described by the spec.
    #[must_use]
    pub fn num_subtasks(&self) -> usize {
        self.tasks.iter().map(|t| t.subtasks.len()).sum()
    }
}

/// A spec together with its built task system — what the invariants check.
#[derive(Clone, Debug)]
pub struct Case {
    /// The replayable description.
    pub spec: CaseSpec,
    /// The built system.
    pub sys: TaskSystem,
}

impl Case {
    /// Builds the system from the spec.
    ///
    /// # Errors
    /// Propagates [`CaseSpec::build`] failures.
    pub fn build(spec: CaseSpec) -> Result<Case, ModelError> {
        let sys = spec.build()?;
        Ok(Case { spec, sys })
    }

    /// The case's deterministic cost model (stateless, so every engine
    /// sees identical per-subtask costs regardless of query order).
    #[must_use]
    pub fn cost_model(&self) -> FixedCosts {
        let mut costs = FixedCosts::new(Rat::ONE);
        for c in &self.spec.costs {
            costs = costs.with(TaskId(c.task), c.index, c.cost);
        }
        costs
    }

    /// The actual cost the case assigns to subtask `T_index` of `task`.
    #[must_use]
    pub fn expected_cost(&self, task: TaskId, index: u64) -> Rat {
        self.spec
            .costs
            .iter()
            .find(|c| c.task == task.0 && c.index == index)
            .map_or(Rat::ONE, |c| c.cost)
    }

    /// `true` iff total utilization fits the case's processor count (the
    /// precondition of every theorem the invariants encode).
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.sys.is_feasible(self.spec.m)
    }

    /// `true` iff the case is a synchronous periodic system made of whole
    /// jobs: `θ = 0` and `early = 0` throughout, contiguous indices from
    /// 1, and a multiple of `T.e` subtasks per task. Exactly the workloads
    /// the online scheduler's job-submission API can express.
    #[must_use]
    pub fn is_whole_jobs(&self) -> bool {
        self.spec.tasks.iter().all(|t| {
            t.subtasks.len() % t.e.unsigned_abs() as usize == 0
                && t.subtasks
                    .iter()
                    .enumerate()
                    .all(|(k, s)| s.index == k as u64 + 1 && s.theta == 0 && s.early == 0)
        })
    }

    /// The task weights, in dense task order.
    #[must_use]
    pub fn weights(&self) -> Vec<Weight> {
        self.spec
            .tasks
            .iter()
            .map(|t| Weight::new(t.e, t.p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_workload::{random_weights, releasegen, ReleaseConfig, TaskGenConfig};

    #[test]
    fn generated_systems_round_trip() {
        for seed in 0..20u64 {
            let ws = random_weights(&TaskGenConfig::full(2, 8), seed);
            let sys = releasegen::generate(&ws, &ReleaseConfig::gis(12), seed);
            let spec = CaseSpec::from_system(seed, 2, &sys, |_| Rat::ONE);
            let rebuilt = spec.build().expect("round trip");
            assert_eq!(rebuilt.num_subtasks(), sys.num_subtasks(), "seed {seed}");
            let kept: Vec<_> = sys
                .tasks()
                .iter()
                .filter(|t| !sys.task_subtasks(t.id).is_empty())
                .collect();
            for (nt, t) in kept.iter().enumerate() {
                let a: Vec<_> = sys.task_subtasks(t.id).to_vec();
                let b: Vec<_> = rebuilt.task_subtasks(TaskId(nt as u32)).to_vec();
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id.index, y.id.index);
                    assert_eq!(x.theta, y.theta);
                    assert_eq!(x.release, y.release);
                    assert_eq!(x.deadline, y.deadline);
                    assert_eq!(x.eligible, y.eligible, "seed {seed} {:?}", x.id);
                }
            }
        }
    }

    #[test]
    fn spec_serializes_and_parses() {
        let spec = CaseSpec {
            seed: 7,
            m: 2,
            tasks: vec![TaskSpec {
                e: 1,
                p: 2,
                subtasks: vec![SubtaskSpec {
                    index: 1,
                    theta: 0,
                    early: 0,
                }],
            }],
            costs: vec![CostOverride {
                task: 0,
                index: 1,
                cost: Rat::new(1, 2),
            }],
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: CaseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn expected_cost_defaults_to_full_quantum() {
        let spec = CaseSpec {
            seed: 0,
            m: 1,
            tasks: vec![TaskSpec {
                e: 1,
                p: 2,
                subtasks: vec![
                    SubtaskSpec {
                        index: 1,
                        theta: 0,
                        early: 0,
                    },
                    SubtaskSpec {
                        index: 2,
                        theta: 0,
                        early: 0,
                    },
                ],
            }],
            costs: vec![CostOverride {
                task: 0,
                index: 2,
                cost: Rat::new(3, 4),
            }],
        };
        let case = Case::build(spec).unwrap();
        assert_eq!(case.expected_cost(TaskId(0), 1), Rat::ONE);
        assert_eq!(case.expected_cost(TaskId(0), 2), Rat::new(3, 4));
        assert!(case.is_whole_jobs());
    }
}
