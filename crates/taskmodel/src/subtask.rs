//! Concrete released subtasks.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::system::TaskId;

/// Identity of a subtask: its task and its (1-based) index `i` in `T_i`.
///
/// In a GIS system the indices of *released* subtasks of a task are strictly
/// increasing but need not be contiguous (absent indices model dropped
/// subtasks, Fig. 1(c)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubtaskId {
    /// The task this subtask belongs to.
    pub task: TaskId,
    /// The subtask index `i ≥ 1`.
    pub index: u64,
}

impl fmt::Debug for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}_{}", self.task.0, self.index)
    }
}

/// A dense handle into a [`crate::TaskSystem`]'s subtask table.
///
/// Simulators and analyses index subtasks by `SubtaskRef` (a `u32`) instead
/// of hashing [`SubtaskId`]s; conversion both ways is provided by the
/// system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubtaskRef(pub u32);

impl fmt::Debug for SubtaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st#{}", self.0)
    }
}

impl SubtaskRef {
    /// The index into the system's subtask table.
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A released subtask with all its (integral) Pfair parameters resolved.
///
/// All times are slot boundaries (integers): the task model is unchanged
/// under the DVQ model ("the release time, eligibility time, and deadline of
/// each subtask … remain integral", §3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subtask {
    /// Identity (task, index).
    pub id: SubtaskId,
    /// IS offset `θ(T_i)` (Eq. (3)/(4)); monotone within a task (Eq. (5)).
    pub theta: i64,
    /// Pseudo-release `r(T_i)`.
    pub release: i64,
    /// Pseudo-deadline `d(T_i)` (exclusive window end).
    pub deadline: i64,
    /// Eligibility time `e(T_i) ≤ r(T_i)` (Eq. (6)); strictly earlier than
    /// the release models *early releasing*.
    pub eligible: i64,
    /// The b-bit: window of `T_i` overlaps window of `T_{i+1}`.
    pub bbit: bool,
    /// Group deadline `D(T_i)` (offset-adjusted); `0` for light tasks.
    pub group_deadline: i64,
    /// Predecessor: the subtask of the same task released immediately
    /// before this one (not necessarily index `i − 1` in a GIS system).
    pub pred: Option<SubtaskRef>,
    /// Successor: the subtask of the same task released immediately after.
    pub succ: Option<SubtaskRef>,
}

impl Subtask {
    /// The PF-window `[r(T_i), d(T_i))` as a half-open pair.
    #[must_use]
    pub fn pf_window(&self) -> (i64, i64) {
        (self.release, self.deadline)
    }

    /// The IS-window `[e(T_i), d(T_i))` as a half-open pair.
    #[must_use]
    pub fn is_window(&self) -> (i64, i64) {
        (self.eligible, self.deadline)
    }

    /// Window length `d − r`.
    #[must_use]
    pub fn window_length(&self) -> i64 {
        self.deadline - self.release
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        let id = SubtaskId {
            task: TaskId(3),
            index: 7,
        };
        assert_eq!(format!("{id:?}"), "T3_7");
        assert_eq!(format!("{:?}", SubtaskRef(12)), "st#12");
    }

    #[test]
    fn id_ordering_task_major() {
        let a = SubtaskId {
            task: TaskId(0),
            index: 9,
        };
        let b = SubtaskId {
            task: TaskId(1),
            index: 1,
        };
        assert!(a < b);
    }
}
