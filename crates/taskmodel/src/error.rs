//! Validation errors for task-system construction.

use core::fmt;

use crate::subtask::SubtaskId;
use crate::system::TaskId;

/// An error raised while constructing or validating a task system.
///
/// Every constraint of the paper's task model (§2) maps to a variant, so a
/// rejected construction names exactly which rule it violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A weight outside `(0, 1]` (execution cost must satisfy `0 < e ≤ p`).
    InvalidWeight {
        /// Offending execution cost.
        e: i64,
        /// Offending period.
        p: i64,
    },
    /// Subtask indices of a task must be strictly increasing (GIS allows
    /// skips, never repeats or reordering).
    NonIncreasingIndex {
        /// Task being extended.
        task: TaskId,
        /// Index of the most recently released subtask.
        prev: u64,
        /// Offending next index.
        next: u64,
    },
    /// Subtask indices start at 1.
    ZeroIndex {
        /// Task being extended.
        task: TaskId,
    },
    /// Violation of Eq. (5): `k > i ⇒ θ(T_k) ≥ θ(T_i)` (which also encodes
    /// the GIS release-separation rule of §2).
    DecreasingOffset {
        /// Offending subtask.
        subtask: SubtaskId,
        /// Offset of the predecessor.
        prev_theta: i64,
        /// Offending (smaller) offset.
        theta: i64,
    },
    /// Violation of Eq. (6): `e(T_i) ≤ r(T_i)`.
    EligibilityAfterRelease {
        /// Offending subtask.
        subtask: SubtaskId,
        /// Its eligibility time.
        eligible: i64,
        /// Its release time.
        release: i64,
    },
    /// Violation of Eq. (6): `e(T_i) ≤ e(T_{i+1})` over released subtasks.
    DecreasingEligibility {
        /// Offending subtask.
        subtask: SubtaskId,
        /// Eligibility of the predecessor.
        prev_eligible: i64,
        /// Offending (smaller) eligibility.
        eligible: i64,
    },
    /// A negative offset or eligibility would place a window before time 0.
    NegativeTime {
        /// Offending subtask.
        subtask: SubtaskId,
    },
    /// An operation referenced a task id not present in the system.
    UnknownTask {
        /// The missing id.
        task: TaskId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidWeight { e, p } => {
                write!(f, "invalid weight {e}/{p}: need 0 < e <= p")
            }
            ModelError::NonIncreasingIndex { task, prev, next } => write!(
                f,
                "task {task:?}: subtask index {next} must exceed previously released index {prev}"
            ),
            ModelError::ZeroIndex { task } => {
                write!(f, "task {task:?}: subtask indices start at 1")
            }
            ModelError::DecreasingOffset {
                subtask,
                prev_theta,
                theta,
            } => write!(
                f,
                "{subtask:?}: IS offset {theta} decreases below predecessor offset {prev_theta} (Eq. 5)"
            ),
            ModelError::EligibilityAfterRelease {
                subtask,
                eligible,
                release,
            } => write!(
                f,
                "{subtask:?}: eligibility {eligible} exceeds release {release} (Eq. 6)"
            ),
            ModelError::DecreasingEligibility {
                subtask,
                prev_eligible,
                eligible,
            } => write!(
                f,
                "{subtask:?}: eligibility {eligible} decreases below predecessor eligibility {prev_eligible} (Eq. 6)"
            ),
            ModelError::NegativeTime { subtask } => {
                write!(f, "{subtask:?}: windows must not start before time 0")
            }
            ModelError::UnknownTask { task } => write!(f, "unknown task {task:?}"),
        }
    }
}

impl std::error::Error for ModelError {}
