//! The Pfair task model of Devi & Anderson (IPPS 2005), §2.
//!
//! This crate implements the *task-side* substrate that every Pfair result
//! stands on: tasks with rational weights, their decomposition into
//! quantum-length **subtasks**, the per-subtask **windows** (pseudo-release
//! `r(T_i)`, pseudo-deadline `d(T_i)`), the PD² tie-break parameters
//! (**b-bit** and **group deadline** `D(T_i)`), and the recurrence models —
//! periodic, sporadic, **intra-sporadic (IS)** and
//! **generalized-intra-sporadic (GIS)** — that govern when subtasks are
//! released and become eligible.
//!
//! # The model in brief
//!
//! A task `T` has an integer period `T.p`, an integer per-job execution cost
//! `T.e`, and weight `wt(T) = T.e/T.p ∈ (0, 1]`. It is divided into
//! quantum-length subtasks `T_1, T_2, …`; subtask `T_i` carries an IS offset
//! `θ(T_i)` (monotone in `i`, Eq. (5)) and
//!
//! ```text
//! r(T_i) = θ(T_i) + ⌊(i−1)/wt(T)⌋      (Eq. 3)
//! d(T_i) = θ(T_i) + ⌈ i   /wt(T)⌉      (Eq. 4)
//! ```
//!
//! with the *PF-window* `[r(T_i), d(T_i))`. Each subtask also has an
//! eligibility time `e(T_i) ≤ r(T_i)` with `e(T_i) ≤ e(T_{i+1})` (Eq. 6);
//! the *IS-window* is `[e(T_i), d(T_i))`. A GIS task may skip subtask
//! indices entirely (Fig. 1(c)), subject to the release-separation rule of
//! §2 — which, in offset form, is exactly the monotonicity of `θ`.
//!
//! A task system is **feasible** on `M` processors iff its total utilization
//! `Σ wt(T)` is at most `M`.
//!
//! # Entry points
//!
//! * [`Weight`] — a rational weight `e/p` in `(0, 1]`.
//! * [`window`] — pure window/tie-break formulas (checked against the
//!   paper's Fig. 1 by unit test).
//! * [`TaskSystemBuilder`] — constructs an arbitrary (validated) GIS task
//!   system, one released subtask at a time.
//! * [`TaskSystem`] — the immutable product: tasks plus their concrete
//!   released subtasks, with predecessor/successor links.
//! * [`release`] — convenience constructors (synchronous periodic systems,
//!   IS delays, GIS drops, early releasing).
//! * [`hyperperiod`](mod@hyperperiod) — lcm horizons and the window-repetition law.
//! * [`inflation`] — §3's overhead-by-weight-inflation remark, executable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod hyperperiod;
pub mod inflation;
pub mod release;
pub mod subtask;
pub mod system;
pub mod weight;
pub mod window;

pub use builder::TaskSystemBuilder;
pub use error::ModelError;
pub use hyperperiod::hyperperiod;
pub use subtask::{Subtask, SubtaskId, SubtaskRef};
pub use system::{Task, TaskId, TaskSystem};
pub use weight::Weight;
