//! Pure Pfair window and tie-break formulas.
//!
//! These are the *offsetless* quantities — a concrete IS/GIS subtask adds
//! its offset `θ(T_i)` on top (Eqns (3), (4) of the paper). For a task of
//! weight `wt = e/p` and subtask index `i ≥ 1`:
//!
//! * pseudo-release  `r(T_i) = ⌊(i−1)·p/e⌋`
//! * pseudo-deadline `d(T_i) = ⌈i·p/e⌉`
//! * b-bit `b(T_i) = ⌈i/wt⌉ − ⌊i/wt⌋` — `1` iff `T_i`'s window overlaps
//!   `T_{i+1}`'s (equivalently, iff `i·p mod e ≠ 0`)
//! * group deadline `D(T_i)` — for a *heavy* task (`wt ≥ 1/2`), the time at
//!   which the cascade of unit-slack windows starting at `d(T_i)` ends; for
//!   light tasks defined as `0` (the PD² tie-break then favours heavy
//!   tasks). Closed form used (validated against first-principles cascade
//!   search in the tests below):
//!
//!   ```text
//!   D(T_i) = ⌈ x · p / (p − e) ⌉   where   x = ⌈ d(T_i) · (p − e) / p ⌉
//!   ```
//!
//!   and `D(T_i) = d(T_i)` for weight-1 tasks (whose windows have no slack,
//!   but whose b-bit is always 0 so the value is never compared).

use crate::weight::Weight;

/// Offsetless pseudo-release `⌊(i−1)·p/e⌋` of subtask index `i ≥ 1`.
///
/// Intermediates are computed in `i128`, so arbitrary filler weights
/// (whose reduced periods can be lcm-scale) never overflow silently; a
/// result that does not fit `i64` panics with a clear message.
#[must_use]
pub fn release(w: Weight, i: u64) -> i64 {
    debug_assert!(i >= 1, "subtask indices start at 1");
    let i = i128::from(i);
    let v = ((i - 1) * i128::from(w.p())).div_euclid(i128::from(w.e()));
    i64::try_from(v).expect("pseudo-release overflows i64")
}

/// Offsetless pseudo-deadline `⌈i·p/e⌉` of subtask index `i ≥ 1`.
#[must_use]
pub fn deadline(w: Weight, i: u64) -> i64 {
    debug_assert!(i >= 1, "subtask indices start at 1");
    let i = i128::from(i);
    let e = i128::from(w.e());
    let v = (i * i128::from(w.p()) + e - 1).div_euclid(e);
    i64::try_from(v).expect("pseudo-deadline overflows i64")
}

/// Window length `d(T_i) − r(T_i)` (always ≥ 1; ≥ 2 unless `wt = 1`).
#[must_use]
pub fn window_length(w: Weight, i: u64) -> i64 {
    deadline(w, i) - release(w, i)
}

/// The b-bit: `true` iff the window of `T_i` overlaps the window of
/// `T_{i+1}` (deadline slot of `T_i` = release slot of `T_{i+1}`).
#[must_use]
pub fn bbit(w: Weight, i: u64) -> bool {
    (i128::from(i) * i128::from(w.p())) % i128::from(w.e()) != 0
}

/// Offsetless group deadline `D(T_i)`.
///
/// `0` for light tasks; `d(T_i)` for weight-1 tasks; otherwise the closed
/// form above. The group deadline is the time by which the "cascade" of
/// forced allocations ends if `T_i` is scheduled in the last slot of its
/// window: successive windows of length 2 each force the next subtask into
/// its own final slot, until a window of length 3 or a b-bit of 0 absorbs
/// the displacement.
#[must_use]
pub fn group_deadline(w: Weight, i: u64) -> i64 {
    if w.is_light() {
        return 0;
    }
    if w.is_full() {
        return deadline(w, i);
    }
    let (e, p) = (i128::from(w.e()), i128::from(w.p()));
    let d0 = i128::from(deadline(w, i));
    let ceil128 = |a: i128, b: i128| (a + b - 1).div_euclid(b);
    let x = ceil128(d0 * (p - e), p);
    i64::try_from(ceil128(x * p, p - e)).expect("group deadline overflows i64")
}

/// First-principles group deadline by walking the cascade (test oracle,
/// also exposed for cross-validation in property tests).
///
/// Walks successors from `i`: the cascade continues through `T_j` while
/// `b(T_j) = 1` and `|w(T_{j+1})| = 2`; it ends at `d(T_j)` when
/// `b(T_j) = 0`, or at `d(T_j) + 1` when `b(T_j) = 1` but `T_{j+1}`'s
/// window has length 3 (the displacement is absorbed by the slack).
#[must_use]
pub fn group_deadline_by_cascade(w: Weight, i: u64) -> i64 {
    if w.is_light() {
        return 0;
    }
    if w.is_full() {
        return deadline(w, i);
    }
    let mut j = i;
    loop {
        if !bbit(w, j) {
            return deadline(w, j);
        }
        if window_length(w, j + 1) >= 3 {
            return deadline(w, j) + 1;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig1a_windows_weight_3_4() {
        // Fig. 1(a): first job of a weight-3/4 periodic task.
        let w = Weight::new(3, 4);
        assert_eq!((release(w, 1), deadline(w, 1)), (0, 2));
        assert_eq!((release(w, 2), deadline(w, 2)), (1, 3));
        assert_eq!((release(w, 3), deadline(w, 3)), (2, 4));
        // Pattern repeats every job.
        assert_eq!((release(w, 4), deadline(w, 4)), (4, 6));
        assert_eq!((release(w, 5), deadline(w, 5)), (5, 7));
        assert_eq!((release(w, 6), deadline(w, 6)), (6, 8));
    }

    #[test]
    fn fig2_windows_weight_1_6_and_1_2() {
        // The task set of Fig. 2: A,B,C of weight 1/6 and D,E,F of weight 1/2.
        let light = Weight::new(1, 6);
        assert_eq!((release(light, 1), deadline(light, 1)), (0, 6));
        assert_eq!((release(light, 2), deadline(light, 2)), (6, 12));
        let heavy = Weight::new(1, 2);
        assert_eq!((release(heavy, 1), deadline(heavy, 1)), (0, 2));
        assert_eq!((release(heavy, 2), deadline(heavy, 2)), (2, 4));
        assert_eq!((release(heavy, 3), deadline(heavy, 3)), (4, 6));
    }

    #[test]
    fn bbit_examples() {
        let w34 = Weight::new(3, 4);
        // Windows [0,2),[1,3),[2,4): consecutive windows overlap, except at
        // the job boundary (i = 3: d = 4 = r(T_4) would be 4, no overlap).
        assert!(bbit(w34, 1));
        assert!(bbit(w34, 2));
        assert!(!bbit(w34, 3));
        let w12 = Weight::new(1, 2);
        assert!(!bbit(w12, 1));
        assert!(!bbit(w12, 2));
        let w16 = Weight::new(1, 6);
        assert!(!bbit(w16, 1));
        // Weight-1 tasks never overlap.
        let w11 = Weight::new(1, 1);
        assert!(!bbit(w11, 1));
        assert!(!bbit(w11, 7));
    }

    #[test]
    fn bbit_matches_definition() {
        // b(T_i) = ⌈i/wt⌉ − ⌊i/wt⌋.
        for &(e, p) in &[(3i64, 4i64), (2, 3), (1, 2), (5, 7), (1, 6), (7, 11)] {
            let w = Weight::new(e, p);
            for i in 1..=50u64 {
                let ii = i as i64;
                let expected = pfair_numeric::ceil_div(ii * w.p(), w.e())
                    - pfair_numeric::floor_div(ii * w.p(), w.e());
                assert_eq!(bbit(w, i) as i64, expected, "wt={e}/{p} i={i}");
            }
        }
    }

    #[test]
    fn group_deadline_weight_3_4() {
        let w = Weight::new(3, 4);
        // Cascade of job 1 ends at time 4 for all three subtasks.
        assert_eq!(group_deadline(w, 1), 4);
        assert_eq!(group_deadline(w, 2), 4);
        assert_eq!(group_deadline(w, 3), 4);
        // Job 2's cascade ends at 8.
        assert_eq!(group_deadline(w, 4), 8);
    }

    #[test]
    fn group_deadline_weight_2_3() {
        let w = Weight::new(2, 3);
        assert_eq!(group_deadline(w, 1), 3);
        assert_eq!(group_deadline(w, 2), 3);
        assert_eq!(group_deadline(w, 3), 6);
        assert_eq!(group_deadline(w, 4), 6);
    }

    #[test]
    fn group_deadline_weight_1_2_equals_deadline() {
        // Weight exactly 1/2: all windows length 2, b = 0 ⇒ cascade is
        // trivial, D = d.
        let w = Weight::new(1, 2);
        for i in 1..=20 {
            assert_eq!(group_deadline(w, i), deadline(w, i));
        }
    }

    #[test]
    fn group_deadline_light_is_zero() {
        for &(e, p) in &[(1i64, 3i64), (1, 6), (2, 5), (49, 100)] {
            let w = Weight::new(e, p);
            for i in 1..=10 {
                assert_eq!(group_deadline(w, i), 0);
            }
        }
    }

    #[test]
    fn group_deadline_weight_one() {
        let w = Weight::new(1, 1);
        for i in 1..=10u64 {
            assert_eq!(group_deadline(w, i), i as i64);
        }
    }

    #[test]
    fn closed_form_matches_cascade_oracle() {
        for &(e, p) in &[
            (1i64, 2i64),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
            (4, 7),
            (5, 7),
            (6, 7),
            (7, 8),
            (5, 8),
            (7, 9),
            (8, 9),
            (9, 10),
            (7, 10),
            (11, 12),
            (7, 12),
            (13, 14),
            (1, 1),
        ] {
            let w = Weight::new(e, p);
            for i in 1..=(3 * p as u64) {
                assert_eq!(
                    group_deadline(w, i),
                    group_deadline_by_cascade(w, i),
                    "wt={e}/{p} i={i}"
                );
            }
        }
    }

    #[test]
    fn window_lengths_bound() {
        // Every PF-window has length ≥ 1 and ≤ ⌈1/wt⌉ + 1.
        for &(e, p) in &[(3i64, 4i64), (1, 2), (1, 6), (5, 7), (1, 1), (99, 100)] {
            let w = Weight::new(e, p);
            let cap = pfair_numeric::ceil_div(p, e) + 1;
            for i in 1..=100 {
                let len = window_length(w, i);
                assert!(len >= 1 && len <= cap, "wt={e}/{p} i={i} len={len}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_windows_monotone(e in 1i64..40, p in 1i64..40, i in 1u64..200) {
            prop_assume!(e <= p);
            let w = Weight::new(e, p);
            // Releases and deadlines are nondecreasing in i, and each
            // window is nonempty.
            prop_assert!(release(w, i) < deadline(w, i));
            prop_assert!(release(w, i) <= release(w, i + 1));
            prop_assert!(deadline(w, i) <= deadline(w, i + 1));
            // Consecutive windows overlap by at most one slot.
            prop_assert!(release(w, i + 1) >= deadline(w, i) - 1);
        }

        #[test]
        fn prop_bbit_iff_overlap(e in 1i64..40, p in 1i64..40, i in 1u64..200) {
            prop_assume!(e <= p);
            let w = Weight::new(e, p);
            prop_assert_eq!(bbit(w, i), release(w, i + 1) < deadline(w, i));
        }

        #[test]
        fn prop_group_deadline_closed_form(e in 1i64..30, p in 1i64..30, i in 1u64..120) {
            prop_assume!(e <= p && 2 * e >= p);
            let w = Weight::new(e, p);
            prop_assert_eq!(group_deadline(w, i), group_deadline_by_cascade(w, i));
        }

        #[test]
        fn prop_group_deadline_at_least_deadline(e in 1i64..30, p in 1i64..30, i in 1u64..120) {
            prop_assume!(e <= p && 2 * e >= p);
            let w = Weight::new(e, p);
            prop_assert!(group_deadline(w, i) >= deadline(w, i));
            // And monotone in i.
            prop_assert!(group_deadline(w, i + 1) >= group_deadline(w, i));
        }

        #[test]
        fn prop_lag_consistency(e in 1i64..40, p in 1i64..40, n in 1u64..200) {
            prop_assume!(e <= p);
            // Exactly e subtasks have deadlines within each period:
            // d(T_i) ≤ j·p  ⟺  i ≤ j·e.
            let w = Weight::new(e, p);
            let j = (n as i64 + w.e() - 1) / w.e(); // job of subtask n
            prop_assert!(deadline(w, n) <= j * w.p());
            prop_assert!(release(w, n) >= (j - 1) * w.p());
        }
    }
}
