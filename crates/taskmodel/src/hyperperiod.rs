//! Hyperperiod arithmetic for periodic task systems.
//!
//! The hyperperiod `H = lcm{T.p}` is the natural analysis horizon for
//! synchronous periodic systems: windows repeat with period `H`
//! (`r(T_{i+e·H/p}) = r(T_i) + H`, and likewise for deadlines and group
//! deadlines), and a PD² SFQ schedule of a full-utilization system repeats
//! with period `H` as well — which the simulator tests verify.

use pfair_numeric::{lcm, Rat};

use crate::system::TaskSystem;
use crate::weight::Weight;
use crate::window;

/// The hyperperiod `lcm` of the (reduced) periods of `weights`
/// (`1` for an empty set).
#[must_use]
pub fn hyperperiod_of_weights(weights: &[Weight]) -> i64 {
    weights.iter().fold(1, |h, w| lcm(h, w.p()))
}

/// The hyperperiod of a task system's tasks.
#[must_use]
pub fn hyperperiod(sys: &TaskSystem) -> i64 {
    sys.tasks().iter().fold(1, |h, t| lcm(h, t.weight.p()))
}

/// Number of subtasks a weight-`e/p` task releases per hyperperiod `h`
/// (requires `p | h`).
///
/// # Panics
/// Panics unless `p` divides `h`.
#[must_use]
pub fn subtasks_per_hyperperiod(w: Weight, h: i64) -> i64 {
    assert_eq!(h % w.p(), 0, "hyperperiod must be a multiple of the period");
    h / w.p() * w.e()
}

/// Checks the window-repetition law for the first `jobs` jobs:
/// `r(T_{i+k}) = r(T_i) + h` where `k = e·h/p` subtasks per hyperperiod.
#[must_use]
pub fn windows_repeat(w: Weight, h: i64, jobs: u64) -> bool {
    let k = u64::try_from(subtasks_per_hyperperiod(w, h))
        .expect("subtasks per hyperperiod is positive");
    (1..=jobs * w.e() as u64).all(|i| {
        window::release(w, i + k) == window::release(w, i) + h
            && window::deadline(w, i + k) == window::deadline(w, i) + h
            && window::bbit(w, i + k) == window::bbit(w, i)
            && (w.is_light()
                || window::group_deadline(w, i + k) == window::group_deadline(w, i) + h)
    })
}

/// Exact utilization check at the hyperperiod: the total demand of one
/// hyperperiod equals `H · Σ wt` quanta.
#[must_use]
pub fn demand_per_hyperperiod(sys: &TaskSystem) -> Rat {
    let h = hyperperiod(sys);
    Rat::int(h) * sys.utilization()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release;

    #[test]
    fn hyperperiod_lcm() {
        assert_eq!(
            hyperperiod_of_weights(&[Weight::new(1, 2), Weight::new(1, 3), Weight::new(3, 4)]),
            12
        );
        assert_eq!(hyperperiod_of_weights(&[]), 1);
        // Reduction matters: 2/4 has period 2.
        assert_eq!(hyperperiod_of_weights(&[Weight::new(2, 4)]), 2);
    }

    #[test]
    fn subtask_counts() {
        assert_eq!(subtasks_per_hyperperiod(Weight::new(3, 4), 12), 9);
        assert_eq!(subtasks_per_hyperperiod(Weight::new(1, 6), 12), 2);
        assert_eq!(subtasks_per_hyperperiod(Weight::new(1, 1), 12), 12);
    }

    #[test]
    #[should_panic(expected = "multiple of the period")]
    fn subtask_counts_reject_bad_h() {
        let _ = subtasks_per_hyperperiod(Weight::new(1, 5), 12);
    }

    #[test]
    fn window_repetition_law() {
        for &(e, p) in &[(3i64, 4i64), (1, 2), (2, 3), (5, 6), (1, 6), (7, 8), (1, 1)] {
            let w = Weight::new(e, p);
            let h = lcm(p, 12);
            assert!(windows_repeat(w, h, 3), "wt {e}/{p}");
        }
    }

    #[test]
    fn demand_matches_generated_subtasks() {
        let sys = release::periodic(&[(1, 2), (1, 3), (1, 6)], 6);
        // util = 1; H = 6 ⇒ demand 6 quanta = generated subtask count.
        assert_eq!(demand_per_hyperperiod(&sys), Rat::int(6));
        assert_eq!(sys.num_subtasks(), 6);
    }
}
