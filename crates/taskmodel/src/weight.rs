//! Task weights `wt(T) = T.e / T.p ∈ (0, 1]`.

use core::fmt;

use pfair_numeric::{gcd, Rat};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A task weight: execution cost `e` over period `p`, with `0 < e ≤ p`.
///
/// Stored in lowest terms. All Pfair window quantities depend only on the
/// reduced fraction (e.g. a task with `e = 2, p = 8` has exactly the windows
/// of a `1/4` task), so canonicalizing loses nothing and makes equality
/// behave.
///
/// A task is **heavy** if `wt ≥ 1/2` and **light** otherwise; the group
/// deadline tie-break of PD² only distinguishes heavy tasks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Weight {
    e: i64,
    p: i64,
}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Weight) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    /// Orders by the fraction value (not lexicographically by fields).
    fn cmp(&self, other: &Weight) -> core::cmp::Ordering {
        (i128::from(self.e) * i128::from(other.p)).cmp(&(i128::from(other.e) * i128::from(self.p)))
    }
}

impl Weight {
    /// Creates the weight `e/p`, reduced.
    ///
    /// # Errors
    /// Rejects anything outside `0 < e ≤ p`.
    pub fn checked(e: i64, p: i64) -> Result<Weight, ModelError> {
        if e <= 0 || p <= 0 || e > p {
            return Err(ModelError::InvalidWeight { e, p });
        }
        let g = gcd(e, p);
        Ok(Weight { e: e / g, p: p / g })
    }

    /// Creates the weight `e/p`, panicking on invalid input.
    ///
    /// # Panics
    /// Panics unless `0 < e ≤ p`.
    #[must_use]
    pub fn new(e: i64, p: i64) -> Weight {
        Weight::checked(e, p).expect("invalid weight")
    }

    /// Reduced execution cost (numerator).
    #[must_use]
    pub const fn e(self) -> i64 {
        self.e
    }

    /// Reduced period (denominator).
    #[must_use]
    pub const fn p(self) -> i64 {
        self.p
    }

    /// The weight as an exact rational.
    #[must_use]
    pub fn as_rat(self) -> Rat {
        Rat::new(self.e, self.p)
    }

    /// `true` iff `wt ≥ 1/2`.
    #[must_use]
    pub const fn is_heavy(self) -> bool {
        2 * self.e >= self.p
    }

    /// `true` iff `wt < 1/2`.
    #[must_use]
    pub const fn is_light(self) -> bool {
        !self.is_heavy()
    }

    /// `true` iff `wt = 1` (a full-processor task: one subtask per slot).
    #[must_use]
    pub const fn is_full(self) -> bool {
        self.e == self.p
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.e, self.p)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wt({}/{})", self.e, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_accessors() {
        let w = Weight::new(2, 8);
        assert_eq!((w.e(), w.p()), (1, 4));
        assert_eq!(w.as_rat(), Rat::new(1, 4));
        assert_eq!(w.to_string(), "1/4");
    }

    #[test]
    fn heavy_light_full() {
        assert!(Weight::new(1, 2).is_heavy());
        assert!(Weight::new(3, 4).is_heavy());
        assert!(Weight::new(1, 1).is_heavy());
        assert!(Weight::new(1, 1).is_full());
        assert!(Weight::new(1, 3).is_light());
        assert!(Weight::new(49, 100).is_light());
        assert!(!Weight::new(1, 2).is_light());
        assert!(!Weight::new(1, 2).is_full());
    }

    #[test]
    fn rejects_invalid() {
        assert!(Weight::checked(0, 4).is_err());
        assert!(Weight::checked(5, 4).is_err());
        assert!(Weight::checked(-1, 4).is_err());
        assert!(Weight::checked(1, 0).is_err());
        assert!(Weight::checked(1, -2).is_err());
        assert!(Weight::checked(1, 1).is_ok());
    }

    #[test]
    fn ordering_is_by_fraction() {
        assert_eq!(Weight::new(2, 4), Weight::new(1, 2));
        assert_ne!(Weight::new(1, 2), Weight::new(1, 3));
        assert!(Weight::new(1, 3) < Weight::new(1, 2));
        assert!(Weight::new(3, 4) > Weight::new(2, 3));
        assert!(Weight::new(1, 1) > Weight::new(99, 100));
    }
}
