//! The immutable task system: tasks plus their released subtasks.

use core::fmt;

use pfair_numeric::Rat;
use serde::{Deserialize, Serialize};

use crate::subtask::{Subtask, SubtaskId, SubtaskRef};
use crate::weight::Weight;

/// Identity of a task within a system (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl TaskId {
    /// The index into the system's task table.
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A recurrent task: a weight plus an optional human-readable name.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Identity within the owning system.
    pub id: TaskId,
    /// Weight `wt(T) = e/p`.
    pub weight: Weight,
    /// Display name (defaults to `T<id>`; the paper's examples use letters).
    pub name: String,
}

/// An immutable GIS task system: the unit simulators and analyses consume.
///
/// Holds the task table and the full table of *released* subtasks (up to the
/// construction horizon), each with resolved windows, eligibility, tie-break
/// parameters and predecessor/successor links. Built via
/// [`crate::TaskSystemBuilder`] or the [`crate::release`] helpers; all model
/// constraints (Eqns (5), (6), GIS separation) are enforced at build time,
/// so holders of a `TaskSystem` may assume they hold.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSystem {
    pub(crate) tasks: Vec<Task>,
    /// All released subtasks, grouped by task and ordered by index within
    /// each task (the global order is task-major).
    pub(crate) subtasks: Vec<Subtask>,
    /// For each task, the range of its subtasks in `subtasks`.
    pub(crate) spans: Vec<(u32, u32)>,
}

impl TaskSystem {
    /// The tasks.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// A task by id.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.idx()]
    }

    /// All released subtasks (task-major order).
    #[must_use]
    pub fn subtasks(&self) -> &[Subtask] {
        &self.subtasks
    }

    /// Number of released subtasks.
    #[must_use]
    pub fn num_subtasks(&self) -> usize {
        self.subtasks.len()
    }

    /// A subtask by dense reference.
    #[must_use]
    pub fn subtask(&self, r: SubtaskRef) -> &Subtask {
        &self.subtasks[r.idx()]
    }

    /// Iterates over `(SubtaskRef, &Subtask)` pairs.
    pub fn iter_refs(&self) -> impl Iterator<Item = (SubtaskRef, &Subtask)> {
        self.subtasks
            .iter()
            .enumerate()
            .map(|(i, s)| (SubtaskRef(i as u32), s))
    }

    /// The released subtasks of one task, in index order.
    #[must_use]
    pub fn task_subtasks(&self, id: TaskId) -> &[Subtask] {
        let (lo, hi) = self.spans[id.idx()];
        &self.subtasks[lo as usize..hi as usize]
    }

    /// Dense refs of the released subtasks of one task, in index order.
    pub fn task_subtask_refs(&self, id: TaskId) -> impl Iterator<Item = SubtaskRef> {
        let (lo, hi) = self.spans[id.idx()];
        (lo..hi).map(SubtaskRef)
    }

    /// The half-open range `[lo, hi)` of dense refs belonging to one task.
    #[must_use]
    pub fn task_span(&self, id: TaskId) -> (u32, u32) {
        self.spans[id.idx()]
    }

    /// Looks up the dense ref of a subtask id (binary search within the
    /// task's span). Returns `None` for unreleased (skipped) indices.
    #[must_use]
    pub fn find(&self, id: SubtaskId) -> Option<SubtaskRef> {
        let (lo, hi) = *self.spans.get(id.task.idx())?;
        let span = &self.subtasks[lo as usize..hi as usize];
        span.binary_search_by_key(&id.index, |s| s.id.index)
            .ok()
            .map(|off| SubtaskRef(lo + off as u32))
    }

    /// Total utilization `Σ wt(T)` as an exact rational.
    #[must_use]
    pub fn utilization(&self) -> Rat {
        self.tasks.iter().map(|t| t.weight.as_rat()).sum()
    }

    /// `true` iff the system is feasible on `m` processors
    /// (`Σ wt(T) ≤ m`; §2, citing reference \[2\] of the paper).
    #[must_use]
    pub fn is_feasible(&self, m: u32) -> bool {
        self.utilization() <= Rat::int(i64::from(m))
    }

    /// The latest deadline among released subtasks (0 for an empty system).
    /// Simulation horizons are derived from this.
    #[must_use]
    pub fn max_deadline(&self) -> i64 {
        self.subtasks.iter().map(|s| s.deadline).max().unwrap_or(0)
    }

    /// The latest *group deadline or deadline* among released subtasks —
    /// an upper bound on any time the scheduler can still owe work given
    /// tardiness ≤ 1 (used to size traces).
    #[must_use]
    pub fn horizon(&self) -> i64 {
        self.subtasks
            .iter()
            .map(|s| s.deadline.max(s.group_deadline))
            .max()
            .unwrap_or(0)
            + 2
    }

    /// A copy of this system with every subtask's window shifted right by
    /// `delta_window` slots (`θ += delta_window`, hence `r`, `d`, `D` all
    /// shift) and every eligibility time shifted by `delta_eligible`.
    ///
    /// This is the transformation of §3.3: from `τ^B`, the system `τ` with
    /// every IS-window right-shifted by one slot is obtained via
    /// `shifted(1, 1)`; decreasing eligibility back (the `k`-compliance
    /// construction) corresponds to `shifted(1, 0)`.
    ///
    /// # Panics
    /// Panics if the result would violate `e(T_i) ≤ r(T_i)` (i.e. if
    /// `delta_eligible > delta_window`) or place a window before time 0.
    #[must_use]
    pub fn shifted(&self, delta_window: i64, delta_eligible: i64) -> TaskSystem {
        assert!(
            delta_eligible <= delta_window,
            "shift would make subtasks eligible after their release"
        );
        let mut out = self.clone();
        for s in &mut out.subtasks {
            s.theta += delta_window;
            s.release += delta_window;
            s.deadline += delta_window;
            // Light tasks keep the sentinel D = 0; heavy group deadlines
            // shift with the window.
            if s.group_deadline != 0 {
                s.group_deadline += delta_window;
            }
            s.eligible += delta_eligible;
            assert!(s.eligible >= 0 && s.release >= 0, "shift before time 0");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release;

    fn fig2_system() -> TaskSystem {
        // Fig. 2 task set: A,B,C at 1/6 and D,E,F at 1/2 on M = 2, one
        // hyperperiod.
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn utilization_and_feasibility() {
        let sys = fig2_system();
        assert_eq!(sys.utilization(), Rat::int(2));
        assert!(sys.is_feasible(2));
        assert!(!sys.is_feasible(1));
    }

    #[test]
    fn spans_and_lookup() {
        let sys = fig2_system();
        assert_eq!(sys.num_tasks(), 6);
        // 1/6 tasks have 1 subtask in [0, 6); 1/2 tasks have 3.
        assert_eq!(sys.task_subtasks(TaskId(0)).len(), 1);
        assert_eq!(sys.task_subtasks(TaskId(3)).len(), 3);
        assert_eq!(sys.num_subtasks(), 3 + 9);
        let d2 = sys
            .find(SubtaskId {
                task: TaskId(3),
                index: 2,
            })
            .unwrap();
        let st = sys.subtask(d2);
        assert_eq!((st.release, st.deadline), (2, 4));
        assert!(sys
            .find(SubtaskId {
                task: TaskId(0),
                index: 99
            })
            .is_none());
    }

    #[test]
    fn pred_succ_links() {
        let sys = fig2_system();
        let refs: Vec<_> = sys.task_subtask_refs(TaskId(3)).collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(sys.subtask(refs[0]).pred, None);
        assert_eq!(sys.subtask(refs[0]).succ, Some(refs[1]));
        assert_eq!(sys.subtask(refs[1]).pred, Some(refs[0]));
        assert_eq!(sys.subtask(refs[2]).succ, None);
    }

    #[test]
    fn shifted_moves_windows_and_eligibility() {
        let sys = fig2_system();
        let shifted = sys.shifted(1, 1);
        for (a, b) in sys.subtasks().iter().zip(shifted.subtasks()) {
            assert_eq!(b.release, a.release + 1);
            assert_eq!(b.deadline, a.deadline + 1);
            assert_eq!(b.eligible, a.eligible + 1);
        }
        // shifted(1, 0): windows move, eligibility stays (the k-compliance
        // construction of §3.3 at k = n).
        let hybrid = sys.shifted(1, 0);
        for (a, b) in sys.subtasks().iter().zip(hybrid.subtasks()) {
            assert_eq!(b.release, a.release + 1);
            assert_eq!(b.eligible, a.eligible);
        }
    }

    #[test]
    #[should_panic(expected = "eligible after their release")]
    fn shifted_rejects_bad_deltas() {
        let _ = fig2_system().shifted(0, 1);
    }

    #[test]
    fn horizon_covers_deadlines() {
        let sys = fig2_system();
        assert!(sys.horizon() > sys.max_deadline());
    }
}
