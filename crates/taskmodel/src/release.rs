//! Convenience constructors for common release patterns.
//!
//! These wrap [`TaskSystemBuilder`] for the recurrence models of §2:
//! synchronous periodic systems (every `θ = 0`), IS systems (per-subtask
//! release delays), GIS systems (subtask drops), and early-released
//! variants. Randomized release processes live in `pfair-workload`; the
//! constructors here are deterministic and are what the figure
//! reproductions use.

use crate::builder::TaskSystemBuilder;
use crate::error::ModelError;
use crate::system::{TaskId, TaskSystem};
use crate::weight::Weight;
use crate::window;

/// A synchronous periodic task system: all tasks begin at time 0, no
/// delays, no drops. Subtasks are generated while `r(T_i) < horizon`.
///
/// ```
/// use pfair_taskmodel::release::periodic;
/// let sys = periodic(&[(1, 2), (1, 3)], 6);
/// assert_eq!(sys.num_subtasks(), 3 + 2);
/// ```
#[must_use]
pub fn periodic(weights: &[(i64, i64)], horizon: i64) -> TaskSystem {
    let named: Vec<(String, i64, i64)> = weights
        .iter()
        .enumerate()
        .map(|(k, &(e, p))| (format!("T{k}"), e, p))
        .collect();
    let borrowed: Vec<(&str, i64, i64)> =
        named.iter().map(|(n, e, p)| (n.as_str(), *e, *p)).collect();
    periodic_named(&borrowed, horizon)
}

/// [`periodic`] with explicit task names (the paper's examples use
/// `A, B, C, …`).
#[must_use]
pub fn periodic_named(weights: &[(&str, i64, i64)], horizon: i64) -> TaskSystem {
    let mut b = TaskSystemBuilder::new();
    for &(name, e, p) in weights {
        let t = b.add_named_task(Weight::new(e, p), name);
        push_periodic_until(&mut b, t, horizon);
    }
    b.build()
}

/// Extends `task` with periodic (θ = 0 relative to the task's current last
/// offset) subtasks while `r(T_i) < horizon`.
///
/// For a fresh task this generates the synchronous periodic subtask
/// sequence; after IS delays it continues with the accumulated offset.
pub fn push_periodic_until(b: &mut TaskSystemBuilder, task: TaskId, horizon: i64) {
    // Query existing progress through a probe build would be wasteful; the
    // builder is cheap to extend because we track indices here.
    // This helper is only called on tasks it has itself extended (or fresh
    // ones), so begin at index 1 with θ = 0.
    let weight = b.weight_of(task);
    let mut i = 1u64;
    loop {
        let r = window::release(weight, i);
        if r >= horizon {
            break;
        }
        b.push(task, i, 0, None)
            .expect("periodic generation cannot violate model constraints");
        i += 1;
    }
}

/// Specification of one task's release process for [`structured`].
#[derive(Clone, Debug)]
pub struct ReleaseSpec<'a> {
    /// Display name.
    pub name: &'a str,
    /// Execution cost (weight numerator, unreduced ok).
    pub e: i64,
    /// Period (weight denominator).
    pub p: i64,
    /// Per-index extra delay: `(index, new_theta)` pairs; θ is *absolute*
    /// and must be monotone. Indices not mentioned inherit the θ of the
    /// closest earlier entry (or 0).
    pub delays: &'a [(u64, i64)],
    /// Indices to drop entirely (GIS).
    pub drops: &'a [u64],
    /// Early-release allowance: subtask `T_i` becomes eligible
    /// `max(r(T_i) − early, e(T_{i−1}'s eligibility constraint))`; 0 means
    /// plain IS eligibility `e = r`.
    pub early: i64,
}

impl<'a> ReleaseSpec<'a> {
    /// A plain periodic task.
    #[must_use]
    pub fn periodic(name: &'a str, e: i64, p: i64) -> ReleaseSpec<'a> {
        ReleaseSpec {
            name,
            e,
            p,
            delays: &[],
            drops: &[],
            early: 0,
        }
    }
}

/// Builds a (possibly IS/GIS/early-release) system from per-task specs,
/// generating subtasks while `r(T_i) < horizon`.
///
/// # Errors
/// Propagates any model violation in the specs (e.g. non-monotone delays).
pub fn structured(specs: &[ReleaseSpec<'_>], horizon: i64) -> Result<TaskSystem, ModelError> {
    let mut b = TaskSystemBuilder::new();
    for spec in specs {
        let w = Weight::checked(spec.e, spec.p)?;
        let t = b.add_named_task(w, spec.name);
        let mut theta = 0i64;
        let mut prev_eligible = 0i64;
        let mut i = 1u64;
        loop {
            if let Some(&(_, th)) = spec.delays.iter().find(|&&(idx, _)| idx == i) {
                theta = th;
            }
            let r = theta + window::release(w, i);
            if r >= horizon {
                break;
            }
            if !spec.drops.contains(&i) {
                let eligible = (r - spec.early).max(prev_eligible).max(0).min(r);
                b.push(t, i, theta, Some(eligible))?;
                prev_eligible = eligible;
            }
            i += 1;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_counts() {
        let sys = periodic(&[(3, 4)], 8);
        // Subtasks with r < 8: i = 1..6 (r = 0,1,2,4,5,6).
        assert_eq!(sys.num_subtasks(), 6);
        let sys = periodic(&[(1, 1)], 5);
        assert_eq!(sys.num_subtasks(), 5);
    }

    #[test]
    fn fig1b_is_task() {
        // Fig. 1(b): weight 3/4, T_3 released one unit late (θ = 1).
        let spec = ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[],
            early: 0,
        };
        let sys = structured(&[spec], 8).unwrap();
        let sts = sys.task_subtasks(TaskId(0));
        assert_eq!((sts[0].release, sts[0].deadline), (0, 2));
        assert_eq!((sts[1].release, sts[1].deadline), (1, 3));
        assert_eq!((sts[2].release, sts[2].deadline), (3, 5));
        // Later subtasks inherit the delay.
        assert_eq!((sts[3].release, sts[3].deadline), (5, 7));
    }

    #[test]
    fn fig1c_gis_task() {
        // Fig. 1(c): weight 3/4, T_2 absent, T_3 one unit late.
        let spec = ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[2],
            early: 0,
        };
        let sys = structured(&[spec], 8).unwrap();
        let sts = sys.task_subtasks(TaskId(0));
        assert_eq!(sts[0].id.index, 1);
        assert_eq!(sts[1].id.index, 3);
        assert_eq!((sts[1].release, sts[1].deadline), (3, 5));
        // T_3's predecessor is T_1.
        assert_eq!(sts[1].pred, Some(crate::SubtaskRef(0)));
    }

    #[test]
    fn early_release_spec() {
        let spec = ReleaseSpec {
            name: "T",
            e: 1,
            p: 2,
            delays: &[],
            drops: &[],
            early: 1,
        };
        let sys = structured(&[spec], 6).unwrap();
        let sts = sys.task_subtasks(TaskId(0));
        assert_eq!(sts[0].eligible, 0); // clamped at 0
        assert_eq!(sts[1].eligible, 1); // r = 2, early 1
        assert_eq!(sts[2].eligible, 3); // r = 4
    }

    #[test]
    fn structured_rejects_invalid_weight() {
        assert!(structured(&[ReleaseSpec::periodic("X", 3, 2)], 4).is_err());
    }

    #[test]
    fn names_preserved() {
        let sys = periodic_named(&[("A", 1, 6), ("D", 1, 2)], 6);
        assert_eq!(sys.task(TaskId(0)).name, "A");
        assert_eq!(sys.task(TaskId(1)).name, "D");
    }
}
