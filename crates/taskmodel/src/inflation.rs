//! Overhead accounting by weight inflation.
//!
//! §3 of the paper: *"We henceforth assume that preemption and migration
//! costs are zero. (Such costs can be easily accounted for by inflating
//! task execution costs appropriately.)"* This module makes the remark
//! executable: given a per-quantum overhead budget `ε` (cache refill after
//! a preemption/migration, in quantum units), each task's execution cost
//! is inflated so that the *useful* work per reserved quantum is still one
//! nominal quantum's worth:
//!
//! ```text
//! e' = ⌈ e · (1 + ε) ⌉     (per job, in quanta; period unchanged)
//! ```
//!
//! Inflation can push a task's weight above 1 or the system's utilization
//! above `M`, in which case the inflated system is reported infeasible —
//! exactly the design trade-off an implementer faces when sizing quanta.

use pfair_numeric::Rat;

use crate::error::ModelError;
use crate::weight::Weight;

/// The result of inflating a weight set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InflatedSet {
    /// The inflated weights, positionally matching the input.
    pub weights: Vec<Weight>,
    /// Total inflated utilization.
    pub utilization: Rat,
}

/// Inflates one weight by per-quantum overhead `ε ≥ 0`.
///
/// # Errors
/// [`ModelError::InvalidWeight`] if the inflated cost exceeds the period
/// (the task no longer fits its own period even alone).
pub fn inflate_weight(w: Weight, epsilon: Rat) -> Result<Weight, ModelError> {
    assert!(!epsilon.is_negative(), "overhead must be nonnegative");
    let e_inflated = (Rat::int(w.e()) * (Rat::ONE + epsilon)).ceil();
    Weight::checked(e_inflated, w.p())
}

/// Inflates a whole weight set.
///
/// # Errors
/// Propagates the first weight that no longer fits its period.
pub fn inflate_set(weights: &[Weight], epsilon: Rat) -> Result<InflatedSet, ModelError> {
    let inflated: Result<Vec<Weight>, ModelError> = weights
        .iter()
        .map(|&w| inflate_weight(w, epsilon))
        .collect();
    let weights = inflated?;
    let utilization = weights.iter().map(|w| w.as_rat()).sum();
    Ok(InflatedSet {
        weights,
        utilization,
    })
}

/// The largest per-quantum overhead `ε = k/denominator` (searched over
/// `k = 0, 1, …`) for which the inflated set still fits on `m`
/// processors. Returns `None` when even `ε = 0` does not fit.
#[must_use]
pub fn max_sustainable_overhead(weights: &[Weight], m: u32, denominator: i64) -> Option<Rat> {
    assert!(denominator > 0);
    let mut best = None;
    for k in 0..=denominator {
        let eps = Rat::new(k, denominator);
        match inflate_set(weights, eps) {
            Ok(set) if set.utilization <= Rat::int(i64::from(m)) => best = Some(eps),
            _ => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_overhead_is_identity() {
        let w = Weight::new(3, 4);
        assert_eq!(inflate_weight(w, Rat::ZERO).unwrap(), w);
    }

    #[test]
    fn inflation_rounds_up_to_whole_quanta() {
        // e = 3, ε = 10% ⇒ 3.3 ⇒ 4 quanta.
        let w = Weight::new(3, 8);
        assert_eq!(
            inflate_weight(w, Rat::new(1, 10)).unwrap(),
            Weight::new(4, 8)
        );
        // e = 1 inflates to 2 as soon as ε > 0.
        let w1 = Weight::new(1, 4);
        assert_eq!(
            inflate_weight(w1, Rat::new(1, 100)).unwrap(),
            Weight::new(2, 4)
        );
    }

    #[test]
    fn overflowing_inflation_rejected() {
        // wt = 1 cannot absorb any overhead.
        assert!(inflate_weight(Weight::new(4, 4), Rat::new(1, 10)).is_err());
    }

    #[test]
    fn set_inflation_totals() {
        let ws = [Weight::new(1, 4), Weight::new(1, 4), Weight::new(2, 8)];
        let set = inflate_set(&ws, Rat::new(1, 10)).unwrap();
        // Every e = 1 → 2 (and 2/8 reduces to 1/4 → 2/4).
        assert_eq!(set.utilization, Rat::new(3, 2));
    }

    #[test]
    fn sustainable_overhead_search() {
        // Half-loaded system tolerates substantial inflation.
        let ws = [Weight::new(1, 4), Weight::new(1, 4)];
        let eps = max_sustainable_overhead(&ws, 1, 100).unwrap();
        assert!(eps >= Rat::new(1, 2), "got {eps}");
        // A fully-loaded system tolerates none (any ε > 0 bumps some e up).
        let full = [Weight::new(1, 1)];
        assert_eq!(max_sustainable_overhead(&full, 1, 100), Some(Rat::ZERO));
    }
}
