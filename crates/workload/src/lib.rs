//! Workload generation and experiment sweeps.
//!
//! The paper is analytical — there is no testbed to copy. To validate its
//! theorems empirically (experiments E1–E6 of DESIGN.md) we need:
//!
//! * [`taskgen`] — random *feasible* GIS task systems: weight distributions
//!   (uniform / light / heavy / bimodal), exact-utilization filling so the
//!   fully-loaded case `Σ wt = M` (where Pfair has no slack at all) is
//!   exercised, not just approached;
//! * [`releasegen`] — randomized recurrence: per-subtask IS delays, GIS
//!   drops, early releasing, all within the model constraints enforced by
//!   `pfair-taskmodel`;
//! * [`costgen`] — stochastic actual-cost models (`c(T_i) ∈ (0, 1]`):
//!   uniform, bimodal, and the adversarial near-boundary yields (`1 − δ`)
//!   that maximize DVQ blocking;
//! * [`experiment`] — a deterministic, seedable sweep harness that fans
//!   runs out across threads (crossbeam) and aggregates
//!   tardiness/waste/blocking summaries.
//!
//! Everything is reproducible: a seed fully determines a generated system,
//! its costs, and hence the simulated schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costgen;
pub mod experiment;
pub mod releasegen;
pub mod taskgen;

pub use costgen::{AdversarialYield, BimodalCost, PartialFinalSubtask, UniformCost};
pub use experiment::{run_sweep, ExperimentConfig, ModelKind, RunSummary};
pub use releasegen::{ReleaseConfig, ReleaseKind};
pub use taskgen::{random_weights, TaskGenConfig, WeightDist};
