//! Stochastic actual-cost models.
//!
//! These implement [`pfair_sim::CostModel`] with seeded randomness. All
//! drawn costs are exact rationals on a fixed grid (denominator
//! [`GRID`] = 720720 = lcm(1..13)), so boundary comparisons stay exact and
//! schedules remain reproducible.

use pfair_numeric::Rat;
use pfair_sim::CostModel;
use pfair_taskmodel::{SubtaskRef, TaskSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Denominator of the rational cost grid.
pub const GRID: i64 = 720_720;

/// Uniform costs: `c ~ U{min, …, 1}` on the rational grid.
///
/// Models generic WCET pessimism ("many task invocations will execute for
/// less than their WCETs", §1).
#[derive(Clone, Debug)]
pub struct UniformCost {
    min_num: i64,
    rng: StdRng,
}

impl UniformCost {
    /// Costs uniform in `[min, 1]`; `min ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 < min ≤ 1`.
    #[must_use]
    pub fn new(min: Rat, seed: u64) -> UniformCost {
        assert!(
            min.is_positive() && min <= Rat::ONE,
            "min must be in (0, 1]"
        );
        let min_num = (min * Rat::int(GRID)).ceil();
        UniformCost {
            min_num,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CostModel for UniformCost {
    fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
        let num = self.rng.gen_range(self.min_num..=GRID);
        Rat::new(num, GRID)
    }

    fn denominator_hint(&self) -> Option<i64> {
        // Every draw is num/GRID; reduced denominators all divide GRID.
        Some(GRID)
    }
}

/// Bimodal costs: the full quantum with probability `full_percent`%, else
/// a fixed low cost — jobs either hit their WCET or finish well early.
#[derive(Clone, Debug)]
pub struct BimodalCost {
    full_percent: u8,
    low: Rat,
    rng: StdRng,
}

impl BimodalCost {
    /// `full_percent`% of subtasks cost 1; the rest cost `low ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 < low ≤ 1` and `full_percent ≤ 100`.
    #[must_use]
    pub fn new(full_percent: u8, low: Rat, seed: u64) -> BimodalCost {
        assert!(full_percent <= 100);
        assert!(low.is_positive() && low <= Rat::ONE);
        BimodalCost {
            full_percent,
            low,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CostModel for BimodalCost {
    fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
        if self.rng.gen_range(0u8..100) < self.full_percent {
            Rat::ONE
        } else {
            self.low
        }
    }

    fn denominator_hint(&self) -> Option<i64> {
        i64::try_from(self.low.den()).ok()
    }
}

/// Adversarial near-boundary yields: with probability `yield_percent`%, a
/// subtask executes for `1 − δ` (freeing its processor *just* before the
/// next slot boundary — the timing that maximizes eligibility blocking,
/// per the paper's worst-case discussion); otherwise the full quantum.
#[derive(Clone, Debug)]
pub struct AdversarialYield {
    delta: Rat,
    yield_percent: u8,
    rng: StdRng,
}

impl AdversarialYield {
    /// New adversarial model with the given `δ ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics unless `0 < δ < 1` and `yield_percent ≤ 100`.
    #[must_use]
    pub fn new(delta: Rat, yield_percent: u8, seed: u64) -> AdversarialYield {
        assert!(delta.is_positive() && delta < Rat::ONE);
        assert!(yield_percent <= 100);
        AdversarialYield {
            delta,
            yield_percent,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CostModel for AdversarialYield {
    fn cost(&mut self, _sys: &TaskSystem, _st: SubtaskRef) -> Rat {
        if self.rng.gen_range(0u8..100) < self.yield_percent {
            Rat::ONE - self.delta
        } else {
            Rat::ONE
        }
    }

    fn denominator_hint(&self) -> Option<i64> {
        // 1 − δ has the same reduced denominator as δ; 1 divides it.
        i64::try_from(self.delta.den()).ok()
    }
}

/// Non-integral per-job execution costs — the paper's §4 *future work*
/// direction, realized through the cost layer.
///
/// The Pfair task model requires `T.e` to be an integral number of quanta;
/// real jobs rarely oblige. A job whose true cost is `e − 1 + frac` quanta
/// (for `frac ∈ (0, 1]`) is modelled as the usual `e` subtasks with the
/// *final subtask of every job* executing for only `frac` of its quantum.
/// Under SFQ the residue `1 − frac` is stranded every job; under DVQ it is
/// reclaimed — and Theorem 3 keeps the tardiness of the (conservative,
/// integral) reservation within one quantum.
#[derive(Clone, Debug)]
pub struct PartialFinalSubtask {
    /// The fractional cost of each job's final subtask (`(0, 1]`).
    pub frac: Rat,
}

impl PartialFinalSubtask {
    /// New model; `frac ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 < frac ≤ 1`.
    #[must_use]
    pub fn new(frac: Rat) -> PartialFinalSubtask {
        assert!(frac.is_positive() && frac <= Rat::ONE);
        PartialFinalSubtask { frac }
    }
}

impl CostModel for PartialFinalSubtask {
    fn cost(&mut self, sys: &TaskSystem, st: SubtaskRef) -> Rat {
        let s = sys.subtask(st);
        let e =
            u64::try_from(sys.task(s.id.task).weight.e()).expect("execution numerator is positive");
        // Subtask i is the last of its job iff i ≡ 0 (mod e).
        if s.id.index.is_multiple_of(e) {
            self.frac
        } else {
            Rat::ONE
        }
    }

    fn denominator_hint(&self) -> Option<i64> {
        // Costs are `frac` or 1; both denominators divide `frac`'s.
        i64::try_from(self.frac.den()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_sim::cost::checked_cost;
    use pfair_taskmodel::release;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let sys = release::periodic(&[(1, 2)], 20);
        let mut a = UniformCost::new(Rat::new(1, 4), 9);
        let mut b = UniformCost::new(Rat::new(1, 4), 9);
        for (st, _) in sys.iter_refs() {
            let ca = a.cost(&sys, st);
            let cb = b.cost(&sys, st);
            assert_eq!(ca, cb);
            assert!(ca >= Rat::new(1, 4) && ca <= Rat::ONE);
            let _ = checked_cost(ca, st);
        }
    }

    #[test]
    fn bimodal_takes_both_modes() {
        let sys = release::periodic(&[(1, 1)], 100);
        let mut m = BimodalCost::new(50, Rat::new(1, 3), 4);
        let costs: Vec<Rat> = sys.iter_refs().map(|(st, _)| m.cost(&sys, st)).collect();
        assert!(costs.contains(&Rat::ONE));
        assert!(costs.contains(&Rat::new(1, 3)));
    }

    #[test]
    fn adversarial_yields_one_minus_delta() {
        let sys = release::periodic(&[(1, 1)], 50);
        let delta = Rat::new(1, 100);
        let mut m = AdversarialYield::new(delta, 100, 0);
        for (st, _) in sys.iter_refs() {
            assert_eq!(m.cost(&sys, st), Rat::ONE - delta);
        }
        let mut never = AdversarialYield::new(delta, 0, 0);
        for (st, _) in sys.iter_refs() {
            assert_eq!(never.cost(&sys, st), Rat::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "min must be in (0, 1]")]
    fn uniform_rejects_zero_min() {
        let _ = UniformCost::new(Rat::ZERO, 0);
    }

    #[test]
    fn partial_final_subtask_targets_job_boundaries() {
        // wt 3/4: subtasks 3, 6, 9, … end their jobs.
        let sys = release::periodic(&[(3, 4)], 12);
        let mut m = PartialFinalSubtask::new(Rat::new(2, 5));
        for (st, s) in sys.iter_refs() {
            let c = m.cost(&sys, st);
            if s.id.index.is_multiple_of(3) {
                assert_eq!(c, Rat::new(2, 5), "job-final subtask {:?}", s.id);
            } else {
                assert_eq!(c, Rat::ONE, "mid-job subtask {:?}", s.id);
            }
        }
    }

    #[test]
    fn denominator_hints_cover_every_draw() {
        // Each generator's hint must be a multiple of every reduced
        // denominator it can emit — the contract the simulators' tick fast
        // path relies on to never bail on these models.
        let sys = release::periodic(&[(3, 4), (1, 2)], 40);
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(UniformCost::new(Rat::new(1, 5), 11)),
            Box::new(BimodalCost::new(40, Rat::new(2, 7), 12)),
            Box::new(AdversarialYield::new(Rat::new(1, 1000), 60, 13)),
            Box::new(PartialFinalSubtask::new(Rat::new(3, 8))),
        ];
        for mut m in models {
            let hint = m.denominator_hint().expect("all costgen models hint");
            for (st, _) in sys.iter_refs() {
                let c = m.cost(&sys, st);
                assert_eq!(
                    hint % c.den_i64(),
                    0,
                    "cost {c} off the hinted grid 1/{hint}"
                );
            }
        }
    }

    #[test]
    fn partial_final_subtask_weight_one_task() {
        // Weight-1 tasks: every subtask is its own job's end (e = 1).
        let sys = release::periodic(&[(1, 1)], 4);
        let mut m = PartialFinalSubtask::new(Rat::new(1, 2));
        for (st, _) in sys.iter_refs() {
            assert_eq!(m.cost(&sys, st), Rat::new(1, 2));
        }
    }
}
