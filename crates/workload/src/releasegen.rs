//! Randomized release processes: periodic, IS (late releases), GIS
//! (dropped subtasks), early-released variants.
//!
//! Builds a validated [`TaskSystem`] from a weight set by walking each
//! task's subtask stream up to a horizon, randomly injecting the
//! perturbations the respective model allows:
//!
//! * **IS delays** — with probability `delay_percent`, bump the running
//!   offset `θ` by `1 + Geometric(1/2)` slots (monotone, satisfying
//!   Eq. (5));
//! * **GIS drops** — with probability `drop_percent`, skip the subtask
//!   index entirely;
//! * **early release** — make each subtask eligible up to `early` slots
//!   before its release (clamped to Eq. (6)).
//!
//! Because the builder enforces every constraint, a generated system is a
//! certified GIS system by construction.

use pfair_taskmodel::{TaskSystem, TaskSystemBuilder, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which recurrence model to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseKind {
    /// Synchronous periodic: `θ = 0` throughout.
    Periodic,
    /// Sporadic: jobs may be released late — delays are injected only at
    /// job boundaries (subtask indices `≡ 1 (mod e)`), shifting whole
    /// jobs.
    Sporadic,
    /// Intra-sporadic: random per-subtask release delays, no drops.
    IntraSporadic,
    /// Generalized intra-sporadic: delays and drops.
    Gis,
}

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug)]
pub struct ReleaseConfig {
    /// Recurrence model.
    pub kind: ReleaseKind,
    /// Generate subtasks while `r(T_i) < horizon`.
    pub horizon: i64,
    /// Probability (percent) of an IS delay before a subtask.
    pub delay_percent: u8,
    /// Probability (percent) of dropping a subtask (GIS only).
    pub drop_percent: u8,
    /// Early-release allowance in slots (0 = plain IS eligibility).
    pub early: i64,
    /// Tasks join at a random time in `[0, max_join]` (initial θ; 0 =
    /// everyone synchronous). Dynamic joins are plain IS behaviour: the
    /// first subtask simply carries a positive offset.
    pub max_join: i64,
}

impl ReleaseConfig {
    /// Plain periodic generation to `horizon`.
    #[must_use]
    pub fn periodic(horizon: i64) -> ReleaseConfig {
        ReleaseConfig {
            kind: ReleaseKind::Periodic,
            horizon,
            delay_percent: 0,
            drop_percent: 0,
            early: 0,
            max_join: 0,
        }
    }

    /// A moderately perturbed GIS config.
    #[must_use]
    pub fn gis(horizon: i64) -> ReleaseConfig {
        ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon,
            delay_percent: 10,
            drop_percent: 5,
            early: 0,
            max_join: 0,
        }
    }
}

/// Generates a task system from `weights` under `cfg`. Deterministic in
/// `seed`.
#[must_use]
pub fn generate(weights: &[Weight], cfg: &ReleaseConfig, seed: u64) -> TaskSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskSystemBuilder::new();
    for &w in weights {
        let task = b.add_task(w);
        let mut theta = if cfg.max_join > 0 {
            rng.gen_range(0..=cfg.max_join)
        } else {
            0
        };
        let mut prev_eligible = 0i64;
        let mut i = 1u64;
        let e = w.e() as u64;
        loop {
            let job_start = (i - 1).is_multiple_of(e);
            let may_delay = match cfg.kind {
                ReleaseKind::Periodic => false,
                ReleaseKind::Sporadic => job_start,
                ReleaseKind::IntraSporadic | ReleaseKind::Gis => true,
            };
            if may_delay && percent(&mut rng, cfg.delay_percent) {
                theta += 1 + geometric_half(&mut rng);
            }
            let r = theta + pfair_taskmodel::window::release(w, i);
            if r >= cfg.horizon {
                break;
            }
            let dropped = cfg.kind == ReleaseKind::Gis && percent(&mut rng, cfg.drop_percent);
            if !dropped {
                let eligible = (r - cfg.early).max(prev_eligible).max(0).min(r);
                b.push(task, i, theta, Some(eligible))
                    .expect("generator respects model constraints by construction");
                prev_eligible = eligible;
            }
            i += 1;
        }
    }
    b.build()
}

fn percent(rng: &mut StdRng, pct: u8) -> bool {
    pct > 0 && rng.gen_range(0u8..100) < pct
}

/// Geometric(1/2) on {0, 1, 2, …}, capped at 8 to keep horizons modest.
fn geometric_half(rng: &mut StdRng) -> i64 {
    let mut n = 0;
    while n < 8 && rng.gen_bool(0.5) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_numeric::Rat;

    fn weights() -> Vec<Weight> {
        vec![
            Weight::new(1, 2),
            Weight::new(3, 4),
            Weight::new(1, 6),
            Weight::new(2, 5),
        ]
    }

    #[test]
    fn periodic_matches_deterministic_generator() {
        let ws = weights();
        let sys = generate(&ws, &ReleaseConfig::periodic(20), 99);
        let expected = pfair_taskmodel::release::periodic(
            &ws.iter().map(|w| (w.e(), w.p())).collect::<Vec<_>>(),
            20,
        );
        assert_eq!(sys.num_subtasks(), expected.num_subtasks());
        for (a, b) in sys.subtasks().iter().zip(expected.subtasks()) {
            assert_eq!((a.release, a.deadline), (b.release, b.deadline));
        }
    }

    #[test]
    fn is_delays_preserve_model_constraints() {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::IntraSporadic,
            horizon: 50,
            delay_percent: 30,
            drop_percent: 0,
            early: 0,
            max_join: 0,
        };
        for seed in 0..20 {
            let sys = generate(&weights(), &cfg, seed);
            // Builder validated everything; spot-check monotone offsets.
            for task in sys.tasks() {
                let sts = sys.task_subtasks(task.id);
                for w in sts.windows(2) {
                    assert!(w[0].theta <= w[1].theta);
                    assert!(w[0].eligible <= w[1].eligible);
                }
            }
        }
    }

    #[test]
    fn sporadic_delays_only_whole_jobs() {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Sporadic,
            horizon: 60,
            delay_percent: 40,
            drop_percent: 0,
            early: 0,
            max_join: 0,
        };
        for seed in 0..10 {
            let sys = generate(&weights(), &cfg, seed);
            for task in sys.tasks() {
                let e = task.weight.e() as u64;
                for w in sys.task_subtasks(task.id).windows(2) {
                    // θ may only change at job boundaries.
                    if (w[1].id.index - 1) % e != 0 {
                        assert_eq!(w[0].theta, w[1].theta, "mid-job delay");
                    }
                }
            }
        }
    }

    #[test]
    fn gis_drops_subtask_indices() {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Gis,
            horizon: 200,
            delay_percent: 0,
            drop_percent: 30,
            early: 0,
            max_join: 0,
        };
        let sys = generate(&weights(), &cfg, 3);
        // With 30% drops over a long horizon some index gap must exist.
        let has_gap = sys.tasks().iter().any(|t| {
            sys.task_subtasks(t.id)
                .windows(2)
                .any(|w| w[1].id.index > w[0].id.index + 1)
        });
        assert!(has_gap);
    }

    #[test]
    fn early_release_respected() {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Periodic,
            horizon: 20,
            delay_percent: 0,
            drop_percent: 0,
            early: 2,
            max_join: 0,
        };
        let sys = generate(&weights(), &cfg, 1);
        for s in sys.subtasks() {
            assert!(s.eligible <= s.release);
            assert!(s.release - s.eligible <= 2);
        }
    }

    #[test]
    fn utilization_unchanged_by_release_process() {
        let ws = weights();
        let util: Rat = ws.iter().map(|w| w.as_rat()).sum();
        let sys = generate(&ws, &ReleaseConfig::gis(30), 5);
        assert_eq!(sys.utilization(), util);
    }

    #[test]
    fn joins_produce_initial_offsets() {
        let cfg = ReleaseConfig {
            kind: ReleaseKind::Periodic,
            horizon: 40,
            delay_percent: 0,
            drop_percent: 0,
            early: 0,
            max_join: 10,
        };
        let sys = generate(&weights(), &cfg, 12);
        // Some task joined late...
        assert!(sys
            .tasks()
            .iter()
            .any(|t| sys.task_subtasks(t.id)[0].theta > 0));
        // ...and every first subtask's offset is within the join window.
        for t in sys.tasks() {
            let th = sys.task_subtasks(t.id)[0].theta;
            assert!((0..=10).contains(&th));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ReleaseConfig::gis(40);
        let a = generate(&weights(), &cfg, 11);
        let b = generate(&weights(), &cfg, 11);
        assert_eq!(a, b);
    }
}
