//! The experiment harness: seeded, parallel sweeps over random task
//! systems, producing the aggregates EXPERIMENTS.md reports.
//!
//! One *trial* = generate a weight set (seeded), generate its release
//! process (seeded), pick the cost model (seeded), simulate under the
//! configured quantum model and algorithm, and measure. A *sweep* runs
//! many trials across threads (crossbeam scoped threads; trials are
//! embarrassingly parallel) and aggregates.
//!
//! Trial seeds are derived as `base_seed + trial_index`, so any individual
//! trial — in particular a bound-violating one, should a bug ever produce
//! it — can be re-run in isolation.

use pfair_analysis::{
    context_switch_stats, detect_blocking, migration_stats, response_stats, tardiness_stats,
    waste_stats,
};
use pfair_core::Algorithm;
use pfair_numeric::Rat;
use pfair_sim::{
    simulate_bf, simulate_dvq, simulate_flow, simulate_sfq, simulate_sfq_pdb, simulate_staggered,
    CostModel, FullQuantum, ScaledCost, Schedule,
};
use pfair_taskmodel::TaskSystem;
use serde::{Deserialize, Serialize};

use crate::costgen::{AdversarialYield, BimodalCost, UniformCost};
use crate::releasegen::{self, ReleaseConfig};
use crate::taskgen::{random_weights, TaskGenConfig};

/// Which simulator a trial runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// SFQ with the configured priority algorithm.
    Sfq,
    /// DVQ with the configured priority algorithm.
    Dvq,
    /// Staggered quanta with the configured priority algorithm.
    Staggered,
    /// SFQ driven by the PD^B procedure (algorithm field ignored).
    SfqPdb,
    /// Boundary-Fair: decisions only at period boundaries. Requires a
    /// synchronous periodic release process (algorithm field ignored).
    Bf,
    /// Per-slot allocations extracted from a max flow over the PF-window
    /// network (algorithm field ignored).
    Flow,
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ModelKind::Sfq => "SFQ",
            ModelKind::Dvq => "DVQ",
            ModelKind::Staggered => "staggered",
            ModelKind::SfqPdb => "SFQ/PD^B",
            ModelKind::Bf => "BF",
            ModelKind::Flow => "maxflow",
        })
    }
}

/// Which cost model a trial uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostKind {
    /// Every subtask uses its full quantum.
    Full,
    /// Every subtask costs the same fixed fraction.
    Scaled(Rat),
    /// Uniform on `[min, 1]`.
    Uniform {
        /// Lower bound of the uniform draw.
        min: Rat,
    },
    /// `1` with probability `full_percent`%, else `low`.
    Bimodal {
        /// Percentage of full-quantum subtasks.
        full_percent: u8,
        /// The early-finish cost.
        low: Rat,
    },
    /// `1 − δ` with probability `yield_percent`%, else `1`.
    Adversarial {
        /// The near-boundary yield `δ`.
        delta: Rat,
        /// Percentage of yielding subtasks.
        yield_percent: u8,
    },
    /// Each job's final subtask costs `frac` (§4 future work: non-integral
    /// job costs).
    PartialFinal {
        /// The fractional cost of job-final subtasks.
        frac: Rat,
    },
}

/// Full description of one experiment cell.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Processor count.
    pub m: u32,
    /// Priority algorithm (ignored for [`ModelKind::SfqPdb`],
    /// [`ModelKind::Bf`] and [`ModelKind::Flow`], whose selection
    /// procedures are built in).
    pub algorithm: Algorithm,
    /// Quantum model.
    pub model: ModelKind,
    /// Weight-set generation.
    pub taskgen: TaskGenConfig,
    /// Release-process generation.
    pub release: ReleaseConfig,
    /// Cost model.
    pub cost: CostKind,
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
}

/// Measurements from one trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSummary {
    /// The trial's seed.
    pub seed: u64,
    /// Number of tasks generated.
    pub tasks: usize,
    /// Number of released subtasks.
    pub subtasks: usize,
    /// Maximum subtask tardiness.
    pub max_tardiness: Rat,
    /// Deadline misses (tardiness > 0).
    pub misses: usize,
    /// Observed priority-inversion events.
    pub blocking_events: usize,
    /// Fraction of capacity wasted inside quanta.
    pub wasted_fraction: Rat,
    /// Fraction of capacity spent executing.
    pub busy_fraction: Rat,
    /// Latest completion time.
    pub makespan: Rat,
    /// Inter-processor migrations (adjacent subtasks on different CPUs).
    pub migrations: usize,
    /// Per-processor context switches (chunk boundaries; see
    /// `pfair_analysis::context_switch_stats`).
    pub switches: usize,
    /// Mean response time (eligibility → completion).
    pub mean_response: Rat,
}

/// Builds the cost model for a trial.
fn make_cost(kind: CostKind, seed: u64) -> Box<dyn CostModel + Send> {
    match kind {
        CostKind::Full => Box::new(FullQuantum),
        CostKind::Scaled(c) => Box::new(ScaledCost(c)),
        CostKind::Uniform { min } => Box::new(UniformCost::new(min, seed ^ 0x5eed_c057)),
        CostKind::Bimodal { full_percent, low } => {
            Box::new(BimodalCost::new(full_percent, low, seed ^ 0xb1_b0da1))
        }
        CostKind::Adversarial {
            delta,
            yield_percent,
        } => Box::new(AdversarialYield::new(
            delta,
            yield_percent,
            seed ^ 0xadae_25a1,
        )),
        CostKind::PartialFinal { frac } => Box::new(crate::costgen::PartialFinalSubtask::new(frac)),
    }
}

/// Generates the task system for a trial.
#[must_use]
pub fn make_system(cfg: &ExperimentConfig, seed: u64) -> TaskSystem {
    let weights = random_weights(&cfg.taskgen, seed);
    releasegen::generate(&weights, &cfg.release, seed ^ 0x9e3779b97f4a7c15)
}

/// Runs the configured simulator.
#[must_use]
pub fn simulate(cfg: &ExperimentConfig, sys: &TaskSystem, cost: &mut dyn CostModel) -> Schedule {
    match cfg.model {
        ModelKind::Sfq => simulate_sfq(sys, cfg.m, cfg.algorithm.order(), cost),
        ModelKind::Dvq => simulate_dvq(sys, cfg.m, cfg.algorithm.order(), cost),
        ModelKind::Staggered => simulate_staggered(sys, cfg.m, cfg.algorithm.order(), cost),
        ModelKind::SfqPdb => simulate_sfq_pdb(sys, cfg.m, cost),
        ModelKind::Bf => simulate_bf(sys, cfg.m, cost),
        ModelKind::Flow => simulate_flow(sys, cfg.m, cost),
    }
}

/// Runs a single trial.
#[must_use]
pub fn run_one(cfg: &ExperimentConfig, seed: u64) -> RunSummary {
    let sys = make_system(cfg, seed);
    let mut cost = make_cost(cfg.cost, seed);
    let sched = simulate(cfg, &sys, cost.as_mut());
    let t = tardiness_stats(&sys, &sched);
    let w = waste_stats(&sched);
    let blocking = match cfg.model {
        // Inversions are only meaningful relative to the priority order
        // actually driving the run; BF and maxflow have none, so measure
        // against PD² as the common yardstick.
        ModelKind::SfqPdb | ModelKind::Bf | ModelKind::Flow => {
            detect_blocking(&sys, &sched, Algorithm::Pd2.order())
        }
        _ => detect_blocking(&sys, &sched, cfg.algorithm.order()),
    };
    let migrations = migration_stats(&sys, &sched).migrations;
    let switches = context_switch_stats(&sys, &sched).switches();
    let mean_response = response_stats(&sys, &sched).mean();
    RunSummary {
        seed,
        tasks: sys.num_tasks(),
        subtasks: sys.num_subtasks(),
        max_tardiness: t.max,
        misses: t.misses,
        blocking_events: blocking.len(),
        wasted_fraction: w.wasted_fraction(),
        busy_fraction: w.busy_fraction(),
        makespan: w.makespan,
        migrations,
        switches,
        mean_response,
    }
}

/// Aggregates over a sweep's trials.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Per-trial results, in seed order.
    pub runs: Vec<RunSummary>,
}

impl SweepSummary {
    /// Maximum tardiness across every trial.
    #[must_use]
    pub fn max_tardiness(&self) -> Rat {
        self.runs
            .iter()
            .map(|r| r.max_tardiness)
            .max()
            .unwrap_or(Rat::ZERO)
    }

    /// Total deadline misses across trials.
    #[must_use]
    pub fn total_misses(&self) -> usize {
        self.runs.iter().map(|r| r.misses).sum()
    }

    /// Total subtasks simulated.
    #[must_use]
    pub fn total_subtasks(&self) -> usize {
        self.runs.iter().map(|r| r.subtasks).sum()
    }

    /// Total observed priority inversions.
    #[must_use]
    pub fn total_blocking_events(&self) -> usize {
        self.runs.iter().map(|r| r.blocking_events).sum()
    }

    /// Mean wasted fraction (as `f64`, for reporting).
    #[must_use]
    pub fn mean_wasted_fraction(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.wasted_fraction.to_f64())
            .sum::<f64>()
            / self.runs.len() as f64
    }
}

/// Runs `cfg.trials` trials across `threads` worker threads.
///
/// Results are returned in deterministic (seed) order regardless of thread
/// interleaving.
#[must_use]
pub fn run_sweep(cfg: &ExperimentConfig, threads: usize) -> SweepSummary {
    let threads = threads.max(1);
    let mut runs: Vec<Option<RunSummary>> = vec![None; cfg.trials];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots = parking_lot::Mutex::new(&mut runs);

    // pfair-lint: allow(no-nondeterminism): trial k always uses seed base+k whatever thread claims it, so the sweep's results are independent of the thread count.
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= cfg.trials {
                    break;
                }
                let summary = run_one(cfg, cfg.base_seed + k as u64);
                slots.lock()[k] = Some(summary);
            });
        }
    })
    .expect("experiment worker panicked");

    SweepSummary {
        runs: runs
            .into_iter()
            .map(|r| r.expect("trial completed"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgen::WeightDist;

    fn small_cfg(model: ModelKind, cost: CostKind) -> ExperimentConfig {
        ExperimentConfig {
            m: 2,
            algorithm: Algorithm::Pd2,
            model,
            taskgen: TaskGenConfig {
                target_util: Rat::int(2),
                max_period: 8,
                dist: WeightDist::Uniform,
                fill_exact: true,
            },
            release: ReleaseConfig::periodic(16),
            cost,
            trials: 8,
            base_seed: 1000,
        }
    }

    #[test]
    fn pd2_sfq_never_misses() {
        let cfg = small_cfg(ModelKind::Sfq, CostKind::Full);
        let sweep = run_sweep(&cfg, 4);
        assert_eq!(sweep.runs.len(), 8);
        assert_eq!(sweep.max_tardiness(), Rat::ZERO);
        assert_eq!(sweep.total_misses(), 0);
        assert_eq!(sweep.total_blocking_events(), 0);
    }

    #[test]
    fn pd2_dvq_tardiness_at_most_one() {
        let cfg = small_cfg(
            ModelKind::Dvq,
            CostKind::Adversarial {
                delta: Rat::new(1, 64),
                yield_percent: 60,
            },
        );
        let sweep = run_sweep(&cfg, 4);
        assert!(sweep.max_tardiness() <= Rat::ONE);
    }

    #[test]
    fn sweep_deterministic_across_thread_counts() {
        let cfg = small_cfg(
            ModelKind::Dvq,
            CostKind::Uniform {
                min: Rat::new(1, 2),
            },
        );
        let a = run_sweep(&cfg, 1);
        let b = run_sweep(&cfg, 4);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.max_tardiness, y.max_tardiness);
            assert_eq!(x.makespan, y.makespan);
        }
    }

    #[test]
    fn waste_ordering_sfq_vs_dvq() {
        let scaled = CostKind::Scaled(Rat::new(1, 2));
        let sfq = run_sweep(&small_cfg(ModelKind::Sfq, scaled), 2);
        let dvq = run_sweep(&small_cfg(ModelKind::Dvq, scaled), 2);
        assert!(sfq.mean_wasted_fraction() > 0.0);
        assert_eq!(dvq.mean_wasted_fraction(), 0.0);
    }

    #[test]
    fn partial_final_cost_kind_runs() {
        let cfg = small_cfg(
            ModelKind::Dvq,
            CostKind::PartialFinal {
                frac: Rat::new(1, 2),
            },
        );
        let sweep = run_sweep(&cfg, 2);
        assert!(sweep.max_tardiness() <= Rat::ONE);
        assert_eq!(sweep.mean_wasted_fraction(), 0.0);
    }

    #[test]
    fn pdb_model_runs() {
        let cfg = small_cfg(ModelKind::SfqPdb, CostKind::Full);
        let sweep = run_sweep(&cfg, 2);
        // Theorem 2: tardiness ≤ 1 under PD^B.
        assert!(sweep.max_tardiness() <= Rat::ONE);
    }

    #[test]
    fn bf_model_meets_job_deadlines_on_periodic_sweeps() {
        // BF is exact at every period boundary, so job deadlines are met;
        // subtask-level tardiness stays below one period but Pfair windows
        // may legitimately be violated, so the subtask metric only gets the
        // weaker bound here. The exact boundary law lives in the
        // conformance bank (`bf-boundary-conservation`).
        let cfg = small_cfg(ModelKind::Bf, CostKind::Full);
        let sweep = run_sweep(&cfg, 2);
        assert_eq!(sweep.runs.len(), 8);
        assert!(sweep.max_tardiness() <= Rat::int(8));
    }

    #[test]
    fn flow_model_never_misses() {
        // The maxflow extraction keeps every subtask inside its PF-window,
        // so tardiness is identically zero on feasible systems.
        let cfg = small_cfg(ModelKind::Flow, CostKind::Full);
        let sweep = run_sweep(&cfg, 2);
        assert_eq!(sweep.max_tardiness(), Rat::ZERO);
        assert_eq!(sweep.total_misses(), 0);
    }

    #[test]
    fn flow_model_runs_on_gis_releases() {
        // Unlike BF, the flow family accepts the full GIS release model.
        let mut cfg = small_cfg(ModelKind::Flow, CostKind::Full);
        cfg.release = ReleaseConfig::gis(16);
        let sweep = run_sweep(&cfg, 2);
        assert_eq!(sweep.max_tardiness(), Rat::ZERO);
    }
}
