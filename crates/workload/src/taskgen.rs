//! Random feasible weight sets.
//!
//! Generates task weights `e/p ∈ (0, 1]` under a chosen distribution until
//! a target utilization is reached, then (optionally) adds one exact filler
//! so `Σ wt` equals the target *exactly* — full-utilization systems
//! (`Σ wt = M`) are the regime where Pfair scheduling has zero slack and
//! the paper's bounds are sharpest.

use pfair_numeric::Rat;
use pfair_taskmodel::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight distribution families for random task sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightDist {
    /// `p` uniform in `[2, max_period]`, `e` uniform in `[1, p]`.
    Uniform,
    /// Light tasks only (`wt < 1/2`): `e` uniform in `[1, ⌈p/2⌉ − 1]`.
    Light,
    /// Heavy tasks only (`wt ≥ 1/2`): `e` uniform in `[⌈p/2⌉, p]`.
    Heavy,
    /// Heavy with the given probability (percent, 0–100), else light —
    /// the mix that exercises PD²'s group-deadline tie-break.
    Bimodal {
        /// Probability (in percent) of drawing a heavy task.
        heavy_percent: u8,
    },
}

/// Configuration for [`random_weights`].
///
/// Exact utilization accounting sums weights over a common denominator of
/// `lcm(2..=max_period)`; with the i128-backed [`Rat`] that stays
/// representable up to `max_period` ≈ 100 (the i64-backed `Rat` capped it
/// at ~40). Beyond the representable range arithmetic panics with a
/// diagnostic rather than wrapping.
#[derive(Clone, Copy, Debug)]
pub struct TaskGenConfig {
    /// Target total utilization (must be ≥ 0; callers pass `≤ M` for
    /// feasible systems).
    pub target_util: Rat,
    /// Largest period to draw.
    pub max_period: i64,
    /// Distribution family.
    pub dist: WeightDist,
    /// If `true`, append one exact filler weight so the total equals
    /// `target_util` exactly (the filler's period may exceed
    /// `max_period`).
    pub fill_exact: bool,
}

impl TaskGenConfig {
    /// A full-utilization uniform config for `m` processors.
    #[must_use]
    pub fn full(m: u32, max_period: i64) -> TaskGenConfig {
        TaskGenConfig {
            target_util: Rat::int(i64::from(m)),
            max_period,
            dist: WeightDist::Uniform,
            fill_exact: true,
        }
    }
}

/// Draws a weight from `dist`.
fn draw_weight(rng: &mut StdRng, dist: WeightDist, max_period: i64) -> Weight {
    // Light weights need p ≥ 3 (no e/2 is strictly below 1/2).
    let light_e = |rng: &mut StdRng, p: i64| rng.gen_range(1..=(p - 1) / 2);
    let heavy_e = |rng: &mut StdRng, p: i64| rng.gen_range((p + 1) / 2..=p);
    match dist {
        WeightDist::Uniform => {
            let p = rng.gen_range(2..=max_period.max(2));
            Weight::new(rng.gen_range(1..=p), p)
        }
        WeightDist::Light => {
            let p = rng.gen_range(3..=max_period.max(3));
            Weight::new(light_e(rng, p), p)
        }
        WeightDist::Heavy => {
            let p = rng.gen_range(2..=max_period.max(2));
            Weight::new(heavy_e(rng, p), p)
        }
        WeightDist::Bimodal { heavy_percent } => {
            if rng.gen_range(0u8..100) < heavy_percent {
                let p = rng.gen_range(2..=max_period.max(2));
                Weight::new(heavy_e(rng, p), p)
            } else {
                let p = rng.gen_range(3..=max_period.max(3));
                Weight::new(light_e(rng, p), p)
            }
        }
    }
}

/// Generates a random weight set summing to at most — and with
/// `fill_exact`, exactly — `cfg.target_util`.
///
/// Deterministic in `seed`.
#[must_use]
pub fn random_weights(cfg: &TaskGenConfig, seed: u64) -> Vec<Weight> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = Vec::new();
    let mut total = Rat::ZERO;
    assert!(
        !cfg.target_util.is_negative(),
        "target utilization must be nonnegative"
    );
    loop {
        let w = draw_weight(&mut rng, cfg.dist, cfg.max_period);
        let remaining = cfg.target_util - total;
        if w.as_rat() > remaining {
            // Cannot fit this draw. Fill the exact remainder if asked.
            if cfg.fill_exact && remaining.is_positive() {
                weights.push(Weight::new(remaining.num_i64(), remaining.den_i64()));
                total = cfg.target_util;
            }
            break;
        }
        total += w.as_rat();
        weights.push(w);
        if total == cfg.target_util {
            break;
        }
    }
    debug_assert!(total <= cfg.target_util);
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fill_hits_target() {
        for seed in 0..50 {
            let cfg = TaskGenConfig::full(4, 16);
            let ws = random_weights(&cfg, seed);
            let total: Rat = ws.iter().map(|w| w.as_rat()).sum();
            assert_eq!(total, Rat::int(4), "seed {seed}");
            assert!(ws.iter().all(|w| w.as_rat() <= Rat::ONE));
        }
    }

    #[test]
    fn without_fill_stays_at_or_below_target() {
        for seed in 0..50 {
            let cfg = TaskGenConfig {
                target_util: Rat::new(7, 2),
                max_period: 12,
                dist: WeightDist::Uniform,
                fill_exact: false,
            };
            let total: Rat = random_weights(&cfg, seed).iter().map(|w| w.as_rat()).sum();
            assert!(total <= Rat::new(7, 2));
        }
    }

    #[test]
    fn light_distribution_is_light() {
        let cfg = TaskGenConfig {
            target_util: Rat::int(2),
            max_period: 20,
            dist: WeightDist::Light,
            fill_exact: false,
        };
        for seed in 0..20 {
            for w in random_weights(&cfg, seed) {
                assert!(w.is_light(), "seed {seed}: {w} not light");
            }
        }
    }

    #[test]
    fn heavy_distribution_is_heavy() {
        let cfg = TaskGenConfig {
            target_util: Rat::int(4),
            max_period: 20,
            dist: WeightDist::Heavy,
            fill_exact: false,
        };
        for seed in 0..20 {
            for w in random_weights(&cfg, seed) {
                assert!(w.is_heavy(), "seed {seed}: {w} not heavy");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = TaskGenConfig::full(3, 10);
        assert_eq!(random_weights(&cfg, 42), random_weights(&cfg, 42));
        // Overwhelmingly likely to differ across seeds.
        assert_ne!(random_weights(&cfg, 1), random_weights(&cfg, 2));
    }

    #[test]
    fn former_i64_period_limit_is_gone() {
        // Exact utilization sums over periods up to 48 need a common
        // denominator of lcm(2..=48) > i64::MAX — the i64-backed Rat
        // panicked here; the i128-backed Rat carries the sweep exactly.
        // (`fill_exact` stays off: the exact filler's *period* would be
        // that lcm, which exceeds the i64 task model regardless.)
        let formerly_over = TaskGenConfig {
            target_util: Rat::int(32),
            max_period: 48,
            dist: WeightDist::Uniform,
            fill_exact: false,
        };
        for seed in 0..40u64 {
            let ws = random_weights(&formerly_over, seed);
            let total: Rat = ws.iter().map(|w| w.as_rat()).sum();
            assert!(total <= Rat::int(32), "seed {seed}: total {total}");
            assert!(total > Rat::int(28), "seed {seed}: sweep stopped early");
        }
    }

    #[test]
    fn bimodal_mixes() {
        let cfg = TaskGenConfig {
            target_util: Rat::int(8),
            max_period: 16,
            dist: WeightDist::Bimodal { heavy_percent: 50 },
            fill_exact: false,
        };
        let ws = random_weights(&cfg, 7);
        assert!(ws.iter().any(|w| w.is_heavy()));
        assert!(ws.iter().any(|w| w.is_light()));
    }
}
