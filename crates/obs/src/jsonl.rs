//! Event export: one JSON object per event, newline-delimited.

use crate::{Observer, SchedEvent};

/// Serializes every event eagerly to a JSON line (externally tagged, e.g.
/// `{"Tick":{"at":[3,1]}}`), for `pfairsim run --events <path>` and
/// `pfair-trace::export::events_to_jsonl`.
#[derive(Clone, Debug, Default)]
pub struct JsonlObserver {
    lines: Vec<String>,
}

impl JsonlObserver {
    /// An empty exporter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized events, one JSON object per entry.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the exporter, returning the lines.
    #[must_use]
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }

    /// All lines joined into one newline-terminated JSONL document.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl Observer for JsonlObserver {
    fn on_event(&mut self, ev: &SchedEvent) {
        self.lines
            .push(serde_json::to_string(ev).expect("scheduler events always serialize"));
    }
}
