//! # pfair-obs — streaming observability for the simulators
//!
//! Everything the paper's theorems quantify — lag/LAG (Lemma 1), eligibility
//! and predecessor blocking (§3, Figs 2–3), tardiness (Eq. (7)) — was
//! previously computed *post-hoc* by `pfair-analysis` over a finished
//! [`Schedule`](../pfair_sim/schedule/struct.Schedule.html). This crate adds
//! a streaming probe layer: the simulators emit structured [`SchedEvent`]s
//! through an [`Observer`] generic, and built-in observers reconstruct the
//! same quantities online, event by event.
//!
//! ## Zero-overhead dispatch
//!
//! The observer parameter is *statically* dispatched. [`NoopObserver`] sets
//! [`Observer::ENABLED`] to `false`; every emission site in the simulators is
//! guarded by `if O::ENABLED`, a compile-time constant, so the unobserved hot
//! path monomorphizes to the pre-observability code (verified by the
//! `observability` bench group; see `BENCH_observability.json`).
//!
//! ## Built-in observers
//!
//! * [`MetricsObserver`] — counters and histograms: tardiness, blocking
//!   counts by kind, per-processor busy/idle/waste, context switches.
//! * [`LagObserver`] — exact rational total lag (LAG) at every integral
//!   slot, streamed with O(active windows) state instead of O(trace).
//! * [`BlockingObserver`] — online replication of
//!   `pfair-analysis::blocking::detect_blocking`, emitting
//!   [`SchedEvent::Blocked`] to an inner observer as inversions form.
//! * [`JsonlObserver`] — serializes every event to a JSON line, for
//!   `pfairsim run --events <path>`.
//!
//! Observers compose: a tuple `(A, B)` fans every event out to both, and
//! `BlockingObserver` additionally *generates* `Blocked` events for its
//! inner observer (that is how `MetricsObserver` learns blocking counts).
//!
//! The streaming implementations are proven exactly equivalent (rational
//! equality, not float) to the post-hoc analyses by
//! `tests/observer_equivalence.rs` and conformance invariant #12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod event;
pub mod jsonl;
pub mod lag;
pub mod metrics;

pub use blocking::{BlockingObserver, BlockingRecord};
pub use event::{InversionKind, ReadyCause, SchedEvent};
pub use jsonl::JsonlObserver;
pub use lag::LagObserver;
pub use metrics::{MetricsObserver, DEFAULT_BUCKETS};

/// A sink for scheduler events, statically dispatched.
///
/// Simulator hooks are generic over `O: Observer` and guard every emission
/// site with `if O::ENABLED` — a compile-time constant — so a disabled
/// observer ([`NoopObserver`]) erases the entire instrumentation at
/// monomorphization time.
pub trait Observer {
    /// Whether emission sites should be compiled in. Leave `true` (the
    /// default) for any observer that looks at events.
    const ENABLED: bool = true;

    /// Receives one event. Events arrive with nondecreasing
    /// [`SchedEvent::time`] (the `Released` input-side event excepted).
    fn on_event(&mut self, ev: &SchedEvent);
}

/// The do-nothing observer: disables instrumentation at compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _ev: &SchedEvent) {}
}

/// An observer that records every event verbatim, in arrival order.
///
/// This is how `pfair-runtime` turns a real multi-threaded execution into
/// a first-class artifact: the recorded stream is replayed through
/// `pfair-sim`'s `replay_events` into a `Schedule` the conformance bank
/// can judge. It also serves any test that wants to assert on an exact
/// event sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordingObserver {
    events: Vec<SchedEvent>,
}

impl RecordingObserver {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// The recorded events so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<SchedEvent> {
        self.events
    }
}

impl Observer for RecordingObserver {
    fn on_event(&mut self, ev: &SchedEvent) {
        self.events.push(ev.clone());
    }
}

impl<O: Observer> Observer for &mut O {
    const ENABLED: bool = O::ENABLED;

    #[inline]
    fn on_event(&mut self, ev: &SchedEvent) {
        (**self).on_event(ev);
    }
}

/// Fan-out composition: both halves see every event, in tuple order.
impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn on_event(&mut self, ev: &SchedEvent) {
        self.0.on_event(ev);
        self.1.on_event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_numeric::Time;

    /// An observer that counts events, for composition tests.
    struct Counter(usize);
    impl Observer for Counter {
        fn on_event(&mut self, _ev: &SchedEvent) {
            self.0 += 1;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the contract
    fn enabled_flags_compose() {
        assert!(!NoopObserver::ENABLED);
        assert!(Counter::ENABLED);
        assert!(!<(NoopObserver, NoopObserver)>::ENABLED);
        assert!(<(NoopObserver, Counter)>::ENABLED);
        assert!(<&mut Counter>::ENABLED);
        assert!(!<&mut NoopObserver>::ENABLED);
    }

    #[test]
    fn tuple_fans_out() {
        let mut pair = (Counter(0), Counter(0));
        let ev = SchedEvent::Tick { at: Time::ZERO };
        pair.on_event(&ev);
        pair.on_event(&ev);
        assert_eq!((pair.0 .0, pair.1 .0), (2, 2));
    }
}
