//! The structured scheduler event vocabulary.
//!
//! Every simulator hook emits [`SchedEvent`]s keyed by [`SubtaskId`] (not
//! `SubtaskRef`), so online schedulers — which have no `TaskSystem` in hand —
//! share the same vocabulary as the offline drivers.
//!
//! ## Time ordering
//!
//! Emitters guarantee that event times ([`SchedEvent::time`]) are globally
//! nondecreasing over the stream, with one exception: [`SchedEvent::Released`]
//! is an *input-side* event (a job arrival handed to an online scheduler) and
//! is exempt — its `time()` is `None`. Streaming observers such as the exact
//! lag accountant rely on this ordering to evaluate each integral slot once
//! all events at or before it have been applied.

use pfair_numeric::{Rat, Time};
use pfair_taskmodel::SubtaskId;
use serde::{Serialize, Value};

/// Why a subtask became ready (available for dispatch) at a given instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ReadyCause {
    /// Its eligibility time arrived (the predecessor, if any, was already
    /// complete): readiness was gated by `e(T_i)`.
    Eligibility,
    /// Its predecessor completed after the eligibility time: readiness was
    /// gated by the chain.
    Predecessor,
}

/// The kind of priority inversion behind a `Blocked` event, mirroring
/// `pfair-analysis::BlockingKind` (which the obs crate cannot depend on
/// without a cycle: analysis sits above sim, which sits above obs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum InversionKind {
    /// The victim was eligible (predecessor done) and still waited on
    /// lower-priority work (EB blocking, §3 of the paper).
    Eligibility,
    /// The victim's wait began at its predecessor's completion (PB blocking).
    Predecessor,
}

/// A structured scheduler event.
///
/// Variants cover the full vocabulary of the paper's per-slot reasoning:
/// scheduling instants, dispatch decisions together with their PD² priority
/// key components, quantum completions with deadline verdicts, readiness,
/// idle capacity, and detected priority inversions.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedEvent {
    /// A scheduling instant: a visited SFQ slot boundary, a DVQ event-batch
    /// time, or a staggered boundary batch.
    Tick {
        /// The instant (integral for SFQ, possibly fractional for DVQ).
        at: Time,
    },
    /// A subtask entered the scheduler's horizon (online job submission).
    /// Input-side: exempt from the stream's time ordering.
    Released {
        /// The subtask.
        id: SubtaskId,
        /// Its (integral) release time.
        at: i64,
    },
    /// A subtask became available for dispatch.
    Ready {
        /// The subtask.
        id: SubtaskId,
        /// When it became ready.
        at: Time,
        /// Whether eligibility or the predecessor chain gated readiness.
        cause: ReadyCause,
    },
    /// A dispatch decision: the subtask starts a quantum. Carries the PD²
    /// priority key components (`deadline`, `bbit`, `group_deadline`) the
    /// decision was made with.
    QuantumStart {
        /// The subtask.
        id: SubtaskId,
        /// The processor it runs on.
        proc: u32,
        /// Quantum start time.
        start: Time,
        /// Actual execution cost in `(0, 1]` quanta.
        cost: Rat,
        /// How long the processor is held (end of slot under SFQ/staggered,
        /// `start + cost` under DVQ).
        holds_until: Time,
        /// The subtask's (integral) Pfair deadline `d(T_i)`.
        deadline: i64,
        /// The PD² successor bit `b(T_i)`.
        bbit: bool,
        /// The PD² group deadline `D(T_i)`.
        group_deadline: i64,
    },
    /// A quantum completed and its processor is (logically) released.
    QuantumEnd {
        /// The subtask.
        id: SubtaskId,
        /// The processor it ran on.
        proc: u32,
        /// Completion time (`start + cost`).
        completion: Time,
        /// The subtask's (integral) Pfair deadline.
        deadline: i64,
        /// Capacity wasted by the quantum model (`holds_until - start - cost`;
        /// zero under DVQ, the early-yield remainder under SFQ/staggered).
        waste: Rat,
    },
    /// A subtask completed by its deadline.
    DeadlineHit {
        /// The subtask.
        id: SubtaskId,
        /// Completion time.
        completion: Time,
        /// The deadline it met.
        deadline: i64,
    },
    /// A subtask completed after its deadline.
    DeadlineMiss {
        /// The subtask.
        id: SubtaskId,
        /// Completion time.
        completion: Time,
        /// The deadline it missed.
        deadline: i64,
        /// `completion - deadline` (positive).
        tardiness: Rat,
    },
    /// Processors were left idle at a scheduling instant.
    Idle {
        /// The instant.
        at: Time,
        /// How many processors had no work.
        procs: u32,
    },
    /// A priority inversion was detected at dispatch time: the victim waited
    /// past its ready time while lower-priority subtasks held processors.
    Blocked {
        /// The blocked (victim) subtask.
        victim: SubtaskId,
        /// When it became ready.
        ready_at: Time,
        /// When it was finally dispatched.
        scheduled_at: Time,
        /// Eligibility (EB) or predecessor (PB) blocking.
        kind: InversionKind,
        /// The lower-priority subtasks overlapping its wait, in schedule
        /// order.
        blockers: Vec<SubtaskId>,
    },
}

impl SchedEvent {
    /// The instant this event is anchored to in the stream's global time
    /// order, or `None` for input-side events (`Released`).
    #[must_use]
    pub fn time(&self) -> Option<Time> {
        match self {
            SchedEvent::Released { .. } => None,
            SchedEvent::Tick { at } | SchedEvent::Idle { at, .. } => Some(*at),
            SchedEvent::Ready { at, .. } => Some(*at),
            SchedEvent::QuantumStart { start, .. } => Some(*start),
            SchedEvent::QuantumEnd { completion, .. }
            | SchedEvent::DeadlineHit { completion, .. }
            | SchedEvent::DeadlineMiss { completion, .. } => Some(*completion),
            SchedEvent::Blocked { scheduled_at, .. } => Some(*scheduled_at),
        }
    }
}

fn tagged(tag: &str, fields: Vec<(String, Value)>) -> Value {
    Value::Map(vec![(tag.to_owned(), Value::Map(fields))])
}

fn f(name: &str, v: Value) -> (String, Value) {
    (name.to_owned(), v)
}

// The serde shim's derive handles only plain structs, newtype structs, and
// fieldless enums, so this struct-variant enum serializes by hand, in the
// externally-tagged layout real serde would produce.
impl Serialize for SchedEvent {
    fn to_value(&self) -> Value {
        match self {
            SchedEvent::Tick { at } => tagged("Tick", vec![f("at", at.to_value())]),
            SchedEvent::Released { id, at } => tagged(
                "Released",
                vec![f("id", id.to_value()), f("at", at.to_value())],
            ),
            SchedEvent::Ready { id, at, cause } => tagged(
                "Ready",
                vec![
                    f("id", id.to_value()),
                    f("at", at.to_value()),
                    f("cause", cause.to_value()),
                ],
            ),
            SchedEvent::QuantumStart {
                id,
                proc,
                start,
                cost,
                holds_until,
                deadline,
                bbit,
                group_deadline,
            } => tagged(
                "QuantumStart",
                vec![
                    f("id", id.to_value()),
                    f("proc", proc.to_value()),
                    f("start", start.to_value()),
                    f("cost", cost.to_value()),
                    f("holds_until", holds_until.to_value()),
                    f("deadline", deadline.to_value()),
                    f("bbit", bbit.to_value()),
                    f("group_deadline", group_deadline.to_value()),
                ],
            ),
            SchedEvent::QuantumEnd {
                id,
                proc,
                completion,
                deadline,
                waste,
            } => tagged(
                "QuantumEnd",
                vec![
                    f("id", id.to_value()),
                    f("proc", proc.to_value()),
                    f("completion", completion.to_value()),
                    f("deadline", deadline.to_value()),
                    f("waste", waste.to_value()),
                ],
            ),
            SchedEvent::DeadlineHit {
                id,
                completion,
                deadline,
            } => tagged(
                "DeadlineHit",
                vec![
                    f("id", id.to_value()),
                    f("completion", completion.to_value()),
                    f("deadline", deadline.to_value()),
                ],
            ),
            SchedEvent::DeadlineMiss {
                id,
                completion,
                deadline,
                tardiness,
            } => tagged(
                "DeadlineMiss",
                vec![
                    f("id", id.to_value()),
                    f("completion", completion.to_value()),
                    f("deadline", deadline.to_value()),
                    f("tardiness", tardiness.to_value()),
                ],
            ),
            SchedEvent::Idle { at, procs } => tagged(
                "Idle",
                vec![f("at", at.to_value()), f("procs", procs.to_value())],
            ),
            SchedEvent::Blocked {
                victim,
                ready_at,
                scheduled_at,
                kind,
                blockers,
            } => tagged(
                "Blocked",
                vec![
                    f("victim", victim.to_value()),
                    f("ready_at", ready_at.to_value()),
                    f("scheduled_at", scheduled_at.to_value()),
                    f("kind", kind.to_value()),
                    f("blockers", blockers.to_value()),
                ],
            ),
        }
    }
}
