//! Counter/histogram metrics reconstructed from the event stream.

use crate::{InversionKind, Observer, SchedEvent};
use pfair_numeric::{Rat, Time};
use pfair_taskmodel::{SubtaskId, TaskId};

/// Default number of tardiness-histogram buckets (bucket 0 is "on time";
/// the rest split `(0, 1]` quanta evenly, with the last bucket open-ended).
pub const DEFAULT_BUCKETS: usize = 8;

/// Streaming counters and histograms: tardiness statistics, blocking counts
/// by kind, per-processor busy/idle/waste time, and context switches.
///
/// The tardiness fields replicate `pfair-analysis::tardiness_stats` exactly
/// (rational arithmetic, same worst-subtask tie-break: the smallest
/// [`SubtaskId`] attaining the maximum), and the histogram replicates
/// `tardiness_histogram` bucket for bucket; `tests/observer_equivalence.rs`
/// holds both to rational equality against the post-hoc analyses.
///
/// Blocking counts are populated from [`SchedEvent::Blocked`] events, which
/// only [`crate::BlockingObserver`] generates — wrap this observer inside one
/// to light them up.
#[derive(Clone, Debug)]
pub struct MetricsObserver {
    buckets: usize,
    ticks: u64,
    released: u64,
    ready: u64,
    started: u64,
    completed: u64,
    hits: u64,
    misses: u64,
    total_tardiness: Rat,
    max_tardiness: Rat,
    worst: Option<SubtaskId>,
    histogram: Vec<u64>,
    busy: Vec<Rat>,
    waste: Vec<Rat>,
    switches: Vec<u64>,
    last_task: Vec<Option<TaskId>>,
    eligibility_blocking: u64,
    predecessor_blocking: u64,
    idle_proc_instants: u64,
    end: Time,
}

impl MetricsObserver {
    /// A metrics collector for an `m`-processor run, with
    /// [`DEFAULT_BUCKETS`] tardiness buckets.
    #[must_use]
    pub fn new(m: u32) -> Self {
        Self::with_buckets(m, DEFAULT_BUCKETS)
    }

    /// A metrics collector with an explicit tardiness-histogram resolution
    /// (same convention as `pfair-analysis::tardiness_histogram`).
    ///
    /// # Panics
    /// If `buckets < 2`.
    #[must_use]
    pub fn with_buckets(m: u32, buckets: usize) -> Self {
        assert!(buckets >= 2, "need at least an on-time and a late bucket");
        let m = m as usize;
        MetricsObserver {
            buckets,
            ticks: 0,
            released: 0,
            ready: 0,
            started: 0,
            completed: 0,
            hits: 0,
            misses: 0,
            total_tardiness: Rat::ZERO,
            max_tardiness: Rat::ZERO,
            worst: None,
            histogram: vec![0; buckets],
            busy: vec![Rat::ZERO; m],
            waste: vec![Rat::ZERO; m],
            switches: vec![0; m],
            last_task: vec![None; m],
            eligibility_blocking: 0,
            predecessor_blocking: 0,
            idle_proc_instants: 0,
            end: Time::ZERO,
        }
    }

    fn bucket_of(&self, t: Rat) -> usize {
        if t.is_zero() {
            0
        } else {
            let width = Rat::new(1, (self.buckets - 1) as i64);
            // Beyond-scale tardiness (including an out-of-usize ceiling)
            // lands in the last bin.
            usize::try_from((t / width).ceil())
                .map_or(self.buckets - 1, |bin| bin.min(self.buckets - 1))
        }
    }

    /// Quanta dispatched so far.
    #[must_use]
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Quanta completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Subtasks that completed by their deadline.
    #[must_use]
    pub fn deadline_hits(&self) -> u64 {
        self.hits
    }

    /// Subtasks that completed after their deadline.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.misses
    }

    /// Sum of all positive tardiness values.
    #[must_use]
    pub fn total_tardiness(&self) -> Rat {
        self.total_tardiness
    }

    /// The largest tardiness seen (zero if no miss).
    #[must_use]
    pub fn max_tardiness(&self) -> Rat {
        self.max_tardiness
    }

    /// The smallest [`SubtaskId`] attaining [`Self::max_tardiness`] — the
    /// same subtask `tardiness_stats` reports as `worst`.
    #[must_use]
    pub fn worst(&self) -> Option<SubtaskId> {
        self.worst
    }

    /// Tardiness histogram: bucket 0 counts on-time completions, later
    /// buckets split `(0, 1]` evenly with the last bucket open-ended.
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Blocking events seen, as `(eligibility, predecessor)` counts.
    #[must_use]
    pub fn blocking_counts(&self) -> (u64, u64) {
        (self.eligibility_blocking, self.predecessor_blocking)
    }

    /// Per-processor busy time (sum of actual costs).
    #[must_use]
    pub fn busy(&self) -> &[Rat] {
        &self.busy
    }

    /// Per-processor wasted time (held past the cost by the quantum model).
    #[must_use]
    pub fn waste(&self) -> &[Rat] {
        &self.waste
    }

    /// Per-processor context switches (task changes between consecutive
    /// quanta on the same processor; the first quantum is not a switch).
    #[must_use]
    pub fn switches(&self) -> &[u64] {
        &self.switches
    }

    /// Per-processor idle time over `[0, end]`, where `end` is the latest
    /// hold/completion instant seen: whatever is neither busy nor waste.
    #[must_use]
    pub fn idle(&self) -> Vec<Rat> {
        self.busy
            .iter()
            .zip(&self.waste)
            .map(|(&b, &w)| self.end - b - w)
            .collect()
    }

    /// The latest instant any processor was held to.
    #[must_use]
    pub fn end(&self) -> Time {
        self.end
    }

    /// A deterministic multi-line summary, used by `pfairsim run --metrics`
    /// and diffed against a checked-in snapshot in CI.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "quanta: {} started, {} completed over {} ticks (end {})",
            self.started, self.completed, self.ticks, self.end
        );
        let _ = writeln!(
            out,
            "deadlines: {} hit, {} missed (total tardiness {}, max {}{})",
            self.hits,
            self.misses,
            self.total_tardiness,
            self.max_tardiness,
            match self.worst {
                Some(id) => format!(" at {id:?}"),
                None => String::new(),
            }
        );
        let _ = writeln!(
            out,
            "blocking: {} eligibility, {} predecessor",
            self.eligibility_blocking, self.predecessor_blocking
        );
        let _ = writeln!(
            out,
            "histogram: {:?} (bucket 0 = on time, width 1/{})",
            self.histogram,
            self.buckets - 1
        );
        let idle = self.idle();
        for (k, ((&b, &w), (&sw, &id))) in self
            .busy
            .iter()
            .zip(&self.waste)
            .zip(self.switches.iter().zip(&idle))
            .enumerate()
        {
            let _ = writeln!(
                out,
                "proc {k}: busy {b}, idle {id}, waste {w}, {sw} switches"
            );
        }
        out
    }
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, ev: &SchedEvent) {
        match ev {
            SchedEvent::Tick { .. } => self.ticks += 1,
            SchedEvent::Released { .. } => self.released += 1,
            SchedEvent::Ready { .. } => self.ready += 1,
            SchedEvent::QuantumStart {
                id,
                proc,
                cost,
                holds_until,
                ..
            } => {
                self.started += 1;
                let k = *proc as usize;
                self.busy[k] += *cost;
                if let Some(prev) = self.last_task[k] {
                    if prev != id.task {
                        self.switches[k] += 1;
                    }
                }
                self.last_task[k] = Some(id.task);
                self.end = self.end.max(*holds_until);
            }
            SchedEvent::QuantumEnd {
                proc,
                completion,
                waste,
                ..
            } => {
                self.completed += 1;
                let k = *proc as usize;
                self.waste[k] += *waste;
                self.end = self.end.max(*completion);
            }
            SchedEvent::DeadlineHit { .. } => {
                self.hits += 1;
                self.histogram[0] += 1;
            }
            SchedEvent::DeadlineMiss { id, tardiness, .. } => {
                self.misses += 1;
                self.total_tardiness += *tardiness;
                // Replicates tardiness_stats' strict-> update over task-major
                // iteration: the reported worst subtask is the smallest id
                // attaining the maximum.
                if *tardiness > self.max_tardiness {
                    self.max_tardiness = *tardiness;
                    self.worst = Some(*id);
                } else if *tardiness == self.max_tardiness && self.worst.is_some_and(|w| *id < w) {
                    self.worst = Some(*id);
                }
                let b = self.bucket_of(*tardiness);
                self.histogram[b] += 1;
            }
            SchedEvent::Idle { procs, .. } => self.idle_proc_instants += u64::from(*procs),
            SchedEvent::Blocked { kind, .. } => match kind {
                InversionKind::Eligibility => self.eligibility_blocking += 1,
                InversionKind::Predecessor => self.predecessor_blocking += 1,
            },
        }
    }
}
