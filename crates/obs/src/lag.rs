//! Streaming exact-rational LAG accounting (Lemma 1 of the paper).

use crate::{Observer, SchedEvent};
use pfair_numeric::{Rat, Time};
use pfair_taskmodel::TaskSystem;

/// Streams the system-wide lag `LAG(τ, t)` at every integral slot, with
/// state proportional to the number of *active* windows and in-flight
/// quanta instead of the whole trace.
///
/// Replicates `pfair-analysis::lag::{total_lag, max_lag_over_slots}`
/// exactly: the ideal allocation of a window `[r, d)` at integral `t` is
/// `1` once `t ≥ d`, `(t − r)/(d − r)` while `r < t < d`, and `0` before;
/// the received allocation of a quantum is `1` once `t ≥ completion` and
/// `(t − start)/cost` while `start < t < completion`. Exact `Rat`
/// arithmetic makes summation order irrelevant, so the streaming totals are
/// equal — not approximately equal — to the post-hoc ones
/// (`tests/observer_equivalence.rs`).
///
/// A slot `s` is evaluated as soon as an event with time strictly greater
/// than `s` arrives (events are nondecreasing in time, so everything at or
/// before `s` has been applied by then); call [`LagObserver::finish`] to
/// evaluate the remaining slots up to a horizon once the run ends.
#[derive(Clone, Debug)]
pub struct LagObserver {
    /// All subtask windows `(release, deadline)`, sorted by release.
    windows: Vec<(i64, i64)>,
    cursor: usize,
    /// Windows with `release < next_slot` not yet fully in the past.
    active: Vec<(i64, i64)>,
    /// Count of windows whose deadline has passed (each contributes 1).
    ideal_done: i64,
    /// In-flight quanta `(start, cost, completion)`.
    inflight: Vec<(Time, Rat, Time)>,
    /// Count of completed quanta (each contributes 1).
    recv_done: i64,
    next_slot: i64,
    series: Vec<(i64, Rat)>,
}

impl LagObserver {
    /// A lag accountant for `sys` (copies the window list; the observer
    /// does not borrow the system).
    #[must_use]
    pub fn new(sys: &TaskSystem) -> Self {
        let mut windows: Vec<(i64, i64)> = sys
            .subtasks()
            .iter()
            .map(|s| (s.release, s.deadline))
            .collect();
        windows.sort_unstable();
        LagObserver {
            windows,
            cursor: 0,
            active: Vec::new(),
            ideal_done: 0,
            inflight: Vec::new(),
            recv_done: 0,
            next_slot: 0,
            series: Vec::new(),
        }
    }

    fn eval(&mut self, s: i64) {
        let sr = Rat::int(s);
        while self.cursor < self.windows.len() && self.windows[self.cursor].0 < s {
            self.active.push(self.windows[self.cursor]);
            self.cursor += 1;
        }
        let mut promoted = 0;
        self.active.retain(|&(_, d)| {
            if d <= s {
                promoted += 1;
                false
            } else {
                true
            }
        });
        self.ideal_done += promoted;
        let mut ideal = Rat::int(self.ideal_done);
        for &(r, d) in &self.active {
            ideal += Rat::new(s - r, d - r);
        }

        let mut completed = 0;
        self.inflight.retain(|&(_, _, completion)| {
            if completion <= sr {
                completed += 1;
                false
            } else {
                true
            }
        });
        self.recv_done += completed;
        let mut received = Rat::int(self.recv_done);
        for &(start, cost, _) in &self.inflight {
            if sr > start {
                received += (sr - start) / cost;
            }
        }

        self.series.push((s, ideal - received));
    }

    /// Evaluates all remaining slots through `horizon` inclusive. Call once
    /// after the run; further events must not arrive at or before `horizon`.
    pub fn finish(&mut self, horizon: i64) {
        while self.next_slot <= horizon {
            let s = self.next_slot;
            self.next_slot += 1;
            self.eval(s);
        }
    }

    /// The per-slot series `(t, LAG(τ, t))` evaluated so far.
    #[must_use]
    pub fn series(&self) -> &[(i64, Rat)] {
        &self.series
    }

    /// The maximum LAG over all evaluated slots (`Rat::ZERO` if none),
    /// matching `max_lag_over_slots` when finished to the same horizon.
    #[must_use]
    pub fn max_lag(&self) -> Rat {
        let mut it = self.series.iter().map(|&(_, l)| l);
        match it.next() {
            None => Rat::ZERO,
            Some(first) => it.fold(first, Rat::max),
        }
    }
}

impl Observer for LagObserver {
    fn on_event(&mut self, ev: &SchedEvent) {
        // Evaluate every pending slot strictly before this event's time:
        // all events at or before those slots have already been applied,
        // and this event (time > s) cannot affect them.
        let Some(t) = ev.time() else { return };
        while Rat::int(self.next_slot) < t {
            let s = self.next_slot;
            self.next_slot += 1;
            self.eval(s);
        }
        if let SchedEvent::QuantumStart { start, cost, .. } = ev {
            self.inflight.push((*start, *cost, *start + *cost));
        }
    }
}
