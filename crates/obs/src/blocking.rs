//! Online replication of `pfair-analysis::blocking::detect_blocking`.

use crate::{InversionKind, NoopObserver, Observer, SchedEvent};
use pfair_core::PriorityOrder;
use pfair_numeric::{Rat, Time};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// One detected priority inversion, in `SubtaskRef` terms for direct
/// comparison with the post-hoc `BlockingEvent`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockingRecord {
    /// The blocked subtask.
    pub victim: SubtaskRef,
    /// When it became ready (`max(eligibility, predecessor completion)`).
    pub ready_at: Time,
    /// When it was dispatched.
    pub scheduled_at: Time,
    /// Eligibility (EB) or predecessor (PB) blocking.
    pub kind: InversionKind,
    /// Lower-priority subtasks whose quanta overlap the wait, in
    /// `(start, proc)` order.
    pub blockers: Vec<SubtaskRef>,
}

impl BlockingRecord {
    /// How long the victim waited past its ready time.
    #[must_use]
    pub fn duration(&self) -> Rat {
        self.scheduled_at - self.ready_at
    }
}

/// Detects eligibility/predecessor blocking (§3 of the paper) online, at
/// each dispatch, using the same predicate as the post-hoc
/// `detect_blocking`: the victim was dispatched strictly after its ready
/// time while strictly-lower-priority quanta that started earlier were
/// still running past that ready time.
///
/// Wraps an inner observer; every event is forwarded, and a
/// [`SchedEvent::Blocked`] is *generated* for the inner observer whenever
/// an inversion is found (this is how [`crate::MetricsObserver`] learns its
/// blocking counts). Placement history is retained for the whole run — the
/// post-hoc predicate may reach arbitrarily far back — so memory is
/// O(placements), like the schedule itself.
///
/// Must observe a run from its beginning: predecessor completions are
/// learned from their `QuantumStart` events.
pub struct BlockingObserver<'a, Inner: Observer = NoopObserver> {
    sys: &'a TaskSystem,
    order: &'a dyn PriorityOrder,
    inner: Inner,
    completion_of: Vec<Option<Time>>,
    /// `(start, proc, subtask, completion)` for every quantum seen.
    placements: Vec<(Time, u32, SubtaskRef, Time)>,
    records: Vec<BlockingRecord>,
}

impl<'a> BlockingObserver<'a, NoopObserver> {
    /// A standalone blocking detector for `sys` under `order`.
    #[must_use]
    pub fn new(sys: &'a TaskSystem, order: &'a dyn PriorityOrder) -> Self {
        Self::with_inner(sys, order, NoopObserver)
    }
}

impl<'a, Inner: Observer> BlockingObserver<'a, Inner> {
    /// A blocking detector that forwards all events (plus generated
    /// `Blocked` events) to `inner`.
    #[must_use]
    pub fn with_inner(sys: &'a TaskSystem, order: &'a dyn PriorityOrder, inner: Inner) -> Self {
        BlockingObserver {
            sys,
            order,
            inner,
            completion_of: vec![None; sys.num_subtasks()],
            placements: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The inversions recorded so far, in dispatch order.
    #[must_use]
    pub fn records(&self) -> &[BlockingRecord] {
        &self.records
    }

    /// The wrapped observer.
    #[must_use]
    pub fn inner(&self) -> &Inner {
        &self.inner
    }

    /// Consumes the detector, returning the records sorted by victim (the
    /// order `detect_blocking` reports, since each subtask is dispatched
    /// once) and the inner observer.
    #[must_use]
    pub fn into_parts(self) -> (Vec<BlockingRecord>, Inner) {
        let mut records = self.records;
        records.sort_by_key(|r| r.victim.idx());
        (records, self.inner)
    }
}

impl<Inner: Observer> Observer for BlockingObserver<'_, Inner> {
    fn on_event(&mut self, ev: &SchedEvent) {
        if Inner::ENABLED {
            self.inner.on_event(ev);
        }
        let SchedEvent::QuantumStart {
            id,
            proc,
            start,
            cost,
            ..
        } = ev
        else {
            return;
        };
        let st = self
            .sys
            .find(*id)
            .expect("BlockingObserver saw a subtask outside its system");
        let sub = self.sys.subtask(st);
        let scheduled_at = *start;
        let completion = *start + *cost;
        let eligible = Rat::int(sub.eligible);
        let ready_at = match sub.pred {
            Some(p) => self.completion_of[p.idx()]
                .expect("predecessor dispatched before the observer attached")
                .max(eligible),
            None => eligible,
        };
        self.completion_of[st.idx()] = Some(completion);
        if scheduled_at > ready_at {
            // Same predicate as detect_blocking. Event times are
            // nondecreasing, so every quantum with an earlier start is
            // already in `placements`; same-instant starts are excluded by
            // the strict `<` either way.
            let mut blockers: Vec<(Time, u32, SubtaskRef)> = self
                .placements
                .iter()
                .filter(|&&(p_start, _, p_st, p_completion)| {
                    p_st != st
                        && p_start < scheduled_at
                        && p_completion > ready_at
                        && self.order.precedes(self.sys, st, p_st)
                })
                .map(|&(p_start, p_proc, p_st, _)| (p_start, p_proc, p_st))
                .collect();
            if !blockers.is_empty() {
                // detect_blocking walks placements in (start, proc) order;
                // our event order can interleave processors within a batch.
                blockers.sort_unstable_by_key(|&(s, p, _)| (s, p));
                let kind = if ready_at == eligible {
                    InversionKind::Eligibility
                } else {
                    InversionKind::Predecessor
                };
                let blocker_refs: Vec<SubtaskRef> =
                    blockers.iter().map(|&(_, _, p_st)| p_st).collect();
                if Inner::ENABLED {
                    self.inner.on_event(&SchedEvent::Blocked {
                        victim: *id,
                        ready_at,
                        scheduled_at,
                        kind,
                        blockers: blocker_refs
                            .iter()
                            .map(|&r| self.sys.subtask(r).id)
                            .collect(),
                    });
                }
                self.records.push(BlockingRecord {
                    victim: st,
                    ready_at,
                    scheduled_at,
                    kind,
                    blockers: blocker_refs,
                });
            }
        }
        self.placements.push((scheduled_at, *proc, st, completion));
    }
}
