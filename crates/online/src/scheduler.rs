//! The online DVQ event loop.
//!
//! [`OnlineDvq`] accepts **sporadic job arrivals** at runtime and plays
//! the DVQ model forward: at every instant a processor frees (a quantum
//! completes — possibly early) or a subtask becomes eligible, the
//! highest-PD²-priority ready subtask is dispatched, chosen in
//! `O(log n)` from a binary heap of [`Pd2Key`]s. Semantics are exactly
//! those of `pfair_sim::simulate_dvq` — the cross-check tests drive both
//! on identical workloads and require identical schedules.
//!
//! # Usage
//!
//! ```
//! use pfair_numeric::Rat;
//! use pfair_online::OnlineDvq;
//! use pfair_taskmodel::Weight;
//!
//! let mut sched = OnlineDvq::new(2);
//! let video = sched.add_task(Weight::new(1, 2));
//! let audio = sched.add_task(Weight::new(1, 6));
//! sched.submit_job(video, 0).unwrap();
//! sched.submit_job(audio, 0).unwrap();
//! sched.submit_job(video, 2).unwrap(); // sporadic: ≥ previous + period
//! let log = sched.run_until_idle(&mut |_task, _index| Rat::ONE);
//! assert_eq!(log.len(), 3); // three quantum-length subtasks dispatched
//! assert!(log.iter().all(|a| a.start + a.cost <= Rat::int(a.deadline)));
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pfair_numeric::{QScale, QTime, Rat, Time};
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::window;
use pfair_taskmodel::{SubtaskId, TaskId, Weight};

use crate::key::Pd2Key;

/// A dispatched quantum, as reported by the scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineAssignment {
    /// The task.
    pub task: TaskId,
    /// The subtask index within the task.
    pub index: u64,
    /// Processor the quantum runs on.
    pub proc: u32,
    /// Commencement time.
    pub start: Time,
    /// Actual cost (from the caller's cost source).
    pub cost: Rat,
    /// The subtask's pseudo-deadline (for the caller's tardiness
    /// accounting).
    pub deadline: i64,
}

/// Errors from job submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OnlineError {
    /// Job release precedes the previous job's release plus the period
    /// (sporadic separation violated).
    TooEarly {
        /// Earliest admissible release.
        earliest: i64,
        /// Requested release.
        requested: i64,
    },
    /// Job release lies in the scheduler's past.
    InThePast {
        /// Current scheduler time.
        now: Time,
        /// Requested release.
        requested: i64,
    },
    /// Unknown task id.
    UnknownTask,
}

impl core::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OnlineError::TooEarly {
                earliest,
                requested,
            } => write!(
                f,
                "sporadic separation violated: job released at {requested}, earliest {earliest}"
            ),
            OnlineError::InThePast { now, requested } => {
                write!(f, "job released at {requested} but scheduler time is {now}")
            }
            OnlineError::UnknownTask => f.write_str("unknown task id"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// One not-yet-dispatched subtask of a task's chain.
#[derive(Clone, Debug)]
struct SubSpec {
    index: u64,
    eligible: i64,
    deadline: i64,
    key: Pd2Key,
}

#[derive(Clone, Debug)]
struct TaskState {
    weight: Weight,
    /// Jobs submitted so far.
    jobs: u64,
    /// Release time of the most recent job.
    last_release: Option<i64>,
    /// Subtasks awaiting dispatch, in chain order.
    queue: VecDeque<SubSpec>,
    /// Completion time of the task's most recently completed subtask.
    pred_completion: Time,
    /// `true` while a subtask of this task is ready or running (the chain
    /// head must not be armed twice).
    chain_busy: bool,
    /// `true` while the chain head's activation event is pending.
    head_armed: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A processor completed its quantum (task whose subtask finished).
    ProcFree(u32, TaskId),
    /// A task's chain head becomes ready.
    Activate(TaskId),
}

/// The quantum currently occupying a processor, kept so its end can be
/// announced to an observer: `(subtask, completion, deadline)`.
type RunningQuantum = (SubtaskId, Time, i64);

/// Default tick resolution of the event queue's fast mode:
/// `lcm(1..13)`, the workload generators' cost grid.
const DEFAULT_RESOLUTION: i64 = 720_720;

/// A peeked event instant: the exact time plus, when the queue is in tick
/// mode, its native tick count (so batch-equality checks stay integral).
#[derive(Clone, Copy, Debug)]
struct Instant {
    ticks: Option<QTime>,
    at: Time,
}

/// The scheduler's event heap, in one of two arithmetic modes — the
/// online analogue of `pfair-sim`'s two-tier time domains.
///
/// `Ticks` keys the heap by [`QTime`] counts at a fixed [`QScale`]: every
/// heap comparison is a single `i64` compare. The first time (any cost,
/// eligibility, or completion the scale cannot represent) pushes the queue
/// permanently into `Exact` mode, converting every queued event losslessly
/// — a tick count *is* a rational — so schedules never depend on the mode.
#[derive(Debug)]
enum EventQueue {
    Ticks {
        scale: QScale,
        heap: BinaryHeap<Reverse<(QTime, Ev)>>,
    },
    Exact(BinaryHeap<Reverse<(Time, Ev)>>),
}

impl EventQueue {
    fn ticks(scale: QScale) -> EventQueue {
        EventQueue::Ticks {
            scale,
            heap: BinaryHeap::new(),
        }
    }

    fn peek_instant(&self) -> Option<Instant> {
        match self {
            EventQueue::Ticks { scale, heap } => heap.peek().map(|&Reverse((t, _))| Instant {
                ticks: Some(t),
                at: scale.to_rat(t),
            }),
            EventQueue::Exact(heap) => heap
                .peek()
                .map(|&Reverse((t, _))| Instant { ticks: None, at: t }),
        }
    }

    /// Pops the next event if it is scheduled exactly at `at`. Correct
    /// across a mid-batch migration: tick and exact representations of one
    /// instant are equal as rationals.
    fn pop_at(&mut self, at: Instant) -> Option<Ev> {
        match self {
            EventQueue::Ticks { scale, heap } => {
                let &Reverse((t, ev)) = heap.peek()?;
                let same = match at.ticks {
                    Some(qt) => t == qt,
                    None => scale.to_rat(t) == at.at,
                };
                if same {
                    heap.pop();
                    Some(ev)
                } else {
                    None
                }
            }
            EventQueue::Exact(heap) => {
                let &Reverse((t, ev)) = heap.peek()?;
                if t == at.at {
                    heap.pop();
                    Some(ev)
                } else {
                    None
                }
            }
        }
    }

    fn push(&mut self, at: Time, ev: Ev) {
        if let EventQueue::Ticks { scale, heap } = self {
            match scale.from_rat(at) {
                Some(qt) => {
                    heap.push(Reverse((qt, ev)));
                    return;
                }
                None => self.migrate(),
            }
        }
        let EventQueue::Exact(heap) = self else {
            unreachable!("migrate leaves the queue in exact mode")
        };
        heap.push(Reverse((at, ev)));
    }

    /// Converts the queue to exact mode, losslessly.
    fn migrate(&mut self) {
        if let EventQueue::Ticks { scale, heap } =
            std::mem::replace(self, EventQueue::Exact(BinaryHeap::new()))
        {
            let exact = heap
                .into_iter()
                .map(|Reverse((t, ev))| Reverse((scale.to_rat(t), ev)))
                .collect();
            *self = EventQueue::Exact(exact);
        }
    }
}

/// An online, heap-based PD² scheduler for the DVQ model.
#[derive(Debug)]
pub struct OnlineDvq {
    m: u32,
    now: Time,
    tasks: Vec<TaskState>,
    /// Ready subtasks, min-keyed by PD² priority.
    ready: BinaryHeap<Reverse<(Pd2Key, u32)>>, // (key, task id)
    /// Pending ready specs per task (the spec the key refers to).
    ready_spec: Vec<Option<SubSpec>>,
    events: EventQueue,
    free: Vec<u32>,
    /// Per-processor in-flight quantum. Maintained unconditionally so
    /// observed and unobserved `run_until` calls can be interleaved.
    running: Vec<Option<RunningQuantum>>,
    log: Vec<OnlineAssignment>,
}

impl OnlineDvq {
    /// A scheduler over `m ≥ 1` processors, starting at time 0.
    ///
    /// The event queue starts in its integer-tick fast mode at the
    /// workload cost grid's resolution (`lcm(1..13)` ticks per quantum)
    /// and falls back to exact rational times automatically on the first
    /// off-grid value — see [`Self::with_resolution`].
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: u32) -> OnlineDvq {
        OnlineDvq::with_resolution(m, DEFAULT_RESOLUTION)
    }

    /// [`Self::new`] with an explicit tick resolution for the event
    /// queue's fast mode: event times are kept as integer counts of
    /// `1/ticks_per_quantum` quanta while every cost, eligibility, and
    /// completion lands on that grid, and migrate losslessly to exact
    /// rationals the first time one does not. The resolution never affects
    /// the schedule — only how much of the run enjoys integer heap
    /// comparisons.
    ///
    /// # Panics
    /// Panics if `m == 0` or `ticks_per_quantum < 1`.
    #[must_use]
    pub fn with_resolution(m: u32, ticks_per_quantum: i64) -> OnlineDvq {
        assert!(m >= 1, "need at least one processor");
        OnlineDvq {
            m,
            now: Rat::ZERO,
            tasks: Vec::new(),
            ready: BinaryHeap::new(),
            ready_spec: Vec::new(),
            events: EventQueue::ticks(QScale::new(ticks_per_quantum)),
            free: (0..m).collect(),
            running: vec![None; m as usize],
            log: Vec::new(),
        }
    }

    /// Registers a task; returns its id. Tasks may be added at any time.
    pub fn add_task(&mut self, weight: Weight) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskState {
            weight,
            jobs: 0,
            last_release: None,
            queue: VecDeque::new(),
            pred_completion: Rat::ZERO,
            chain_busy: false,
            head_armed: false,
        });
        self.ready_spec.push(None);
        id
    }

    /// Current scheduler time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Processor count.
    #[must_use]
    pub fn num_processors(&self) -> u32 {
        self.m
    }

    /// Submits the next job of `task`, released at integral time `at`.
    ///
    /// Sporadic semantics: `at` must be at least the previous job's
    /// release plus the task's period, and must not lie in the past.
    ///
    /// # Errors
    /// [`OnlineError`] on separation/past/unknown-task violations.
    pub fn submit_job(&mut self, task: TaskId, at: i64) -> Result<(), OnlineError> {
        self.submit_job_observed(task, at, &mut NoopObserver)
    }

    /// [`Self::submit_job`] with a streaming [`Observer`] attached: emits a
    /// [`SchedEvent::Released`] for every subtask the job contributes
    /// (release events are input-side and exempt from the stream's time
    /// ordering).
    ///
    /// # Errors
    /// [`OnlineError`] on separation/past/unknown-task violations.
    pub fn submit_job_observed<O: Observer>(
        &mut self,
        task: TaskId,
        at: i64,
        obs: &mut O,
    ) -> Result<(), OnlineError> {
        let state = self
            .tasks
            .get_mut(task.idx())
            .ok_or(OnlineError::UnknownTask)?;
        if let Some(prev) = state.last_release {
            let earliest = prev + state.weight.p();
            if at < earliest {
                return Err(OnlineError::TooEarly {
                    earliest,
                    requested: at,
                });
            }
        }
        if Rat::int(at) < self.now {
            return Err(OnlineError::InThePast {
                now: self.now,
                requested: at,
            });
        }
        let w = state.weight;
        let j = state.jobs; // 0-based job counter
        let theta = at - i64::try_from(j).expect("job count") * w.p();
        let first = j * w.e() as u64 + 1;
        for index in first..first + w.e() as u64 {
            let r = theta + window::release(w, index);
            let spec = SubSpec {
                index,
                eligible: r,
                deadline: theta + window::deadline(w, index),
                key: Pd2Key::of(w, SubtaskId { task, index }, index, theta),
            };
            if O::ENABLED {
                obs.on_event(&SchedEvent::Released {
                    id: SubtaskId { task, index },
                    at: r,
                });
            }
            state.queue.push_back(spec);
        }
        state.jobs += 1;
        state.last_release = Some(at);
        self.arm_head(task);
        Ok(())
    }

    /// Arms the chain head's activation event if the task has pending work
    /// and nothing of it is ready/running.
    fn arm_head(&mut self, task: TaskId) {
        let state = &mut self.tasks[task.idx()];
        if state.chain_busy || state.head_armed {
            return;
        }
        let Some(head) = state.queue.front() else {
            return;
        };
        let act = Rat::int(head.eligible).max(state.pred_completion);
        state.head_armed = true;
        self.events.push(act, Ev::Activate(task));
    }

    /// Processes events up to (and including) `horizon`, dispatching with
    /// costs from `cost` (each must lie in `(0, 1]`). Returns the
    /// assignments made during this call, in dispatch order.
    pub fn run_until(
        &mut self,
        horizon: Time,
        cost: &mut dyn FnMut(TaskId, u64) -> Rat,
    ) -> Vec<OnlineAssignment> {
        self.run_until_impl(horizon, cost, &mut NoopObserver)
    }

    /// [`Self::run_until`] with a streaming [`Observer`] attached. With
    /// [`NoopObserver`] this monomorphizes to exactly [`Self::run_until`]'s
    /// code (every emission site is gated by the compile-time
    /// `O::ENABLED`). Quanta still in flight at `horizon` announce their
    /// [`SchedEvent::QuantumEnd`] in whichever later call processes their
    /// completion.
    pub fn run_until_observed<O: Observer>(
        &mut self,
        horizon: Time,
        cost: &mut dyn FnMut(TaskId, u64) -> Rat,
        obs: &mut O,
    ) -> Vec<OnlineAssignment> {
        self.run_until_impl(horizon, cost, obs)
    }

    fn run_until_impl<O: Observer>(
        &mut self,
        horizon: Time,
        cost: &mut dyn FnMut(TaskId, u64) -> Rat,
        obs: &mut O,
    ) -> Vec<OnlineAssignment> {
        let log_start = self.log.len();
        while let Some(instant) = self.events.peek_instant() {
            let t = instant.at;
            if t > horizon {
                break;
            }
            self.now = t;
            if O::ENABLED {
                obs.on_event(&SchedEvent::Tick { at: t });
            }
            // Drain the batch at time t (`pop_at` matches the instant even
            // if an arm within the batch migrates the queue to exact mode).
            while let Some(ev) = self.events.pop_at(instant) {
                match ev {
                    Ev::ProcFree(proc, task) => {
                        let finished = self.running[proc as usize].take();
                        if O::ENABLED {
                            let (id, completion, deadline) =
                                finished.expect("a freed processor was running a quantum");
                            obs.on_event(&SchedEvent::QuantumEnd {
                                id,
                                proc,
                                completion,
                                deadline,
                                waste: Rat::ZERO,
                            });
                            let d = Rat::int(deadline);
                            if completion > d {
                                obs.on_event(&SchedEvent::DeadlineMiss {
                                    id,
                                    completion,
                                    deadline,
                                    tardiness: completion - d,
                                });
                            } else {
                                obs.on_event(&SchedEvent::DeadlineHit {
                                    id,
                                    completion,
                                    deadline,
                                });
                            }
                        }
                        self.free.push(proc);
                        let state = &mut self.tasks[task.idx()];
                        state.chain_busy = false;
                        self.arm_head(task);
                    }
                    Ev::Activate(task) => {
                        let state = &mut self.tasks[task.idx()];
                        state.head_armed = false;
                        if state.chain_busy {
                            continue; // stale arm (job submitted while running)
                        }
                        if let Some(spec) = state.queue.pop_front() {
                            state.chain_busy = true;
                            if O::ENABLED {
                                let cause = if t == Rat::int(spec.eligible) {
                                    ReadyCause::Eligibility
                                } else {
                                    ReadyCause::Predecessor
                                };
                                obs.on_event(&SchedEvent::Ready {
                                    id: SubtaskId {
                                        task,
                                        index: spec.index,
                                    },
                                    at: t,
                                    cause,
                                });
                            }
                            self.ready.push(Reverse((spec.key, task.0)));
                            self.ready_spec[task.idx()] = Some(spec);
                        }
                    }
                }
            }
            // Descending, so `pop()` hands out the lowest index first.
            self.free.sort_unstable_by(|a, b| b.cmp(a));
            // Assign free processors to ready subtasks in priority order.
            while !self.free.is_empty() && !self.ready.is_empty() {
                let Reverse((_, task_raw)) = self.ready.pop().expect("nonempty");
                let task = TaskId(task_raw);
                let spec = self.ready_spec[task.idx()]
                    .take()
                    .expect("ready entry has a spec");
                let proc = self.free.pop().expect("free nonempty");
                let c = cost(task, spec.index);
                assert!(
                    c.is_positive() && c <= Rat::ONE,
                    "cost source produced {c} for T{}_{}; must be in (0, 1]",
                    task.0,
                    spec.index
                );
                let completion = self.now + c;
                let id = SubtaskId {
                    task,
                    index: spec.index,
                };
                if O::ENABLED {
                    obs.on_event(&SchedEvent::QuantumStart {
                        id,
                        proc,
                        start: self.now,
                        cost: c,
                        holds_until: completion,
                        deadline: spec.deadline,
                        bbit: spec.key.bbit,
                        group_deadline: spec.key.group_deadline,
                    });
                }
                self.running[proc as usize] = Some((id, completion, spec.deadline));
                self.log.push(OnlineAssignment {
                    task,
                    index: spec.index,
                    proc,
                    start: self.now,
                    cost: c,
                    deadline: spec.deadline,
                });
                self.tasks[task.idx()].pred_completion = completion;
                self.events.push(completion, Ev::ProcFree(proc, task));
            }
            if O::ENABLED && !self.free.is_empty() {
                obs.on_event(&SchedEvent::Idle {
                    at: t,
                    procs: self.free.len() as u32,
                });
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.log[log_start..].to_vec()
    }

    /// Runs until every submitted job has completed; returns the
    /// assignments made during this call.
    pub fn run_until_idle(
        &mut self,
        cost: &mut dyn FnMut(TaskId, u64) -> Rat,
    ) -> Vec<OnlineAssignment> {
        // Events only exist while work is pending, so an unbounded horizon
        // terminates exactly when the system drains.
        let far = Rat::int(i64::MAX / 2);
        self.run_until(far, cost)
    }

    /// [`Self::run_until_idle`] with a streaming [`Observer`] attached.
    /// Because the system drains completely, every dispatched quantum's
    /// [`SchedEvent::QuantumEnd`] (and deadline verdict) is emitted before
    /// this returns.
    pub fn run_until_idle_observed<O: Observer>(
        &mut self,
        cost: &mut dyn FnMut(TaskId, u64) -> Rat,
        obs: &mut O,
    ) -> Vec<OnlineAssignment> {
        let far = Rat::int(i64::MAX / 2);
        self.run_until_impl(far, cost, obs)
    }

    /// Every assignment made since construction.
    #[must_use]
    pub fn full_log(&self) -> &[OnlineAssignment] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cost() -> impl FnMut(TaskId, u64) -> Rat {
        |_, _| Rat::ONE
    }

    #[test]
    fn dispatches_in_pd2_order() {
        let mut s = OnlineDvq::new(1);
        let light = s.add_task(Weight::new(1, 6));
        let heavy = s.add_task(Weight::new(1, 2));
        s.submit_job(light, 0).unwrap();
        s.submit_job(heavy, 0).unwrap();
        let log = s.run_until_idle(&mut unit_cost());
        // Heavy (d = 2) dispatches before light (d = 6).
        assert_eq!(log[0].task, heavy);
        assert_eq!(log[1].task, light);
    }

    #[test]
    fn sporadic_separation_enforced() {
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        assert!(matches!(
            s.submit_job(t, 1),
            Err(OnlineError::TooEarly { earliest: 2, .. })
        ));
        s.submit_job(t, 5).unwrap(); // late is fine (sporadic)
    }

    #[test]
    fn rejects_past_submissions_and_unknown_tasks() {
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        let _ = s.run_until(Rat::int(4), &mut unit_cost());
        assert!(matches!(
            s.submit_job(t, 3),
            Err(OnlineError::InThePast { .. })
        ));
        assert!(matches!(
            s.submit_job(TaskId(9), 10),
            Err(OnlineError::UnknownTask)
        ));
    }

    #[test]
    fn early_yield_starts_next_quantum_immediately() {
        let mut s = OnlineDvq::new(1);
        let a = s.add_task(Weight::new(1, 2));
        let b = s.add_task(Weight::new(1, 6));
        s.submit_job(a, 0).unwrap();
        s.submit_job(b, 0).unwrap();
        let half = Rat::new(1, 2);
        let log = s.run_until_idle(&mut |_, _| half);
        assert_eq!(log[0].start, Rat::ZERO);
        // Work conservation: B starts the moment A's quantum completes.
        assert_eq!(log[1].start, half);
    }

    #[test]
    fn incremental_run_until() {
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        let first = s.run_until(Rat::int(1), &mut unit_cost());
        assert_eq!(first.len(), 1);
        // Submit the next job mid-flight and continue.
        s.submit_job(t, 2).unwrap();
        let second = s.run_until_idle(&mut unit_cost());
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].start, Rat::int(2));
        assert_eq!(s.full_log().len(), 2);
    }

    #[test]
    fn run_until_does_not_cross_the_horizon() {
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        s.submit_job(t, 2).unwrap();
        s.submit_job(t, 4).unwrap();
        // Horizon 3: only the jobs released at 0 and 2 dispatch.
        let log = s.run_until(Rat::int(3), &mut unit_cost());
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|a| a.start <= Rat::int(3)));
        assert_eq!(s.now(), Rat::int(3));
        // The rest dispatches later.
        let rest = s.run_until_idle(&mut unit_cost());
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].start, Rat::int(4));
    }

    #[test]
    fn cost_source_validated() {
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run_until_idle(&mut |_, _| Rat::int(2))
        }));
        assert!(result.is_err(), "cost 2 must be rejected");
    }

    #[test]
    fn num_processors_accessor() {
        assert_eq!(OnlineDvq::new(5).num_processors(), 5);
    }

    #[test]
    fn coarse_resolution_migrates_without_changing_the_schedule() {
        // Resolution 2 cannot represent cost 1/3: the queue migrates to
        // exact mode mid-run. The log must match both the default (GRID)
        // resolution — which represents 1/3 natively — and resolution 1,
        // which migrates on the very first fractional completion.
        let runs: Vec<Vec<OnlineAssignment>> = [720_720i64, 2, 1]
            .iter()
            .map(|&res| {
                let mut s = OnlineDvq::with_resolution(2, res);
                let a = s.add_task(Weight::new(1, 2));
                let b = s.add_task(Weight::new(1, 3));
                let c = s.add_task(Weight::new(2, 5));
                for (t, p) in [(a, 2), (b, 3), (c, 5)] {
                    for j in 0..4 {
                        s.submit_job(t, j * p).unwrap();
                    }
                }
                s.run_until_idle(&mut |task, _| {
                    if task == b {
                        Rat::new(1, 3)
                    } else {
                        Rat::new(1, 2)
                    }
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn off_grid_eligibility_migrates_cleanly() {
        // An eligibility far past i64 ticks at the default scale forces
        // the queue exact on submission; dispatch must still be correct.
        let mut s = OnlineDvq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        let far = i64::MAX / 720_720 + 10; // unrepresentable as ticks
        s.submit_job(t, far).unwrap();
        let log = s.run_until_idle(&mut unit_cost());
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].start, Rat::int(far));
    }

    #[test]
    fn batch_assignments_use_ascending_processors() {
        // Three subtasks ready at t = 0 on three processors: dispatch
        // order (PD² priority) must map to processors 0, 1, 2.
        let mut s = OnlineDvq::new(3);
        for _ in 0..3 {
            let t = s.add_task(Weight::new(1, 2));
            s.submit_job(t, 0).unwrap();
        }
        let log = s.run_until_idle(&mut unit_cost());
        let procs: Vec<u32> = log
            .iter()
            .filter(|a| a.start == Rat::ZERO)
            .map(|a| a.proc)
            .collect();
        assert_eq!(procs, vec![0, 1, 2]);
    }

    #[test]
    fn deadlines_met_on_feasible_periodic_load() {
        // Full utilization on 2 processors, strictly periodic arrivals.
        let mut s = OnlineDvq::new(2);
        let tasks: Vec<(TaskId, Weight)> = [(1i64, 2i64), (1, 2), (1, 2), (1, 2)]
            .iter()
            .map(|&(e, p)| {
                let w = Weight::new(e, p);
                (s.add_task(w), w)
            })
            .collect();
        for j in 0..8 {
            for &(t, w) in &tasks {
                s.submit_job(t, j * w.p()).unwrap();
            }
        }
        let log = s.run_until_idle(&mut unit_cost());
        assert_eq!(log.len(), 4 * 8);
        for a in &log {
            assert!(a.start + a.cost <= Rat::int(a.deadline), "{a:?}");
        }
    }
}
