//! A tick-driven online scheduler — the SFQ model as an OS kernel would
//! host it.
//!
//! Where [`crate::OnlineDvq`] is event-driven (the DVQ model),
//! [`OnlineSfq`] matches the classical integration: a periodic timer
//! interrupt fires at every slot boundary, the kernel calls
//! [`OnlineSfq::tick`], and the scheduler answers with the ≤ M subtasks to
//! run for the next quantum. Early completions within the slot are simply
//! not reported — the SFQ model holds each processor to the boundary, so
//! the scheduler needs no mid-slot upcalls at all (that simplicity is
//! exactly what the paper's §1 trades against the wasted yield tails).
//!
//! Dispatch order within a tick is PD² via the same [`Pd2Key`] heap as the
//! DVQ scheduler; equivalence with the offline SFQ simulator is asserted
//! in this module's tests.
//!
//! The ready set is maintained *incrementally*: each task with queued work
//! has exactly one entry in either the priority-ordered `ready` heap or
//! the time-ordered `pending` heap (armed at the first slot where both its
//! eligibility and predecessor gates open). A tick drains due `pending`
//! entries and pops ≤ M from `ready` — `O((M + arrivals) log n)` per slot
//! instead of the previous `O(n)` rescan of every registered task.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pfair_numeric::Rat;
use pfair_obs::{NoopObserver, Observer, ReadyCause, SchedEvent};
use pfair_taskmodel::window;
use pfair_taskmodel::{SubtaskId, TaskId, Weight};

use crate::key::Pd2Key;
use crate::scheduler::OnlineError;

/// A subtask handed out by [`OnlineSfq::tick`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TickAssignment {
    /// The task.
    pub task: TaskId,
    /// The subtask index.
    pub index: u64,
    /// Processor (decision order, `0..M`).
    pub proc: u32,
    /// The subtask's pseudo-deadline.
    pub deadline: i64,
}

#[derive(Clone, Debug)]
struct SubSpec {
    index: u64,
    eligible: i64,
    deadline: i64,
    key: Pd2Key,
}

#[derive(Clone, Debug)]
struct TaskState {
    weight: Weight,
    jobs: u64,
    last_release: Option<i64>,
    queue: VecDeque<SubSpec>,
    /// Slot in which the task's most recent subtask ran (`None` if idle);
    /// the successor is ready from the *next* slot on.
    running_slot: Option<i64>,
}

/// Tick-driven online SFQ scheduler (PD² priorities).
#[derive(Debug)]
pub struct OnlineSfq {
    m: u32,
    /// The next slot boundary [`Self::tick`] expects.
    next_slot: i64,
    tasks: Vec<TaskState>,
    /// Heads whose gates are open, by PD² priority. Invariant: every task
    /// with a nonempty queue has exactly one entry in `ready` ∪ `pending`.
    ready: BinaryHeap<Reverse<(Pd2Key, u32)>>,
    /// Heads gated until a future slot: `(first open slot, task)`.
    pending: BinaryHeap<Reverse<(i64, u32)>>,
}

impl OnlineSfq {
    /// A scheduler over `m ≥ 1` processors; the first tick is slot 0.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: u32) -> OnlineSfq {
        assert!(m >= 1, "need at least one processor");
        OnlineSfq {
            m,
            next_slot: 0,
            tasks: Vec::new(),
            ready: BinaryHeap::new(),
            pending: BinaryHeap::new(),
        }
    }

    /// Registers a task.
    pub fn add_task(&mut self, weight: Weight) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskState {
            weight,
            jobs: 0,
            last_release: None,
            queue: VecDeque::new(),
            running_slot: None,
        });
        id
    }

    /// The next slot boundary `tick` will serve.
    #[must_use]
    pub fn next_slot(&self) -> i64 {
        self.next_slot
    }

    /// Submits the next job of `task`, released at slot `at` (sporadic
    /// separation enforced; must not precede the next tick).
    ///
    /// # Errors
    /// [`OnlineError`] on separation/past/unknown-task violations.
    pub fn submit_job(&mut self, task: TaskId, at: i64) -> Result<(), OnlineError> {
        self.submit_job_observed(task, at, &mut NoopObserver)
    }

    /// [`Self::submit_job`] with a streaming [`Observer`] attached: emits a
    /// [`SchedEvent::Released`] for every subtask the job contributes.
    ///
    /// # Errors
    /// [`OnlineError`] on separation/past/unknown-task violations.
    pub fn submit_job_observed<O: Observer>(
        &mut self,
        task: TaskId,
        at: i64,
        obs: &mut O,
    ) -> Result<(), OnlineError> {
        let state = self
            .tasks
            .get_mut(task.idx())
            .ok_or(OnlineError::UnknownTask)?;
        if let Some(prev) = state.last_release {
            let earliest = prev + state.weight.p();
            if at < earliest {
                return Err(OnlineError::TooEarly {
                    earliest,
                    requested: at,
                });
            }
        }
        if at < self.next_slot {
            return Err(OnlineError::InThePast {
                now: pfair_numeric::Rat::int(self.next_slot),
                requested: at,
            });
        }
        let w = state.weight;
        let theta = at - i64::try_from(state.jobs).expect("job count") * w.p();
        let first = state.jobs * w.e() as u64 + 1;
        let was_empty = state.queue.is_empty();
        for index in first..first + w.e() as u64 {
            let r = theta + window::release(w, index);
            if O::ENABLED {
                obs.on_event(&SchedEvent::Released {
                    id: SubtaskId { task, index },
                    at: r,
                });
            }
            state.queue.push_back(SubSpec {
                index,
                eligible: r,
                deadline: theta + window::deadline(w, index),
                key: Pd2Key::of(w, SubtaskId { task, index }, index, theta),
            });
        }
        state.jobs += 1;
        state.last_release = Some(at);
        if was_empty {
            // The task rejoins the ready graph: arm its new head at the
            // first slot where both gates open. (The predecessor gate is
            // vacuous here — submission can't predate `next_slot`, which
            // is already past any prior `running_slot` — but keeping it
            // makes the invariant locally checkable.)
            let head = state.queue.front().expect("job contributes subtasks");
            let open = head
                .eligible
                .max(state.running_slot.map_or(i64::MIN, |s| s + 1));
            self.pending.push(Reverse((open, task.0)));
        }
        Ok(())
    }

    /// The timer interrupt: decides slot `self.next_slot()` and returns
    /// the ≤ M subtasks to run, in decision (processor) order.
    pub fn tick(&mut self) -> Vec<TickAssignment> {
        self.tick_observed(&mut NoopObserver)
    }

    /// [`Self::tick`] with a streaming [`Observer`] attached. With
    /// [`NoopObserver`] this monomorphizes to exactly [`Self::tick`]'s code
    /// (every emission site is gated by the compile-time `O::ENABLED`).
    /// Each dispatched quantum's end and deadline verdict are emitted
    /// within the same tick — under the SFQ model the quantum provably
    /// holds its processor to the boundary at `t + 1`, so nothing about it
    /// remains unknown at decision time.
    pub fn tick_observed<O: Observer>(&mut self, obs: &mut O) -> Vec<TickAssignment> {
        let t = self.next_slot;
        self.next_slot += 1;
        if O::ENABLED {
            obs.on_event(&SchedEvent::Tick { at: Rat::int(t) });
        }
        // Open the gates that reach this slot: due `pending` heads move to
        // the `ready` heap. The heap orders `(slot, task)`, so at a given
        // slot tasks surface in ascending id — the same announcement order
        // the previous full rescan produced.
        while let Some(&Reverse((open, task_raw))) = self.pending.peek() {
            if open > t {
                break;
            }
            self.pending.pop();
            let head = self.tasks[task_raw as usize]
                .queue
                .front()
                .expect("pending task has a queued head");
            if O::ENABLED {
                // First slot at which both gates open: eligibility if that
                // is the binding one, otherwise the predecessor's boundary.
                let cause = if t == head.eligible {
                    ReadyCause::Eligibility
                } else {
                    ReadyCause::Predecessor
                };
                obs.on_event(&SchedEvent::Ready {
                    id: head.key.id,
                    at: Rat::int(t),
                    cause,
                });
            }
            self.ready.push(Reverse((head.key, task_raw)));
        }
        let mut out = Vec::new();
        for proc in 0..self.m {
            let Some(Reverse((_, task_raw))) = self.ready.pop() else {
                break;
            };
            let state = &mut self.tasks[task_raw as usize];
            let spec = state.queue.pop_front().expect("head present");
            state.running_slot = Some(t);
            // Re-arm the successor (if any): eligible and past this
            // quantum's boundary.
            let rearm = state.queue.front().map(|next| next.eligible.max(t + 1));
            if let Some(open) = rearm {
                self.pending.push(Reverse((open, task_raw)));
            }
            if O::ENABLED {
                obs.on_event(&SchedEvent::QuantumStart {
                    id: spec.key.id,
                    proc,
                    start: Rat::int(t),
                    cost: Rat::ONE,
                    holds_until: Rat::int(t + 1),
                    deadline: spec.deadline,
                    bbit: spec.key.bbit,
                    group_deadline: spec.key.group_deadline,
                });
            }
            out.push(TickAssignment {
                task: TaskId(task_raw),
                index: spec.index,
                proc,
                deadline: spec.deadline,
            });
        }
        if O::ENABLED {
            let idle = self.m - out.len() as u32;
            if idle > 0 {
                obs.on_event(&SchedEvent::Idle {
                    at: Rat::int(t),
                    procs: idle,
                });
            }
            // Quantum ends at the boundary t + 1, before the next Tick.
            for a in &out {
                let id = SubtaskId {
                    task: a.task,
                    index: a.index,
                };
                let completion = Rat::int(t + 1);
                obs.on_event(&SchedEvent::QuantumEnd {
                    id,
                    proc: a.proc,
                    completion,
                    deadline: a.deadline,
                    waste: Rat::ZERO,
                });
                if completion > Rat::int(a.deadline) {
                    obs.on_event(&SchedEvent::DeadlineMiss {
                        id,
                        completion,
                        deadline: a.deadline,
                        tardiness: completion - Rat::int(a.deadline),
                    });
                } else {
                    obs.on_event(&SchedEvent::DeadlineHit {
                        id,
                        completion,
                        deadline: a.deadline,
                    });
                }
            }
        }
        out
    }

    /// `true` iff no submitted work remains.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.tasks.iter().all(|t| t.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_numeric::Rat;
    use pfair_sim::{simulate_sfq, FullQuantum};
    use pfair_taskmodel::TaskSystemBuilder;

    /// Drive both the tick scheduler and the offline SFQ simulator on the
    /// same periodic workload; their decisions must match slot for slot.
    #[test]
    fn tick_matches_offline_sfq() {
        let weights = [
            Weight::new(1, 6),
            Weight::new(1, 6),
            Weight::new(1, 6),
            Weight::new(1, 2),
            Weight::new(1, 2),
            Weight::new(1, 2),
        ];
        let jobs = 2u64;

        let mut s = OnlineSfq::new(2);
        let ids: Vec<TaskId> = weights.iter().map(|&w| s.add_task(w)).collect();
        for (&t, &w) in ids.iter().zip(&weights) {
            for j in 0..jobs {
                s.submit_job(t, j as i64 * w.p()).unwrap();
            }
        }

        let mut b = TaskSystemBuilder::new();
        for &w in &weights {
            let t = b.add_task(w);
            for i in 1..=jobs * w.e() as u64 {
                b.push(t, i, 0, None).unwrap();
            }
        }
        let sys = b.build();
        let offline = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);

        let mut ticked = 0usize;
        while !s.is_idle() {
            let slot = s.next_slot();
            for a in s.tick() {
                let st = sys
                    .find(SubtaskId {
                        task: a.task,
                        index: a.index,
                    })
                    .unwrap();
                assert_eq!(
                    offline.start(st),
                    Rat::int(slot),
                    "T{}_{}",
                    a.task.0,
                    a.index
                );
                assert_eq!(offline.placement(st).proc, a.proc);
                ticked += 1;
            }
        }
        assert_eq!(ticked, sys.num_subtasks());
    }

    #[test]
    fn deadlines_met_at_full_utilization() {
        let mut s = OnlineSfq::new(2);
        let ids: Vec<(TaskId, Weight)> = [(1i64, 2i64); 4]
            .iter()
            .map(|&(e, p)| {
                let w = Weight::new(e, p);
                (s.add_task(w), w)
            })
            .collect();
        for j in 0..10i64 {
            for &(t, w) in &ids {
                s.submit_job(t, j * w.p()).unwrap();
            }
        }
        while !s.is_idle() {
            let slot = s.next_slot();
            for a in s.tick() {
                // Running in slot t completes at t + 1 ≤ deadline.
                assert!(slot < a.deadline, "{a:?} late at slot {slot}");
            }
        }
    }

    #[test]
    fn empty_ticks_are_fine() {
        let mut s = OnlineSfq::new(2);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 3).unwrap();
        assert!(s.tick().is_empty()); // slot 0
        assert!(s.tick().is_empty()); // slot 1
        assert!(s.tick().is_empty()); // slot 2
        let a = s.tick(); // slot 3
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].index, 1);
    }

    #[test]
    fn submission_rules_enforced() {
        let mut s = OnlineSfq::new(1);
        let t = s.add_task(Weight::new(1, 2));
        s.submit_job(t, 0).unwrap();
        assert!(matches!(
            s.submit_job(t, 1),
            Err(OnlineError::TooEarly { .. })
        ));
        let _ = s.tick();
        let _ = s.tick();
        let _ = s.tick(); // next slot is now 3
        assert!(matches!(
            s.submit_job(t, 2), // separation OK (≥ 0 + 2), but in the past
            Err(OnlineError::InThePast { .. })
        ));
    }
}
