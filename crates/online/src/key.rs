//! PD² priority as a static key — re-exported from `pfair-core`.
//!
//! [`Pd2Key`] originated here (the online scheduler needed an `Ord` key so
//! ready subtasks could live in a binary heap) and has since been lifted
//! into [`pfair_core::key`], where it powers the keyed dispatch of the
//! offline simulators too and is proven equivalent to the `Pd2` comparator
//! alongside its EPDF/PD siblings. This module remains as the online
//! crate's import path; `Pd2Key::of(weight, id, index, theta)` builds keys
//! straight from the window formulas, with no `TaskSystem` — exactly what
//! an online scheduler, which never materializes one, needs.

pub use pfair_core::key::Pd2Key;

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::{Pd2, PriorityOrder};
    use pfair_taskmodel::release;

    /// The re-exported key still matches the comparator on a
    /// representative system (the exhaustive equivalence suite lives in
    /// `pfair-core`).
    #[test]
    fn reexported_key_matches_comparator() {
        let sys = release::periodic(&[(7, 8), (3, 4), (1, 2), (2, 3), (1, 6)], 24);
        let keys: Vec<(pfair_taskmodel::SubtaskRef, Pd2Key)> = sys
            .iter_refs()
            .map(|(st, s)| {
                let w = sys.task(s.id.task).weight;
                (st, Pd2Key::of(w, s.id, s.id.index, s.theta))
            })
            .collect();
        for &(a, ka) in &keys {
            for &(b, kb) in &keys {
                assert_eq!(ka.cmp(&kb), Pd2.cmp(&sys, a, b));
            }
        }
    }
}
