//! PD² priority as a static, totally ordered key.
//!
//! `pfair-core` exposes PD² as a comparator over a `TaskSystem`; for the
//! online scheduler we need the same order as an `Ord` key so ready
//! subtasks can live in a binary heap. The subtlety is PD²'s *conditional*
//! third rule — the group deadline is compared only when **both** b-bits
//! are 1 — which a naive lexicographic tuple cannot express. [`Pd2Key`]
//! encodes it exactly: the group-deadline component participates only via
//! the custom `Ord`, gated on the b-bit, and the result is proven
//! equivalent to `pfair_core::Pd2`'s total order
//! (`tests` below, plus a cross-crate property test).

use core::cmp::Ordering;

use pfair_taskmodel::{SubtaskId, Weight};
use pfair_taskmodel::window;

/// The PD² total order as a key. Smaller = higher priority, matching
/// `PriorityOrder::cmp` (deadline asc; b = 1 first; for b = 1 pairs,
/// group deadline desc; then heavier weight first; then `(task, index)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pd2Key {
    /// Pseudo-deadline `d(T_i)` (θ-adjusted).
    pub deadline: i64,
    /// The b-bit.
    pub bbit: bool,
    /// Group deadline `D(T_i)` (θ-adjusted; 0 for light tasks).
    pub group_deadline: i64,
    /// Task weight (for the deterministic residual tie-break).
    pub weight: Weight,
    /// Subtask identity (final tie-break).
    pub id: SubtaskId,
}

impl Pd2Key {
    /// Builds the key of subtask `index` of a task with `weight` and IS
    /// offset `theta`.
    #[must_use]
    pub fn of(weight: Weight, id: SubtaskId, index: u64, theta: i64) -> Pd2Key {
        let gd = window::group_deadline(weight, index);
        Pd2Key {
            deadline: theta + window::deadline(weight, index),
            bbit: window::bbit(weight, index),
            group_deadline: if gd == 0 { 0 } else { theta + gd },
            weight,
            id,
        }
    }
}

impl PartialOrd for Pd2Key {
    fn partial_cmp(&self, other: &Pd2Key) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pd2Key {
    fn cmp(&self, other: &Pd2Key) -> Ordering {
        self.deadline
            .cmp(&other.deadline)
            // b = 1 first.
            .then_with(|| other.bbit.cmp(&self.bbit))
            // Group deadline only when both b-bits are set; larger first.
            .then_with(|| {
                if self.bbit && other.bbit {
                    other.group_deadline.cmp(&self.group_deadline)
                } else {
                    Ordering::Equal
                }
            })
            // Heavier weight first, then identity.
            .then_with(|| other.weight.cmp(&self.weight))
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::{Pd2, PriorityOrder};
    use pfair_taskmodel::release;
    use proptest::prelude::*;

    /// The key order must coincide with the comparator's total order on
    /// every pair of a representative system.
    #[test]
    fn key_order_matches_comparator() {
        let sys = release::periodic(
            &[(7, 8), (3, 4), (1, 2), (2, 3), (1, 6), (5, 6), (1, 1), (5, 12)],
            24,
        );
        let keys: Vec<(pfair_taskmodel::SubtaskRef, Pd2Key)> = sys
            .iter_refs()
            .map(|(st, s)| {
                let w = sys.task(s.id.task).weight;
                (st, Pd2Key::of(w, s.id, s.id.index, s.theta))
            })
            .collect();
        for &(a, ka) in &keys {
            for &(b, kb) in &keys {
                assert_eq!(
                    ka.cmp(&kb),
                    Pd2.cmp(&sys, a, b),
                    "{:?} vs {:?}",
                    sys.subtask(a).id,
                    sys.subtask(b).id
                );
            }
        }
    }

    #[test]
    fn conditional_group_deadline_gating() {
        // Two heavy b = 0 subtasks with different D must tie through the
        // D stage and fall to weight/id — exactly like the comparator.
        // wt 1/2 with different θ: d equal requires matching θ… instead
        // compare equal-weight b = 0 at same deadline from two tasks.
        let w = Weight::new(1, 2);
        let a = Pd2Key::of(
            w,
            SubtaskId {
                task: pfair_taskmodel::TaskId(0),
                index: 1,
            },
            1,
            0,
        );
        let b = Pd2Key::of(
            w,
            SubtaskId {
                task: pfair_taskmodel::TaskId(1),
                index: 1,
            },
            1,
            0,
        );
        assert!(!a.bbit && !b.bbit);
        assert_eq!(a.cmp(&b), core::cmp::Ordering::Less); // id tie-break
    }

    proptest! {
        /// Key equivalence over random weights/indices/offsets.
        #[test]
        fn prop_key_matches_comparator(
            e1 in 1i64..12, p1 in 1i64..12, i1 in 1u64..40, th1 in 0i64..6,
            e2 in 1i64..12, p2 in 1i64..12, i2 in 1u64..40, th2 in 0i64..6,
        ) {
            prop_assume!(e1 <= p1 && e2 <= p2);
            // Build a two-task system exposing exactly these subtasks.
            let mut b = pfair_taskmodel::TaskSystemBuilder::new();
            let w1 = Weight::new(e1, p1);
            let w2 = Weight::new(e2, p2);
            let t1 = b.add_task(w1);
            let t2 = b.add_task(w2);
            b.push(t1, i1, th1, None).unwrap();
            b.push(t2, i2, th2, None).unwrap();
            let sys = b.build();
            let (ra, sa) = sys.iter_refs().next().unwrap();
            let (rb, sb) = sys.iter_refs().nth(1).unwrap();
            let ka = Pd2Key::of(w1, sa.id, i1, th1);
            let kb = Pd2Key::of(w2, sb.id, i2, th2);
            prop_assert_eq!(ka.cmp(&kb), Pd2.cmp(&sys, ra, rb));
            prop_assert_eq!(kb.cmp(&ka), Pd2.cmp(&sys, rb, ra));
        }
    }
}
