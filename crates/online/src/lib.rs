//! An **online** PD² scheduler for the DVQ model.
//!
//! The simulators in `pfair-sim` consume a fully pre-generated
//! [`pfair_taskmodel::TaskSystem`] — the right shape for reproducing the
//! paper's figures and sweeps. A deployment, however, sees its workload
//! *online*: sporadic jobs arrive at runtime, the scheduler must decide
//! "what runs now" in sub-linear time, and nothing about the future is
//! known. This crate provides that embedding:
//!
//! * [`key::Pd2Key`] — PD² priority as a *static, totally ordered key*
//!   (deadline, b-bit, conditional group deadline, weight, identity),
//!   proven equivalent to the comparator in `pfair-core` by test, so the
//!   ready queue can be a binary heap with `O(log n)` dispatch instead of
//!   an `O(n)` scan;
//! * [`tick::OnlineSfq`] — the SFQ counterpart as a kernel would host
//!   it: a `tick()` per slot boundary returns the ≤ M subtasks to run;
//! * [`scheduler::OnlineDvq`] — the event loop of the DVQ model
//!   ("a new quantum begins immediately" when a subtask yields), driven by
//!   sporadic job submissions and a caller-supplied cost source, emitting
//!   the resulting quantum assignments.
//!
//! Both schedulers also come in `*_observed` variants that stream
//! [`pfair_obs::SchedEvent`]s to a [`pfair_obs::Observer`] — see
//! [`OnlineDvq::run_until_observed`] and [`OnlineSfq::tick_observed`]. The
//! unobserved entry points delegate with [`pfair_obs::NoopObserver`] and
//! compile to the same code.
//!
//! The headline guarantee carries over unchanged: as long as the submitted
//! workload is feasible (`Σ wt ≤ M`, job separations ≥ periods), every
//! subtask completes within one quantum of its Pfair pseudo-deadline
//! (Theorem 3) — asserted in this crate's tests and cross-checked against
//! the offline simulator on identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod key;
pub mod scheduler;
pub mod tick;

pub use key::Pd2Key;
pub use scheduler::{OnlineAssignment, OnlineDvq, OnlineError};
pub use tick::{OnlineSfq, TickAssignment};
