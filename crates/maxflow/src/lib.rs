//! Integer maximum flow via Dinic's algorithm.
//!
//! Substrate for the Pfair *schedulability oracle*
//! (`pfair-analysis::schedulability`): the classical feasibility proofs for
//! (G)IS task systems [Baruah et al.; Anderson & Srinivasan] reduce
//! "a valid schedule exists" to "a bipartite flow saturates", with subtasks
//! feeding per-(task, slot) exclusivity nodes feeding slot nodes of
//! capacity `M`. That oracle cross-checks the simulators in this workspace
//! without sharing any code with them, so it is deliberately a separate,
//! dependency-free crate.
//!
//! The implementation is a standard adjacency-list Dinic: BFS level graph
//! plus blocking-flow DFS with iteration pointers. On the unit-capacity
//! bipartite graphs the oracle builds, Dinic runs in `O(E·√V)` — far below
//! anything that matters at simulation scale.
//!
//! ```
//! use pfair_maxflow::FlowNetwork;
//! let mut net = FlowNetwork::new(4); // s=0, a=1, b=2, t=3
//! net.add_edge(0, 1, 2);
//! net.add_edge(0, 2, 1);
//! net.add_edge(1, 3, 1);
//! net.add_edge(2, 3, 2);
//! assert_eq!(net.max_flow(0, 3), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A directed flow network with integer capacities.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Per-node adjacency: indices into `edges`.
    adj: Vec<Vec<u32>>,
    /// Flat edge list; edge `2k+1` is the residual twin of edge `2k`.
    edges: Vec<Edge>,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    to: u32,
    cap: i64,
}

/// Handle to an edge, for querying its flow after [`FlowNetwork::max_flow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeId(u32);

impl FlowNetwork {
    /// A network with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> FlowNetwork {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap ≥ 0`; returns a
    /// handle for flow queries.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        assert!(cap >= 0, "negative capacity");
        let id = self.edges.len() as u32;
        self.edges.push(Edge { to: to as u32, cap });
        self.edges.push(Edge {
            to: from as u32,
            cap: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        EdgeId(id)
    }

    /// Flow currently on an edge (meaningful after [`Self::max_flow`]).
    #[must_use]
    pub fn flow(&self, e: EdgeId) -> i64 {
        // Flow pushed = residual twin's capacity.
        self.edges[e.0 as usize + 1].cap
    }

    /// Augments the `s → t` flow to its maximum (Dinic) and returns the
    /// flow **added by this call**. The network holds its residual state
    /// between calls, so the method is *incremental*: callers may add
    /// edges with [`Self::add_edge`] after a solve and call `max_flow`
    /// again — only the new augmenting paths are found, previous flow is
    /// never recomputed (the flow-network scheduling engine patches its
    /// per-task demand into the graph this way). The cumulative flow is
    /// the sum of the values returned across calls; per-edge flow is
    /// interrogated via [`Self::flow`].
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS: build level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &eid in &self.adj[u] {
                    let e = self.edges[eid as usize];
                    if e.cap > 0 && level[e.to as usize] < 0 {
                        level[e.to as usize] = level[u] + 1;
                        queue.push_back(e.to as usize);
                    }
                }
            }
            if level[t] < 0 {
                return total;
            }
            it.iter_mut().for_each(|i| *i = 0);
            // Blocking flow via iterative DFS.
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]] as usize;
            let Edge { to, cap } = self.edges[eid];
            let v = to as usize;
            if cap > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(cap), level, it);
                if pushed > 0 {
                    self.edges[eid].cap -= pushed;
                    self.edges[eid ^ 1].cap += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_path() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
        assert_eq!(net.flow(e), 3);
    }

    #[test]
    fn parallel_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 9);
        net.add_edge(2, 3, 9);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn residual_reroute_needed() {
        // Flow must reroute through the residual edge to reach 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn incremental_reaugment_matches_fresh_solve() {
        // Solve, then patch in new edges and re-solve: the cumulative flow
        // and every per-edge flow must match a fresh single-shot solve on
        // the full graph. (The flow-network scheduling engine adds one
        // task's demand at a time and re-augments; this is the contract it
        // leans on.)
        let full_edges: &[(usize, usize, i64)] = &[
            (0, 1, 3),
            (0, 2, 2),
            (1, 3, 2),
            (1, 4, 2),
            (2, 4, 2),
            (3, 5, 3),
            (4, 5, 2),
        ];
        let mut fresh = FlowNetwork::new(6);
        for &(a, b, c) in full_edges {
            fresh.add_edge(a, b, c);
        }
        let fresh_total = fresh.max_flow(0, 5);

        let mut inc = FlowNetwork::new(6);
        let mut inc_ids = Vec::new();
        let mut inc_total = 0;
        for chunk in full_edges.chunks(3) {
            for &(a, b, c) in chunk {
                inc_ids.push((inc.add_edge(a, b, c), a, b, c));
            }
            inc_total += inc.max_flow(0, 5);
        }
        assert_eq!(inc_total, fresh_total);
        // The incremental result is still a valid flow: within capacity on
        // every edge, conserved at every interior node. (Flow *values* per
        // edge may legitimately differ from the fresh solve's — max-flow
        // decompositions are not unique.)
        let mut net_at: [i64; 6] = [0; 6];
        for &(id, a, b, c) in &inc_ids {
            let f = inc.flow(id);
            assert!(f >= 0 && f <= c, "edge {a}->{b}: flow {f} outside [0, {c}]");
            net_at[a] -= f;
            net_at[b] += f;
        }
        for (node, &nf) in net_at.iter().enumerate() {
            if node != 0 && node != 5 {
                assert_eq!(nf, 0, "conservation violated at node {node}");
            }
        }
        assert_eq!(net_at[5], inc_total);
    }

    #[test]
    fn resolve_without_new_edges_adds_nothing() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4);
        net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.max_flow(0, 2), 0, "saturated: second call is a no-op");
    }

    #[test]
    fn bipartite_matching_shape() {
        // 3 left, 3 right, perfect matching exists.
        let mut net = FlowNetwork::new(8); // s,l0..2,r0..2,t
        for l in 1..=3 {
            net.add_edge(0, l, 1);
        }
        for r in 4..=6 {
            net.add_edge(r, 7, 1);
        }
        net.add_edge(1, 4, 1);
        net.add_edge(1, 5, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(3, 5, 1);
        net.add_edge(3, 6, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }

    proptest! {
        /// Max flow never exceeds the out-capacity of the source or the
        /// in-capacity of the sink, and equals the brute-force min cut on
        /// tiny random graphs.
        #[test]
        fn prop_bounded_by_source_and_sink(edges in proptest::collection::vec((0usize..6, 0usize..6, 0i64..8), 1..20)) {
            let mut net = FlowNetwork::new(6);
            let mut src_cap = 0i64;
            let mut sink_cap = 0i64;
            for &(a, b, c) in &edges {
                if a != b {
                    net.add_edge(a, b, c);
                    if a == 0 { src_cap += c; }
                    if b == 5 { sink_cap += c; }
                }
            }
            let f = net.max_flow(0, 5);
            prop_assert!(f >= 0 && f <= src_cap && f <= sink_cap);
        }

        /// Flow conservation: per edge, 0 ≤ flow ≤ capacity.
        #[test]
        fn prop_flows_within_capacity(edges in proptest::collection::vec((0usize..5, 0usize..5, 0i64..6), 1..15)) {
            let mut net = FlowNetwork::new(5);
            let mut ids = Vec::new();
            for &(a, b, c) in &edges {
                if a != b {
                    ids.push((net.add_edge(a, b, c), c));
                }
            }
            let _ = net.max_flow(0, 4);
            for (id, cap) in ids {
                let f = net.flow(id);
                prop_assert!(f >= 0 && f <= cap);
            }
        }
    }
}
