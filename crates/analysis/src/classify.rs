//! The `Aligned` / `Olapped` / `Free` partition of §3.2 (Fig. 4) and the
//! `S_B` postponement construction.
//!
//! To bound PD²-DVQ's tardiness, the paper classifies the subtasks of a
//! DVQ schedule `S_DQ` by how their quanta sit relative to slot boundaries:
//!
//! * **Aligned** — commence on a slot boundary (`S(T_i)` integral);
//! * **Olapped** — neither commence nor complete on a boundary but are in
//!   the middle of execution at one (a boundary lies strictly inside
//!   `(S, S + c)`);
//! * **Free** — everything else: subtasks that commence mid-slot and
//!   complete at or before the next boundary.
//!
//! `Charged = Aligned ∪ Olapped`. The schedule `S_B` for the Charged
//! subtasks keeps Aligned commencement times and postpones each Olapped
//! commencement to the next boundary `⌈S(T_i)⌉`; Lemma 3 observes that
//! commencement and completion times can only grow, and Lemma 5 shows the
//! result is a valid PD^B schedule.

use pfair_numeric::{Rat, Time};
use pfair_sim::Schedule;
use pfair_taskmodel::SubtaskRef;
use serde::{Deserialize, Serialize};

/// The §3.2 class of one subtask in a DVQ schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubtaskClass {
    /// Commences on a slot boundary.
    Aligned,
    /// Straddles a slot boundary without touching one at either end.
    Olapped,
    /// Commences mid-slot and completes by the next boundary.
    Free,
}

impl SubtaskClass {
    /// `Charged = Aligned ∪ Olapped`.
    #[must_use]
    pub fn is_charged(self) -> bool {
        matches!(self, SubtaskClass::Aligned | SubtaskClass::Olapped)
    }
}

/// Classifies one placement.
#[must_use]
pub fn classify_placement(start: Time, cost: Rat) -> SubtaskClass {
    if start.is_integer() {
        return SubtaskClass::Aligned;
    }
    let next_boundary = Rat::int(start.floor() + 1);
    if start + cost > next_boundary {
        SubtaskClass::Olapped
    } else {
        SubtaskClass::Free
    }
}

/// Classifies every subtask of a schedule; indexable by `SubtaskRef`.
#[must_use]
pub fn classify_subtasks(sched: &Schedule) -> Vec<(SubtaskRef, SubtaskClass)> {
    sched
        .placements()
        .iter()
        .map(|p| (p.st, classify_placement(p.start, p.cost)))
        .collect()
}

/// The `S_B` construction: for every **Charged** subtask, its commencement
/// time in `S_B` — Aligned keep `S(T_i)`, Olapped are postponed to
/// `⌈S(T_i)⌉`. Free subtasks are absent (they are not part of `τ'`).
///
/// Returned pairs are `(subtask, postponed start)`, in original
/// commencement order.
#[must_use]
pub fn postpone_charged(sched: &Schedule) -> Vec<(SubtaskRef, Time)> {
    sched
        .placements()
        .iter()
        .filter_map(|p| match classify_placement(p.start, p.cost) {
            SubtaskClass::Aligned => Some((p.st, p.start)),
            SubtaskClass::Olapped => Some((p.st, Rat::int(p.start.floor() + 1))),
            SubtaskClass::Free => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId, TaskSystem};

    #[test]
    fn classification_cases() {
        let one = Rat::ONE;
        // Aligned regardless of cost.
        assert_eq!(classify_placement(Rat::int(3), one), SubtaskClass::Aligned);
        assert_eq!(
            classify_placement(Rat::int(3), Rat::new(1, 2)),
            SubtaskClass::Aligned
        );
        // Starts at 2.5, cost 1 ⇒ straddles 3.
        assert_eq!(
            classify_placement(Rat::new(5, 2), one),
            SubtaskClass::Olapped
        );
        // Starts at 2.5, cost 0.5 ⇒ completes exactly at 3: Free.
        assert_eq!(
            classify_placement(Rat::new(5, 2), Rat::new(1, 2)),
            SubtaskClass::Free
        );
        // Starts at 2.25, cost 0.5 ⇒ completes at 2.75: Free.
        assert_eq!(
            classify_placement(Rat::new(9, 4), Rat::new(1, 2)),
            SubtaskClass::Free
        );
    }

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn fig2b_classification() {
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let classes: std::collections::HashMap<_, _> =
            classify_subtasks(&sched).into_iter().collect();
        // B_1, C_1 start at 2 − δ with full cost ⇒ Olapped.
        let b1 = sys
            .find(pfair_taskmodel::SubtaskId {
                task: TaskId(1),
                index: 1,
            })
            .unwrap();
        assert_eq!(classes[&b1], SubtaskClass::Olapped);
        // D_1 starts at 0 ⇒ Aligned.
        let d1 = sys
            .find(pfair_taskmodel::SubtaskId {
                task: TaskId(3),
                index: 1,
            })
            .unwrap();
        assert_eq!(classes[&d1], SubtaskClass::Aligned);
    }

    #[test]
    fn postponement_never_decreases_times() {
        // Lemma 3: commencement (hence completion) in S_B ≥ in S_DQ.
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for (st, postponed) in postpone_charged(&sched) {
            assert!(postponed >= sched.start(st));
            assert!(postponed - sched.start(st) < Rat::ONE);
            assert!(postponed.is_integer());
        }
    }

    #[test]
    fn full_costs_make_everything_aligned() {
        let sys = fig2_system();
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut FullQuantum);
        for (_, class) in classify_subtasks(&sched) {
            assert_eq!(class, SubtaskClass::Aligned);
        }
        assert_eq!(postpone_charged(&sched).len(), sys.num_subtasks());
    }
}
