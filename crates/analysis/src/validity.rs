//! Schedule validity checks.
//!
//! Two notions, deliberately separated:
//!
//! * [`check_structural`] — invariants every model must respect, tardy or
//!   not: a processor runs one subtask at a time; a subtask never starts
//!   before its eligibility time or before its predecessor completes (no
//!   intra-task parallelism, §2); under SFQ, at most `M` subtasks per slot
//!   and integral commencement times.
//! * [`check_window_containment`] — the classical Pfair validity criterion
//!   ("each subtask must be scheduled within its window", §2): every
//!   subtask completes by its pseudo-deadline. PD² under SFQ satisfies it
//!   for every feasible system; DVQ schedules may violate it by design —
//!   that violation, bounded by one quantum, is the paper's subject.

use core::fmt;

use pfair_numeric::{Rat, Time};
use pfair_sim::{QuantumModel, Schedule};
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// A violated schedule invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidityError {
    /// Two quanta overlap on one processor.
    ProcessorOverlap {
        /// The processor.
        proc: u32,
        /// Earlier subtask.
        first: SubtaskRef,
        /// Overlapping later subtask.
        second: SubtaskRef,
    },
    /// A subtask commenced before its eligibility time.
    BeforeEligibility {
        /// The subtask.
        st: SubtaskRef,
        /// Its commencement time.
        start: Time,
        /// Its eligibility time.
        eligible: i64,
    },
    /// A subtask commenced before its predecessor completed.
    BeforePredecessor {
        /// The subtask.
        st: SubtaskRef,
        /// Its commencement time.
        start: Time,
        /// Predecessor completion time.
        pred_completion: Time,
    },
    /// An SFQ/staggered schedule placed more than `M` subtasks in one slot.
    TooManyInSlot {
        /// The slot.
        slot: i64,
        /// How many were found.
        count: usize,
    },
    /// An SFQ schedule contains a non-integral commencement time.
    NonIntegralStart {
        /// The subtask.
        st: SubtaskRef,
        /// Its commencement time.
        start: Time,
    },
    /// A subtask completed after its pseudo-deadline (window containment).
    DeadlineMiss {
        /// The subtask.
        st: SubtaskRef,
        /// Its completion time.
        completion: Time,
        /// Its pseudo-deadline.
        deadline: i64,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::ProcessorOverlap {
                proc,
                first,
                second,
            } => {
                write!(f, "processor {proc}: {first:?} and {second:?} overlap")
            }
            ValidityError::BeforeEligibility {
                st,
                start,
                eligible,
            } => {
                write!(f, "{st:?} starts at {start} before eligibility {eligible}")
            }
            ValidityError::BeforePredecessor {
                st,
                start,
                pred_completion,
            } => write!(
                f,
                "{st:?} starts at {start} before predecessor completes at {pred_completion}"
            ),
            ValidityError::TooManyInSlot { slot, count } => {
                write!(f, "slot {slot}: {count} subtasks exceed processor count")
            }
            ValidityError::NonIntegralStart { st, start } => {
                write!(
                    f,
                    "{st:?} starts at non-integral {start} in an SFQ schedule"
                )
            }
            ValidityError::DeadlineMiss {
                st,
                completion,
                deadline,
            } => write!(
                f,
                "{st:?} completes at {completion} after deadline {deadline}"
            ),
        }
    }
}

impl std::error::Error for ValidityError {}

/// Checks the structural invariants; returns every violation found.
#[must_use]
pub fn check_structural(sys: &TaskSystem, sched: &Schedule) -> Vec<ValidityError> {
    let mut errors = Vec::new();

    // Per-processor exclusivity: placements are start-sorted already.
    for proc in 0..sched.m() {
        let mut prev: Option<&pfair_sim::Placement> = None;
        for p in sched.on_processor(proc) {
            if let Some(q) = prev {
                if p.start < q.holds_until.max(q.completion()) {
                    errors.push(ValidityError::ProcessorOverlap {
                        proc,
                        first: q.st,
                        second: p.st,
                    });
                }
            }
            prev = Some(p);
        }
    }

    for (st, s) in sys.iter_refs() {
        let start = sched.start(st);
        if start < Rat::int(s.eligible) {
            errors.push(ValidityError::BeforeEligibility {
                st,
                start,
                eligible: s.eligible,
            });
        }
        if let Some(pred) = s.pred {
            let pc = sched.completion(pred);
            if start < pc {
                errors.push(ValidityError::BeforePredecessor {
                    st,
                    start,
                    pred_completion: pc,
                });
            }
        }
    }

    if sched.model() == QuantumModel::Sfq {
        for p in sched.placements() {
            if !p.start.is_integer() {
                errors.push(ValidityError::NonIntegralStart {
                    st: p.st,
                    start: p.start,
                });
            }
        }
        // ≤ M per slot (placements have unit holds, so count by start slot).
        let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for p in sched.placements() {
            *counts.entry(p.start.floor()).or_default() += 1;
        }
        for (slot, count) in counts {
            if count > sched.m() as usize {
                errors.push(ValidityError::TooManyInSlot { slot, count });
            }
        }
    }

    errors
}

/// Checks the classical Pfair validity criterion: every subtask completes
/// by its pseudo-deadline. Returns the violations (deadline misses).
#[must_use]
pub fn check_window_containment(sys: &TaskSystem, sched: &Schedule) -> Vec<ValidityError> {
    let mut errors = Vec::new();
    for (st, s) in sys.iter_refs() {
        let completion = sched.completion(st);
        if completion > Rat::int(s.deadline) {
            errors.push(ValidityError::DeadlineMiss {
                st,
                completion,
                deadline: s.deadline,
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::{Epdf, Pd2};
    use pfair_sim::{simulate_dvq, simulate_sfq, simulate_staggered, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn sfq_pd2_fully_valid() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        assert!(check_structural(&sys, &sched).is_empty());
        assert!(check_window_containment(&sys, &sched).is_empty());
    }

    #[test]
    fn dvq_structurally_valid_but_misses() {
        let sys = fig2_system();
        let delta = Rat::new(1, 8);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        assert!(check_structural(&sys, &sched).is_empty());
        let misses = check_window_containment(&sys, &sched);
        assert_eq!(misses.len(), 1);
        assert!(matches!(misses[0], ValidityError::DeadlineMiss { .. }));
    }

    #[test]
    fn staggered_structurally_valid() {
        let sys = fig2_system();
        let sched = simulate_staggered(&sys, 2, &Pd2, &mut FullQuantum);
        assert!(check_structural(&sys, &sched).is_empty());
    }

    #[test]
    fn epdf_on_two_processors_meets_deadlines_here() {
        // EPDF is optimal on ≤ 2 processors (Anderson & Srinivasan); this
        // instance is on 2.
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Epdf, &mut FullQuantum);
        assert!(check_window_containment(&sys, &sched).is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidityError::DeadlineMiss {
            st: SubtaskRef(3),
            completion: Rat::new(9, 2),
            deadline: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("st#3") && msg.contains("9/2") && msg.contains('4'));
    }
}
