//! An independent schedulability oracle via maximum flow.
//!
//! §2 of the paper states the classical feasibility result: *"a correct
//! schedule in which no subtask misses its deadline exists for a GIS task
//! system τ on M processors iff its total utilization is at most M."* The
//! "exists" direction is proved in the literature by a flow argument, and
//! that argument is directly executable: build the network
//!
//! ```text
//! source ──1──▶ subtask T_i ──1──▶ (task T, slot t) ──1──▶ slot t ──M──▶ sink
//!                                  for every slot t in T_i's window
//! ```
//!
//! The per-(task, slot) middle layer enforces "at most one subtask of a
//! task per slot" (no intra-task parallelism); the slot layer enforces the
//! processor count. A valid windowed schedule over the generated subtasks
//! exists **iff** the max flow saturates every subtask — in which case the
//! flow's unit edges *are* the schedule.
//!
//! This oracle shares no code with the simulators, so agreement between
//! "the oracle says schedulable" and "PD² under SFQ misses nothing" is a
//! genuine cross-check of both (exercised in `tests/oracle.rs`).

use std::collections::HashMap;

use pfair_maxflow::FlowNetwork;
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// Which window each subtask may be placed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMode {
    /// The PF-window `[r(T_i), d(T_i))` — the classical validity notion.
    PfWindow,
    /// The IS-window `[e(T_i), d(T_i))` — allows early-released placement.
    IsWindow,
}

/// The oracle's answer.
#[derive(Clone, Debug)]
pub struct FlowSchedule {
    /// `true` iff every released subtask can be placed within its window.
    pub schedulable: bool,
    /// A witness assignment `subtask → slot` (complete iff `schedulable`).
    pub assignment: Vec<(SubtaskRef, i64)>,
}

/// Decides, by max flow, whether every released subtask of `sys` can be
/// scheduled within its window on `m` processors.
#[must_use]
pub fn flow_schedulable(sys: &TaskSystem, m: u32, mode: WindowMode) -> FlowSchedule {
    let n = sys.num_subtasks();
    if n == 0 {
        return FlowSchedule {
            schedulable: true,
            assignment: Vec::new(),
        };
    }

    // Collect the slots any window touches (windows can be sparse, so use
    // dense ids per distinct slot).
    let mut slot_ids: HashMap<i64, usize> = HashMap::new();
    let mut task_slot_ids: HashMap<(u32, i64), usize> = HashMap::new();
    let window = |st: SubtaskRef| {
        let s = sys.subtask(st);
        let lo = match mode {
            WindowMode::PfWindow => s.release,
            WindowMode::IsWindow => s.eligible,
        };
        (lo, s.deadline)
    };
    for (st, s) in sys.iter_refs() {
        let (lo, hi) = window(st);
        for t in lo..hi {
            let next_slot = slot_ids.len();
            slot_ids.entry(t).or_insert(next_slot);
            let next_ts = task_slot_ids.len();
            task_slot_ids.entry((s.id.task.0, t)).or_insert(next_ts);
        }
    }

    // Node layout: 0 = source; 1..=n subtasks; then task-slot nodes; then
    // slot nodes; last = sink.
    let ts_base = 1 + n;
    let slot_base = ts_base + task_slot_ids.len();
    let sink = slot_base + slot_ids.len();
    let mut net = FlowNetwork::new(sink + 1);

    let mut subtask_edges = Vec::with_capacity(n);
    for (st, s) in sys.iter_refs() {
        let node = 1 + st.idx();
        net.add_edge(0, node, 1);
        let (lo, hi) = window(st);
        for t in lo..hi {
            let ts = ts_base + task_slot_ids[&(s.id.task.0, t)];
            let e = net.add_edge(node, ts, 1);
            subtask_edges.push((st, t, e));
        }
    }
    for (&(_, t), &ts) in &task_slot_ids {
        net.add_edge(ts_base + ts, slot_base + slot_ids[&t], 1);
    }
    for &sl in slot_ids.values() {
        net.add_edge(slot_base + sl, sink, i64::from(m));
    }

    let flow = net.max_flow(0, sink);
    let mut assignment = Vec::with_capacity(n);
    for (st, t, e) in subtask_edges {
        if net.flow(e) == 1 {
            assignment.push((st, t));
        }
    }
    FlowSchedule {
        schedulable: flow == n as i64,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_taskmodel::release;

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn feasible_system_saturates() {
        let sys = fig2_system();
        let fs = flow_schedulable(&sys, 2, WindowMode::PfWindow);
        assert!(fs.schedulable);
        assert_eq!(fs.assignment.len(), sys.num_subtasks());
        // The witness really is a valid windowed schedule.
        let mut per_slot: HashMap<i64, usize> = HashMap::new();
        let mut per_task_slot: HashMap<(u32, i64), usize> = HashMap::new();
        for (st, t) in &fs.assignment {
            let s = sys.subtask(*st);
            assert!(s.release <= *t && *t < s.deadline, "{:?} slot {t}", s.id);
            *per_slot.entry(*t).or_default() += 1;
            *per_task_slot.entry((s.id.task.0, *t)).or_default() += 1;
        }
        assert!(per_slot.values().all(|&k| k <= 2));
        assert!(per_task_slot.values().all(|&k| k == 1));
    }

    #[test]
    fn overloaded_system_does_not_saturate() {
        // Three weight-1 tasks on two processors: slot 0 needs 3 quanta.
        let sys = release::periodic(&[(1, 1), (1, 1), (1, 1)], 2);
        let fs = flow_schedulable(&sys, 2, WindowMode::PfWindow);
        assert!(!fs.schedulable);
        assert!(fs.assignment.len() < sys.num_subtasks());
    }

    #[test]
    fn boundary_utilization_exactly_m() {
        let sys = release::periodic(&[(1, 1), (1, 2), (1, 2)], 8);
        assert_eq!(sys.utilization(), pfair_numeric::Rat::int(2));
        assert!(flow_schedulable(&sys, 2, WindowMode::PfWindow).schedulable);
        assert!(!flow_schedulable(&sys, 1, WindowMode::PfWindow).schedulable);
    }

    #[test]
    fn is_window_mode_is_weaker() {
        // Early release can only add options.
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let sys = structured(
            &[ReleaseSpec {
                name: "T",
                e: 1,
                p: 2,
                delays: &[],
                drops: &[],
                early: 1,
            }],
            6,
        )
        .unwrap();
        let pf = flow_schedulable(&sys, 1, WindowMode::PfWindow);
        let is = flow_schedulable(&sys, 1, WindowMode::IsWindow);
        assert!(pf.schedulable && is.schedulable);
    }

    #[test]
    fn gis_system_schedulable() {
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let sys = structured(
            &[
                ReleaseSpec {
                    name: "T",
                    e: 3,
                    p: 4,
                    delays: &[(3, 1)],
                    drops: &[2],
                    early: 0,
                },
                ReleaseSpec::periodic("U", 1, 4),
            ],
            9,
        )
        .unwrap();
        assert!(flow_schedulable(&sys, 1, WindowMode::PfWindow).schedulable);
    }

    #[test]
    fn empty_system_trivially_schedulable() {
        let sys = release::periodic(&[], 4);
        assert!(flow_schedulable(&sys, 1, WindowMode::PfWindow).schedulable);
    }
}
