//! Detection of the DVQ model's priority inversions in a simulated
//! schedule.
//!
//! "A *priority inversion* occurs whenever a lower-priority subtask (or
//! job) executes, while a ready, higher-priority subtask waits" (§3). The
//! paper distinguishes two kinds, by *when* the victim became ready:
//!
//! * **eligibility blocking** — the victim is blocked in the first slot of
//!   its IS-window (it became ready at its eligibility time `e(T_i)`, an
//!   integral instant, and found all processors occupied — some by
//!   lower-priority subtasks that grabbed a processor moments earlier);
//! * **predecessor blocking** — the victim became ready when its
//!   predecessor completed, later than `e(T_i)`, and still had to wait
//!   behind a lower-priority subtask.
//!
//! [`detect_blocking`] replays a schedule: for each subtask whose
//! commencement is later than its ready time, it reports every
//! lower-priority subtask that was *executing* somewhere in the waiting
//! interval — the blockers. Under SFQ + PD² no event is ever reported
//! (there are no inversions: that's the optimality setting); under DVQ the
//! reported events are exactly the phenomena of Figs. 2(b) and 3(a).

use pfair_core::priority::PriorityOrder;
use pfair_numeric::{Rat, Time};
use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// Which of the paper's two inversion kinds a blocking event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockingKind {
    /// Blocked from the first instant of its IS-window.
    Eligibility,
    /// Blocked after becoming ready via predecessor completion.
    Predecessor,
}

/// One observed priority inversion.
#[derive(Clone, Debug)]
pub struct BlockingEvent {
    /// The waiting higher-priority subtask.
    pub victim: SubtaskRef,
    /// When it became ready.
    pub ready_at: Time,
    /// When it finally commenced.
    pub scheduled_at: Time,
    /// Eligibility vs predecessor blocking.
    pub kind: BlockingKind,
    /// Lower-priority subtasks that executed while the victim waited.
    pub blockers: Vec<SubtaskRef>,
}

impl BlockingEvent {
    /// How long the victim waited.
    #[must_use]
    pub fn duration(&self) -> Rat {
        self.scheduled_at - self.ready_at
    }
}

/// Scans a schedule for priority inversions under `order`.
#[must_use]
pub fn detect_blocking(
    sys: &TaskSystem,
    sched: &Schedule,
    order: &dyn PriorityOrder,
) -> Vec<BlockingEvent> {
    let mut events = Vec::new();
    for (st, s) in sys.iter_refs() {
        let eligible = Rat::int(s.eligible);
        let pred_completion = s.pred.map(|p| sched.completion(p));
        let ready_at = match pred_completion {
            Some(pc) => pc.max(eligible),
            None => eligible,
        };
        let scheduled_at = sched.start(st);
        if scheduled_at <= ready_at {
            continue;
        }
        // Lower-priority subtasks executing within (ready_at, scheduled_at]
        // — i.e. overlapping the waiting interval — are blockers.
        let blockers: Vec<SubtaskRef> = sched
            .placements()
            .iter()
            .filter(|p| {
                p.st != st
                    && p.start < scheduled_at
                    && p.completion() > ready_at
                    && order.precedes(sys, st, p.st)
            })
            .map(|p| p.st)
            .collect();
        if blockers.is_empty() {
            continue; // waited on equal/higher-priority contention: not an inversion
        }
        let kind = if ready_at == eligible {
            BlockingKind::Eligibility
        } else {
            BlockingKind::Predecessor
        };
        events.push(BlockingEvent {
            victim: st,
            ready_at,
            scheduled_at,
            kind,
            blockers,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, SubtaskId, TaskId, TaskSystem};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    fn find(sys: &TaskSystem, task: u32, index: u64) -> SubtaskRef {
        sys.find(SubtaskId {
            task: TaskId(task),
            index,
        })
        .unwrap()
    }

    #[test]
    fn sfq_pd2_has_no_inversions() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        assert!(detect_blocking(&sys, &sched, &Pd2).is_empty());
    }

    #[test]
    fn fig2b_eligibility_blocking_detected() {
        // D_2 and E_2 (eligible at 2) are blocked by B_1 and C_1, which
        // grabbed the processors at 2 − δ.
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let events = detect_blocking(&sys, &sched, &Pd2);
        let d2 = find(&sys, 3, 2);
        let ev = events
            .iter()
            .find(|e| e.victim == d2)
            .expect("D_2 must be reported blocked");
        assert_eq!(ev.kind, BlockingKind::Eligibility);
        assert_eq!(ev.ready_at, Rat::int(2));
        assert_eq!(ev.scheduled_at, Rat::int(3) - delta);
        assert_eq!(ev.duration(), Rat::ONE - delta);
        let b1 = find(&sys, 1, 1);
        let c1 = find(&sys, 2, 1);
        assert!(ev.blockers.contains(&b1) && ev.blockers.contains(&c1));
        // E_2 likewise; F_2's wait behind D_2/E_2 is priority-consistent
        // contention (D_2, E_2 have equal class but are ahead by the
        // deterministic tie) — but B_1/C_1 also overlap its waiting
        // interval, so it is reported blocked as well, with only B_1/C_1
        // (strictly lower priority) as blockers.
        let f2 = find(&sys, 5, 2);
        if let Some(evf) = events.iter().find(|e| e.victim == f2) {
            for b in &evf.blockers {
                assert!(Pd2.precedes(&sys, f2, *b));
            }
        }
    }

    #[test]
    fn blockers_are_strictly_lower_priority() {
        let sys = fig2_system();
        let delta = Rat::new(1, 10);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for ev in detect_blocking(&sys, &sched, &Pd2) {
            for b in &ev.blockers {
                assert!(Pd2.precedes(&sys, ev.victim, *b));
            }
            assert!(ev.duration().is_positive());
        }
    }
}
