//! Displacement analysis: how far one schedule's allocations drift from
//! another's.
//!
//! The paper's proofs reason about *displacements* — how postponing or
//! advancing one allocation shifts others (the `S_B` construction of §3.2
//! postpones Olapped commencements; the k-compliance induction of §3.3
//! moves one subtask at a time "perhaps displacing other subtasks in the
//! process"). This module measures displacement between any two schedules
//! of the same task system:
//!
//! * per-subtask displacement `Δ(T_i) = S₂(T_i) − S₁(T_i)`;
//! * aggregate statistics (max forward/backward, mean absolute).
//!
//! Applied to (SFQ, DVQ) pairs it quantifies how much the desynchronized
//! model actually perturbs the optimal schedule; the paper's bound implies
//! every *completion* drifts forward by less than one quantum relative to
//! the subtask's deadline, but commencements may drift backwards (earlier)
//! arbitrarily — reclaimed slack pulls work forward.

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// Per-subtask displacement between two schedules of the same system.
#[must_use]
pub fn displacement(s1: &Schedule, s2: &Schedule, st: SubtaskRef) -> Rat {
    s2.start(st) - s1.start(st)
}

/// Aggregate displacement statistics of `s2` relative to `s1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisplacementStats {
    /// Largest forward drift (`> 0` means `s2` later).
    pub max_forward: Rat,
    /// Largest backward drift (`> 0` means `s2` earlier).
    pub max_backward: Rat,
    /// Sum of absolute displacements.
    pub total_abs: Rat,
    /// Number of subtasks displaced at all.
    pub moved: usize,
    /// Number of subtasks compared.
    pub subtasks: usize,
}

impl DisplacementStats {
    /// Mean absolute displacement.
    #[must_use]
    pub fn mean_abs(&self) -> Rat {
        if self.subtasks == 0 {
            Rat::ZERO
        } else {
            self.total_abs / Rat::int(self.subtasks as i64)
        }
    }
}

/// Computes [`DisplacementStats`] over every released subtask.
#[must_use]
pub fn displacement_stats(sys: &TaskSystem, s1: &Schedule, s2: &Schedule) -> DisplacementStats {
    let mut stats = DisplacementStats {
        max_forward: Rat::ZERO,
        max_backward: Rat::ZERO,
        total_abs: Rat::ZERO,
        moved: 0,
        subtasks: sys.num_subtasks(),
    };
    for (st, _) in sys.iter_refs() {
        let d = displacement(s1, s2, st);
        if d.is_positive() {
            stats.max_forward = stats.max_forward.max(d);
        } else if d.is_negative() {
            stats.max_backward = stats.max_backward.max(-d);
        }
        if !d.is_zero() {
            stats.moved += 1;
        }
        stats.total_abs += d.abs();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId, TaskSystem};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn identical_schedules_have_zero_displacement() {
        let sys = fig2_system();
        let a = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let b = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let d = displacement_stats(&sys, &a, &b);
        assert_eq!(d.moved, 0);
        assert_eq!(d.mean_abs(), Rat::ZERO);
    }

    #[test]
    fn dvq_displacement_of_fig2b() {
        let sys = fig2_system();
        let sfq = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let d = displacement_stats(&sys, &sfq, &dvq);
        // Backward drift can be large (reclaimed slack pulls work far
        // forward in time): C1 moves from SFQ slot 5 to DVQ 2 − δ, a
        // backward drift of 3 + δ. Forward drift stays below one quantum:
        // the largest is F2, slot 3 → 4 − δ.
        assert_eq!(d.max_forward, Rat::ONE - delta);
        assert_eq!(d.max_backward, Rat::int(3) + delta);
        assert!(d.moved >= 4);
        assert!(d.mean_abs().is_positive());
    }

    #[test]
    fn forward_drift_bounded_by_tardiness_bound() {
        // Any subtask's *completion* in DVQ exceeds its deadline by < 1;
        // since SFQ completes it by the deadline, completion drift past
        // the SFQ deadline is < 1.
        let sys = fig2_system();
        let delta = Rat::new(1, 8);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for (st, s) in sys.iter_refs() {
            assert!(dvq.completion(st) < Rat::int(s.deadline) + Rat::ONE);
        }
    }
}
