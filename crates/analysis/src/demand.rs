//! Demand-bound analysis over subtask windows.
//!
//! The classical necessary condition for windowed schedulability: over any
//! slot interval `[t1, t2)`, the subtasks whose PF-windows lie *entirely
//! inside* the interval demand `dbf(t1, t2)` quanta, and a valid schedule
//! can supply at most `M · (t2 − t1)`. Violations certify infeasibility
//! with a concrete witness interval — a cheaper (though incomplete)
//! companion to the exact max-flow oracle in
//! [`crate::schedulability`].

use pfair_taskmodel::TaskSystem;

/// Quanta demanded by subtasks whose windows lie within `[t1, t2)`.
#[must_use]
pub fn dbf(sys: &TaskSystem, t1: i64, t2: i64) -> i64 {
    sys.subtasks()
        .iter()
        .filter(|s| s.release >= t1 && s.deadline <= t2)
        .count() as i64
}

/// A witness that the system cannot be scheduled in its windows on `m`
/// processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadWitness {
    /// Interval start.
    pub t1: i64,
    /// Interval end (exclusive).
    pub t2: i64,
    /// Demand of the interval.
    pub demand: i64,
    /// Supply `m · (t2 − t1)`.
    pub supply: i64,
}

/// Searches all O(H²) slot intervals for a demand violation; `None` means
/// the demand condition holds everywhere (necessary, not sufficient, for
/// windowed schedulability — though on `M` identical processors with
/// per-(task, slot) exclusivity it is usually the binding constraint).
#[must_use]
pub fn find_overload(sys: &TaskSystem, m: u32) -> Option<OverloadWitness> {
    let horizon = sys.max_deadline();
    // Prefix counts per deadline make each interval O(subtasks) worst
    // case; instances here are small enough for the direct double loop.
    for t1 in 0..horizon {
        for t2 in (t1 + 1)..=horizon {
            let demand = dbf(sys, t1, t2);
            let supply = i64::from(m) * (t2 - t1);
            if demand > supply {
                return Some(OverloadWitness {
                    t1,
                    t2,
                    demand,
                    supply,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulability::{flow_schedulable, WindowMode};
    use pfair_taskmodel::release;

    #[test]
    fn dbf_counts_contained_windows() {
        let sys = release::periodic(&[(1, 2)], 6); // windows [0,2),[2,4),[4,6)
        assert_eq!(dbf(&sys, 0, 2), 1);
        assert_eq!(dbf(&sys, 0, 4), 2);
        assert_eq!(dbf(&sys, 0, 6), 3);
        assert_eq!(dbf(&sys, 1, 4), 1); // [0,2) not contained
        assert_eq!(dbf(&sys, 0, 1), 0);
    }

    #[test]
    fn feasible_systems_have_no_witness() {
        let sys = release::periodic(&[(1, 2), (1, 2), (3, 4), (1, 4)], 8);
        assert!(sys.is_feasible(2));
        assert_eq!(find_overload(&sys, 2), None);
    }

    #[test]
    fn overload_produces_a_witness() {
        // Three weight-1 tasks on two processors: slot [0, 1) demands 3.
        let sys = release::periodic(&[(1, 1), (1, 1), (1, 1)], 2);
        let w = find_overload(&sys, 2).expect("overloaded");
        assert!(w.demand > w.supply);
        assert_eq!((w.t1, w.t2), (0, 1));
    }

    #[test]
    fn witness_agrees_with_flow_oracle() {
        // Wherever dbf finds a witness, the exact oracle must also reject;
        // where dbf is silent on these instances, the oracle accepts.
        for (weights, m) in [
            (vec![(1i64, 1i64), (1, 1), (1, 2)], 2u32),
            (vec![(1, 2), (1, 2), (1, 2)], 1),
            (vec![(1, 2), (1, 2), (1, 3), (1, 6)], 2),
        ] {
            let sys = release::periodic(&weights, 6);
            let witness = find_overload(&sys, m);
            let exact = flow_schedulable(&sys, m, WindowMode::PfWindow).schedulable;
            match witness {
                Some(w) => assert!(!exact, "dbf witness {w:?} but oracle accepted"),
                None => assert!(exact, "oracle rejected without dbf witness"),
            }
        }
    }
}
