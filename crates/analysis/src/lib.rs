//! Schedule analysis: everything the paper's theorems quantify.
//!
//! * [`tardiness`] — per-subtask and aggregate tardiness (Eq. (7)); the
//!   measurements behind Theorems 2 and 3.
//! * [`validity`] — structural soundness of a schedule (processor
//!   exclusivity, intra-task sequencing, eligibility) and SFQ window
//!   containment (the classical Pfair validity criterion of §2).
//! * [`classify`] — the `Aligned` / `Olapped` / `Free` partition of DVQ
//!   subtasks (§3.2, Fig. 4) and the `S_B` postponement construction used
//!   to reduce DVQ schedules to the SFQ model.
//! * [`blocking`] — detection of the two DVQ priority inversions
//!   (eligibility blocking, predecessor blocking) in a simulated schedule.
//! * [`compliance`] — the k-compliance construction of §3.3 (ranks,
//!   right-shifted systems with selectively restored eligibilities),
//!   letting tests walk Lemma 6's induction empirically.
//! * [`demand`] — demand-bound analysis (interval demand vs `M·len`
//!   supply), a cheap necessary condition companion to the exact oracle.
//! * [`displacement`](mod@displacement) — drift between two schedules of one system (the
//!   quantity the paper's proofs manipulate).
//! * [`lag`] — fluid (processor-sharing) allocation and `LAG`, the
//!   classical Pfair progress measure.
//! * [`jobs`] — the job-level view (§1's "each task releases a job every
//!   T.p time units"), with per-job completions and tardiness.
//! * [`lemmas`] — executable checks of the paper's Lemma 1 / Property PB
//!   on simulated DVQ schedules.
//! * [`allocation`] — the slot-allocation matrix `S(T, t)` of Eq. (1) and
//!   its DVQ generalization (fractional slot occupancy).
//! * [`overhead`] — migration counts and simultaneous-quantum-start
//!   contention profiles (the staggered model's motivation, measured).
//! * [`report`] — one-call bundle of every analysis, with `Display`.
//! * [`response`] — response-time statistics (latency from eligibility).
//! * [`schedulability`] — an independent max-flow schedulability oracle
//!   (the executable form of §2's feasibility argument), cross-checking
//!   the simulators.
//! * [`waste`] — busy/idle/wasted-quantum accounting: the §1 motivation
//!   for the DVQ model, measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod blocking;
pub mod classify;
pub mod compliance;
pub mod demand;
pub mod displacement;
pub mod jobs;
pub mod lag;
pub mod lemmas;
pub mod overhead;
pub mod report;
pub mod response;
pub mod schedulability;
pub mod tardiness;
pub mod validity;
pub mod waste;

pub use allocation::{allocation_matrix, slot_occupancy};
pub use blocking::{detect_blocking, BlockingEvent, BlockingKind};
pub use classify::{classify_subtasks, postpone_charged, SubtaskClass};
pub use compliance::{k_compliant_system, ranks};
pub use demand::{dbf, find_overload, OverloadWitness};
pub use displacement::{displacement, displacement_stats, DisplacementStats};
pub use jobs::{all_jobs, jobs_of, Job};
pub use lag::{ideal_allocation, max_lag_over_slots, received_allocation, task_lag, total_lag};
pub use lemmas::{check_lemma1, Lemma1Violation};
pub use overhead::{
    contention_profile, context_switch_stats, migration_stats, peak_simultaneous_starts,
    MigrationStats, SwitchStats,
};
pub use report::{schedule_report, ScheduleReport};
pub use response::{response_stats, subtask_response, ResponseStats};
pub use schedulability::{flow_schedulable, FlowSchedule, WindowMode};
pub use tardiness::{subtask_tardiness, tardiness_histogram, tardiness_stats, TardinessStats};
pub use validity::{check_structural, check_window_containment, ValidityError};
pub use waste::{waste_stats, WasteStats};
