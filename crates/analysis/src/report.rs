//! One-call schedule reports.
//!
//! [`ScheduleReport`] bundles every analysis this crate offers — tardiness,
//! waste, migrations, blocking, response times, structural validity — into
//! a single value with a human-readable `Display`. The `pfairsim` CLI and
//! several examples print one; downstream users get the "tell me
//! everything about this run" entry point.

use core::fmt;

use pfair_core::priority::PriorityOrder;
use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::TaskSystem;

use crate::blocking::{detect_blocking, BlockingKind};
use crate::overhead::{migration_stats, MigrationStats};
use crate::response::{response_stats, ResponseStats};
use crate::tardiness::{tardiness_stats, TardinessStats};
use crate::validity::{check_structural, check_window_containment};
use crate::waste::{waste_stats, WasteStats};

/// Every analysis of one schedule, in one struct.
#[derive(Clone, Debug)]
pub struct ScheduleReport {
    /// Tardiness statistics (Eq. (7)).
    pub tardiness: TardinessStats,
    /// Busy / wasted / idle accounting.
    pub waste: WasteStats,
    /// Migration counts.
    pub migrations: MigrationStats,
    /// Response-time statistics.
    pub response: ResponseStats,
    /// Observed eligibility-blocking events.
    pub eligibility_blocking: usize,
    /// Observed predecessor-blocking events.
    pub predecessor_blocking: usize,
    /// Number of structural invariant violations (0 for a sound run).
    pub structural_violations: usize,
    /// Number of window-containment violations (deadline misses).
    pub window_violations: usize,
}

/// Runs every analysis on a schedule.
#[must_use]
pub fn schedule_report(
    sys: &TaskSystem,
    sched: &Schedule,
    order: &dyn PriorityOrder,
) -> ScheduleReport {
    let blocking = detect_blocking(sys, sched, order);
    ScheduleReport {
        tardiness: tardiness_stats(sys, sched),
        waste: waste_stats(sched),
        migrations: migration_stats(sys, sched),
        response: response_stats(sys, sched),
        eligibility_blocking: blocking
            .iter()
            .filter(|e| e.kind == BlockingKind::Eligibility)
            .count(),
        predecessor_blocking: blocking
            .iter()
            .filter(|e| e.kind == BlockingKind::Predecessor)
            .count(),
        structural_violations: check_structural(sys, sched).len(),
        window_violations: check_window_containment(sys, sched).len(),
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tardiness: max {}  misses {}/{}  mean {}",
            self.tardiness.max,
            self.tardiness.misses,
            self.tardiness.subtasks,
            self.tardiness.mean()
        )?;
        writeln!(
            f,
            "capacity:  busy {:.1}%  wasted {:.1}%  makespan {}",
            self.waste.busy_fraction().to_f64() * 100.0,
            self.waste.wasted_fraction().to_f64() * 100.0,
            self.waste.makespan
        )?;
        writeln!(
            f,
            "overheads: migrations {}/{} pairs  mean response {}",
            self.migrations.migrations,
            self.migrations.adjacent_pairs,
            self.response.mean()
        )?;
        writeln!(
            f,
            "blocking:  eligibility {}  predecessor {}",
            self.eligibility_blocking, self.predecessor_blocking
        )?;
        write!(
            f,
            "validity:  structural violations {}  deadline misses {}",
            self.structural_violations, self.window_violations
        )
    }
}

impl ScheduleReport {
    /// `true` iff the run is structurally sound and within the paper's
    /// one-quantum tardiness bound.
    #[must_use]
    pub fn within_dvq_bound(&self) -> bool {
        self.structural_violations == 0 && self.tardiness.max <= Rat::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_numeric::Rat;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn clean_run_reports_clean() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let r = schedule_report(&sys, &sched, &Pd2);
        assert_eq!(r.tardiness.max, Rat::ZERO);
        assert_eq!(r.window_violations, 0);
        assert_eq!(r.structural_violations, 0);
        assert_eq!(r.eligibility_blocking + r.predecessor_blocking, 0);
        assert!(r.within_dvq_bound());
        let text = r.to_string();
        assert!(text.contains("tardiness: max 0"));
        assert!(text.contains("deadline misses 0"));
    }

    #[test]
    fn dvq_run_reports_the_damage() {
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let r = schedule_report(&sys, &sched, &Pd2);
        assert_eq!(r.tardiness.max, Rat::new(3, 4));
        assert_eq!(r.window_violations, 1);
        assert!(r.eligibility_blocking > 0);
        assert!(r.within_dvq_bound());
    }
}
