//! Migration and contention accounting.
//!
//! Two practicality concerns frame the paper's related work:
//!
//! * Pfair allows **inter-processor migration** ("a task may be allocated
//!   time on different processors, but not in the same slot", §2) —
//!   migrations cost cache refills on real hardware, and implementations
//!   care how often they happen;
//! * the staggered model of Holman & Anderson exists to reduce **bus
//!   contention** caused by all `M` processors starting quanta at the same
//!   instant under SFQ.
//!
//! [`migration_stats`] counts, per task, how often consecutive subtasks run
//! on different processors. [`contention_profile`] histograms the number of
//! quanta that *commence simultaneously*: under SFQ that number is
//! typically `M` at every occupied slot boundary; under the staggered
//! model it is at most 1 per boundary offset; under DVQ it falls in
//! between, depending on yields.

use std::collections::HashMap;

use pfair_numeric::Time;
use pfair_sim::Schedule;
use pfair_taskmodel::TaskSystem;
use serde::{Deserialize, Serialize};

/// Migration counts for a schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Number of adjacent subtask pairs (within a task) that ran on
    /// different processors.
    pub migrations: usize,
    /// Number of adjacent subtask pairs considered.
    pub adjacent_pairs: usize,
    /// Per-task migration counts, indexed by task id.
    pub per_task: Vec<usize>,
}

impl MigrationStats {
    /// Fraction of adjacent pairs that migrated (0 if none).
    #[must_use]
    pub fn migration_rate(&self) -> f64 {
        if self.adjacent_pairs == 0 {
            0.0
        } else {
            self.migrations as f64 / self.adjacent_pairs as f64
        }
    }
}

/// Counts migrations: a task "migrates" when subtask `T_{i+1}` executes on
/// a different processor than its predecessor.
#[must_use]
pub fn migration_stats(sys: &TaskSystem, sched: &Schedule) -> MigrationStats {
    let mut per_task = vec![0usize; sys.num_tasks()];
    let mut adjacent_pairs = 0usize;
    for task in sys.tasks() {
        let mut prev_proc: Option<u32> = None;
        for st in sys.task_subtask_refs(task.id) {
            let proc = sched.placement(st).proc;
            if let Some(p) = prev_proc {
                adjacent_pairs += 1;
                if p != proc {
                    per_task[task.id.idx()] += 1;
                }
            }
            prev_proc = Some(proc);
        }
    }
    MigrationStats {
        migrations: per_task.iter().sum(),
        adjacent_pairs,
        per_task,
    }
}

/// Per-processor context-switch accounting.
///
/// A *chunk* is a maximal run of placements on one processor executing the
/// same task back-to-back: each placement starts exactly where the previous
/// one released the processor (`holds_until`). Every chunk after the first
/// on a processor begins with a context switch — the processor either
/// picked up a different task or sat idle in between. Boundary-Fair
/// scheduling exists to shrink this number relative to per-slot Pfair
/// decisions, so the golden figure tests compare it across engine families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Maximal contiguous same-task runs, summed over processors.
    pub chunks: usize,
    /// Processors that executed at least one quantum.
    pub busy_procs: usize,
}

impl SwitchStats {
    /// Context switches: every chunk after the first per busy processor.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.chunks - self.busy_procs
    }
}

/// Counts contiguous execution chunks per processor.
#[must_use]
pub fn context_switch_stats(sys: &TaskSystem, sched: &Schedule) -> SwitchStats {
    // (proc, start, holds_until, task) per placement, in execution order.
    let mut runs: Vec<(u32, Time, Time, u32)> = Vec::new();
    for task in sys.tasks() {
        for st in sys.task_subtask_refs(task.id) {
            let p = sched.placement(st);
            runs.push((p.proc, p.start, p.holds_until, task.id.0));
        }
    }
    runs.sort_unstable();
    let mut chunks = 0usize;
    let mut busy_procs = 0usize;
    let mut prev: Option<(u32, Time, u32)> = None;
    for (proc, start, holds_until, task) in runs {
        let continues = prev == Some((proc, start, task));
        if !continues {
            chunks += 1;
            if prev.is_none_or(|(p, _, _)| p != proc) {
                busy_procs += 1;
            }
        }
        prev = Some((proc, holds_until, task));
    }
    SwitchStats { chunks, busy_procs }
}

/// The simultaneous-start profile: for each distinct commencement instant,
/// how many quanta begin at exactly that instant. Returned as a histogram
/// `counts[k]` = number of instants at which exactly `k+1` quanta start.
#[must_use]
pub fn contention_profile(sched: &Schedule) -> Vec<usize> {
    let mut by_instant: HashMap<Time, usize> = HashMap::new();
    for p in sched.placements() {
        *by_instant.entry(p.start).or_default() += 1;
    }
    let max = by_instant.values().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max];
    for (_, k) in by_instant {
        counts[k - 1] += 1;
    }
    counts
}

/// The largest number of quanta commencing at one instant.
#[must_use]
pub fn peak_simultaneous_starts(sched: &Schedule) -> usize {
    contention_profile(sched).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_numeric::Rat;
    use pfair_sim::{simulate_sfq, simulate_staggered, FullQuantum, ScaledCost};
    use pfair_taskmodel::release;

    fn sys4() -> TaskSystem {
        release::periodic(
            &[
                (1, 2),
                (1, 2),
                (1, 2),
                (1, 2),
                (1, 2),
                (1, 2),
                (1, 2),
                (1, 2),
            ],
            12,
        )
    }

    #[test]
    fn sfq_peak_contention_is_m() {
        let sys = sys4();
        let sched = simulate_sfq(&sys, 4, &Pd2, &mut FullQuantum);
        assert_eq!(peak_simultaneous_starts(&sched), 4);
    }

    #[test]
    fn staggered_peak_contention_is_one() {
        // Distinct per-processor offsets mean no two quanta ever commence
        // at the same instant (with full costs).
        let sys = sys4();
        let sched = simulate_staggered(&sys, 4, &Pd2, &mut FullQuantum);
        assert_eq!(peak_simultaneous_starts(&sched), 1);
    }

    #[test]
    fn staggered_contention_stays_low_with_yields() {
        let sys = sys4();
        let mut c = ScaledCost(Rat::new(3, 4));
        let sched = simulate_staggered(&sys, 4, &Pd2, &mut c);
        assert!(peak_simultaneous_starts(&sched) <= 2);
    }

    #[test]
    fn migration_counting() {
        let sys = release::periodic(&[(1, 2), (1, 2)], 8);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let m = migration_stats(&sys, &sched);
        // Two tasks × (4 − 1) adjacent pairs.
        assert_eq!(m.adjacent_pairs, 6);
        // Deterministic assignment keeps each task on one processor here.
        assert_eq!(m.migrations, 0);
        assert_eq!(m.migration_rate(), 0.0);
    }

    #[test]
    fn context_switches_on_a_dedicated_processor_schedule() {
        // Two half-weight tasks on two processors: PD²-SFQ parks each on
        // its own processor, but each executes in alternating slots, so
        // every occupied slot starts a fresh chunk (idle gaps in between).
        let sys = release::periodic(&[(1, 2), (1, 2)], 8);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let s = context_switch_stats(&sys, &sched);
        assert_eq!(s.busy_procs, 2);
        assert_eq!(s.chunks, 8);
        assert_eq!(s.switches(), 6);
    }

    #[test]
    fn full_utilization_single_task_is_one_chunk() {
        let sys = release::periodic(&[(1, 1)], 6);
        let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        let s = context_switch_stats(&sys, &sched);
        assert_eq!(s.chunks, 1);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn migrations_detected_when_they_occur() {
        // Three half-weight tasks on two processors: someone must migrate.
        let sys = release::periodic(&[(1, 2), (1, 2), (1, 2), (1, 2)], 12);
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let m = migration_stats(&sys, &sched);
        assert!(m.adjacent_pairs > 0);
        // Rate is well-defined either way.
        assert!(m.migration_rate() >= 0.0 && m.migration_rate() <= 1.0);
    }
}
