//! Fluid (processor-sharing) allocation and `LAG`.
//!
//! Classical Pfair analysis compares a discrete schedule against the
//! *ideal fluid schedule* in which each subtask `T_i` receives processor
//! time at constant rate `1/|w(T_i)|` across its PF-window. For a task
//! system `τ` and schedule `S`:
//!
//! ```text
//! lag(T, t)  = ideal(T, t) − received(T, t)
//! LAG(τ, t)  = Σ_{T ∈ τ} lag(T, t)
//! ```
//!
//! A positive `LAG` means the system as a whole is behind the fluid
//! schedule. The paper's tardiness results say, in lag terms, that DVQ's
//! inversions never let any subtask fall more than one quantum behind its
//! window; the lag utilities here let tests and experiments watch that
//! directly.
//!
//! Service accounting: a subtask scheduled at `s` with actual cost `c`
//! delivers its one quantum of value linearly over `[s, s+c)` — the early
//! yield means the subtask needed less time, not that the task received
//! less of its reservation. (This is the WCET-pessimism reading of §1.)

use pfair_numeric::{Rat, Time};
use pfair_sim::Schedule;
use pfair_taskmodel::{TaskId, TaskSystem};

/// Ideal fluid allocation of task `T` up to time `t`: each released
/// subtask contributes the fraction of its PF-window elapsed by `t`.
#[must_use]
pub fn ideal_allocation(sys: &TaskSystem, task: TaskId, t: Time) -> Rat {
    let mut total = Rat::ZERO;
    for s in sys.task_subtasks(task) {
        let r = Rat::int(s.release);
        let d = Rat::int(s.deadline);
        if t <= r {
            // Windows are release-ordered; nothing later contributes.
            break;
        }
        if t >= d {
            total += Rat::ONE;
        } else {
            total += (t - r) / (d - r);
        }
    }
    total
}

/// Service received by task `T` up to time `t` in `sched`, normalized so
/// each subtask is one quantum of value delivered linearly over its actual
/// execution.
#[must_use]
pub fn received_allocation(sys: &TaskSystem, sched: &Schedule, task: TaskId, t: Time) -> Rat {
    let mut total = Rat::ZERO;
    for st in sys.task_subtask_refs(task) {
        let p = sched.placement(st);
        if t >= p.completion() {
            total += Rat::ONE;
        } else if t > p.start {
            total += (t - p.start) / p.cost;
        }
    }
    total
}

/// `lag(T, t) = ideal(T, t) − received(T, t)`.
#[must_use]
pub fn task_lag(sys: &TaskSystem, sched: &Schedule, task: TaskId, t: Time) -> Rat {
    ideal_allocation(sys, task, t) - received_allocation(sys, sched, task, t)
}

/// `LAG(τ, t) = Σ_T lag(T, t)`.
#[must_use]
pub fn total_lag(sys: &TaskSystem, sched: &Schedule, t: Time) -> Rat {
    sys.tasks()
        .iter()
        .map(|task| task_lag(sys, sched, task.id, t))
        .sum()
}

/// Maximum of `LAG(τ, t)` over all integral `t` in `[0, horizon]`.
#[must_use]
pub fn max_lag_over_slots(sys: &TaskSystem, sched: &Schedule, horizon: i64) -> Rat {
    (0..=horizon)
        .map(|t| total_lag(sys, sched, Rat::int(t)))
        .max()
        .unwrap_or(Rat::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId, TaskSystem};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn ideal_allocation_tracks_windows() {
        let sys = fig2_system();
        // Task D (wt 1/2): windows [0,2),[2,4),[4,6) ⇒ ideal at t = 3 is
        // 1 + 1/2.
        assert_eq!(
            ideal_allocation(&sys, TaskId(3), Rat::int(3)),
            Rat::new(3, 2)
        );
        // At the hyperperiod boundary every released subtask is fully due.
        assert_eq!(ideal_allocation(&sys, TaskId(3), Rat::int(6)), Rat::int(3));
        assert_eq!(ideal_allocation(&sys, TaskId(0), Rat::int(6)), Rat::int(1));
        // Before release: zero.
        assert_eq!(ideal_allocation(&sys, TaskId(3), Rat::ZERO), Rat::ZERO);
    }

    #[test]
    fn lag_zero_at_start_and_hyperperiod_under_pd2_sfq() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        assert_eq!(total_lag(&sys, &sched, Rat::ZERO), Rat::ZERO);
        // Full-utilization periodic system: LAG returns to 0 at the
        // hyperperiod.
        assert_eq!(total_lag(&sys, &sched, Rat::int(6)), Rat::ZERO);
    }

    #[test]
    fn lag_bounded_under_pd2_sfq() {
        let sys = release::periodic(&[(3, 4), (1, 2), (2, 3), (1, 12)], 24);
        let m = 3;
        let sched = simulate_sfq(&sys, m, &Pd2, &mut FullQuantum);
        // LAG can never exceed the processor count in a valid PD² SFQ
        // schedule (each slot serves M quanta whenever LAG is positive).
        let max = max_lag_over_slots(&sys, &sched, 24);
        assert!(max <= Rat::int(i64::from(m)));
        assert!(max >= Rat::ZERO);
    }

    #[test]
    fn per_task_lag_bounded_by_one_when_deadlines_met() {
        // If every subtask meets its deadline, each task's lag stays
        // below 1 at slot boundaries... in fact below its per-window
        // remainder; we assert the coarser bound.
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        for task in sys.tasks() {
            for t in 0..=6 {
                let lag = task_lag(&sys, &sched, task.id, Rat::int(t));
                assert!(lag <= Rat::ONE, "task {:?} lag {lag} at {t}", task.id);
            }
        }
    }

    #[test]
    fn dvq_lag_reflects_tardiness() {
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        // F misses by 1 − δ, so F's lag at its deadline (4) is positive.
        let lag_f = task_lag(&sys, &sched, TaskId(5), Rat::int(4));
        assert!(lag_f.is_positive());
        // And bounded by one quantum (Theorem 3 in lag terms).
        assert!(lag_f <= Rat::ONE);
    }
}
