//! Response-time analysis.
//!
//! The response time of a subtask is how long it takes to complete from
//! the moment it *could* first run — its eligibility time:
//! `resp(T_i) = completion(T_i) − e(T_i)`. Where tardiness measures
//! lateness against the Pfair contract, response time measures perceived
//! latency; the early-release study (`examples/early_release.rs`) uses it
//! to show how ER-Pfair under DVQ soaks up idle capacity — the effect the
//! paper credits as the "less-expensive and simpler alternative" to DFS's
//! auxiliary scheduler (§1).

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem};
use serde::{Deserialize, Serialize};

/// Response time of one subtask (from eligibility to completion).
#[must_use]
pub fn subtask_response(sys: &TaskSystem, sched: &Schedule, st: SubtaskRef) -> Rat {
    sched.completion(st) - Rat::int(sys.subtask(st).eligible)
}

/// Aggregate response-time statistics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Largest response time.
    pub max: Rat,
    /// Sum of response times.
    pub total: Rat,
    /// Number of subtasks.
    pub subtasks: usize,
}

impl ResponseStats {
    /// Mean response time.
    #[must_use]
    pub fn mean(&self) -> Rat {
        if self.subtasks == 0 {
            Rat::ZERO
        } else {
            self.total / Rat::int(self.subtasks as i64)
        }
    }
}

/// Computes [`ResponseStats`] over a schedule.
#[must_use]
pub fn response_stats(sys: &TaskSystem, sched: &Schedule) -> ResponseStats {
    let mut stats = ResponseStats {
        max: Rat::ZERO,
        total: Rat::ZERO,
        subtasks: sys.num_subtasks(),
    };
    for (st, _) in sys.iter_refs() {
        let r = subtask_response(sys, sched, st);
        stats.max = stats.max.max(r);
        stats.total += r;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FullQuantum, ScaledCost};
    use pfair_taskmodel::release;
    use pfair_taskmodel::release::{structured, ReleaseSpec};

    #[test]
    fn response_is_at_least_cost() {
        let sys = release::periodic(&[(1, 2), (1, 3)], 12);
        let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        for (st, _) in sys.iter_refs() {
            assert!(subtask_response(&sys, &sched, st) >= Rat::ONE);
        }
        let stats = response_stats(&sys, &sched);
        assert!(stats.mean() >= Rat::ONE);
        assert!(stats.max >= stats.mean());
    }

    #[test]
    fn dvq_improves_mean_response_with_yields() {
        let sys = release::periodic(&[(1, 2), (1, 2), (1, 3), (1, 6)], 12);
        let sfq = simulate_sfq(&sys, 2, &Pd2, &mut ScaledCost(Rat::new(1, 2)));
        let dvq = simulate_dvq(&sys, 2, &Pd2, &mut ScaledCost(Rat::new(1, 2)));
        let r_sfq = response_stats(&sys, &sfq);
        let r_dvq = response_stats(&sys, &dvq);
        assert!(r_dvq.mean() < r_sfq.mean());
    }

    #[test]
    fn early_release_increases_nominal_response_measure() {
        // Response is measured from eligibility, so early releasing (which
        // moves eligibility earlier) can only increase the *measured*
        // response while decreasing actual completion times — both facts
        // checked here.
        let plain = structured(&[ReleaseSpec::periodic("T", 1, 2)], 10).unwrap();
        let early = structured(
            &[ReleaseSpec {
                name: "T",
                e: 1,
                p: 2,
                delays: &[],
                drops: &[],
                early: 1,
            }],
            10,
        )
        .unwrap();
        let s_plain = simulate_dvq(&plain, 1, &Pd2, &mut ScaledCost(Rat::new(1, 2)));
        let s_early = simulate_dvq(&early, 1, &Pd2, &mut ScaledCost(Rat::new(1, 2)));
        // Completions never later with early release…
        for (a, b) in plain.iter_refs().zip(early.iter_refs()) {
            assert!(s_early.completion(b.0) <= s_plain.completion(a.0));
        }
        // …and makespan strictly improves on this instance.
        assert!(s_early.makespan() < s_plain.makespan());
    }
}
