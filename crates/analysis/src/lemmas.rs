//! Executable forms of the paper's structural lemmas.
//!
//! Lemma 1 (and its Property PB summary) is the load-bearing fact about
//! PD²-DVQ: *if a lower-priority subtask `T_i` is executing at an integral
//! time `t` while higher-priority subtasks `U` (eligible by `t − 1`, ready
//! by `t`) remain unscheduled past `t`, then*
//!
//! (a) *every `U_j ∈ U` has a predecessor that completes exactly at `t`
//!     (so `U_j` only became ready at `t`), and*
//!
//! (b) *at least `|U|` subtasks `V` with `e(V_k) = t` are scheduled at
//!     exactly `t`, each with priority at least that of every `U_j`.*
//!
//! [`check_lemma1`] scans a simulated DVQ schedule for every instance of
//! the lemma's premises and verifies both conclusions, returning any
//! violations. A correct DVQ simulator paired with a correct priority
//! implementation produces none — making this module a powerful internal
//! consistency check (exercised over adversarial random workloads in
//! `tests/lemmas.rs`).

use pfair_core::priority::PriorityOrder;
use pfair_numeric::{Rat, Time};
use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem};

/// A violation of Lemma 1 found in a schedule (should never occur).
#[derive(Clone, Debug)]
pub enum Lemma1Violation {
    /// Premises held but some blocked `U_j`'s predecessor did not complete
    /// exactly at `t` (conclusion (a) failed).
    PredecessorNotAtBoundary {
        /// The boundary.
        t: i64,
        /// The executing lower-priority subtask.
        executing: SubtaskRef,
        /// The blocked higher-priority subtask.
        blocked: SubtaskRef,
    },
    /// Premises held but fewer than `|U|` newly-eligible, scheduled-at-`t`,
    /// at-least-as-high-priority subtasks exist (conclusion (b) failed).
    MissingWitnessSet {
        /// The boundary.
        t: i64,
        /// The executing lower-priority subtask.
        executing: SubtaskRef,
        /// Size of the blocked set `U`.
        blocked: usize,
        /// Size of the witness set `V` actually found.
        witnesses: usize,
    },
}

/// Ready time of a subtask in a schedule: `max(e(T_i), pred completion)`.
fn ready_at(sys: &TaskSystem, sched: &Schedule, st: SubtaskRef) -> Time {
    let s = sys.subtask(st);
    let e = Rat::int(s.eligible);
    match s.pred {
        Some(p) => sched.completion(p).max(e),
        None => e,
    }
}

/// Scans integral boundaries `1..=horizon` of a DVQ schedule for the
/// premises of Lemma 1 and checks both conclusions. Returns all
/// violations (empty = the lemma holds on this schedule).
#[must_use]
pub fn check_lemma1(
    sys: &TaskSystem,
    sched: &Schedule,
    order: &dyn PriorityOrder,
    horizon: i64,
) -> Vec<Lemma1Violation> {
    let mut violations = Vec::new();
    for t in 1..=horizon {
        let t_rat = Rat::int(t);
        let t_prev = Rat::int(t - 1);
        // Executing at t: scheduled in (t−1, t].
        let executing: Vec<SubtaskRef> = sched
            .placements()
            .iter()
            .filter(|p| p.start > t_prev && p.start <= t_rat)
            .map(|p| p.st)
            .collect();
        for &ti in &executing {
            // U: eligible ≤ t−1, ready at or before t, higher priority
            // than T_i, scheduled strictly after t.
            let u: Vec<SubtaskRef> = sys
                .iter_refs()
                .filter(|&(uj, s)| {
                    // Eq. (12)/(13): e(U_j) ≤ t − 1.
                    s.eligible < t
                        && ready_at(sys, sched, uj) <= t_rat
                        && order.precedes(sys, uj, ti)
                        && sched.start(uj) > t_rat
                })
                .map(|(uj, _)| uj)
                .collect();
            if u.is_empty() {
                continue;
            }
            // Conclusion (a).
            for &uj in &u {
                let pred_ok = sys
                    .subtask(uj)
                    .pred
                    .is_some_and(|p| sched.completion(p) == t_rat);
                if !pred_ok {
                    violations.push(Lemma1Violation::PredecessorNotAtBoundary {
                        t,
                        executing: ti,
                        blocked: uj,
                    });
                }
            }
            // Conclusion (b): V = subtasks with e = t, scheduled at t,
            // each ⪯ every U_j.
            let v_count = sys
                .iter_refs()
                .filter(|&(vk, s)| {
                    s.eligible == t
                        && sched.start(vk) == t_rat
                        && u.iter().all(|&uj| order.precedes_eq(sys, vk, uj))
                })
                .count();
            if v_count < u.len() {
                violations.push(Lemma1Violation::MissingWitnessSet {
                    t,
                    executing: ti,
                    blocked: u.len(),
                    witnesses: v_count,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    #[test]
    fn lemma1_holds_on_fig2b() {
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let violations = check_lemma1(&sys, &sched, &Pd2, 8);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn lemma1_holds_with_full_costs() {
        let sys = release::periodic(&[(3, 4), (1, 2), (2, 3), (5, 12)], 24);
        let sched = simulate_dvq(&sys, 3, &Pd2, &mut FullQuantum);
        assert!(check_lemma1(&sys, &sched, &Pd2, 26).is_empty());
    }
}
