//! The job-level view of a task system and its schedules.
//!
//! The paper works at subtask granularity, but applications think in
//! *jobs*: "each task T releases a job every T.p time units" (§1), and
//! job `j` of a weight-`e/p` task consists of subtask indices
//! `(j−1)·e + 1 ..= j·e` with its deadline at the final subtask's
//! pseudo-deadline. This module exposes that mapping so callers can
//! report per-job completions and lateness without re-deriving the index
//! arithmetic.

use pfair_numeric::{Rat, Time};
use pfair_sim::Schedule;
use pfair_taskmodel::{window, SubtaskRef, TaskId, TaskSystem};

/// One job of a task: the (released) subtasks it comprises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Job {
    /// The owning task.
    pub task: TaskId,
    /// 1-based job number.
    pub number: u64,
    /// Refs of the job's *released* subtasks (GIS drops can thin a job;
    /// fully-dropped jobs are omitted by [`jobs_of`]).
    pub subtasks: Vec<SubtaskRef>,
    /// The job's deadline: the pseudo-deadline of its final subtask index,
    /// θ-adjusted via the job's last released subtask.
    pub deadline: i64,
}

impl Job {
    /// Completion time of the job in a schedule (when its last released
    /// subtask completes).
    #[must_use]
    pub fn completion(&self, sched: &Schedule) -> Time {
        self.subtasks
            .iter()
            .map(|&st| sched.completion(st))
            .max()
            .expect("jobs_of never yields empty jobs")
    }

    /// Job tardiness in a schedule.
    #[must_use]
    pub fn tardiness(&self, sched: &Schedule) -> Rat {
        (self.completion(sched) - Rat::int(self.deadline)).max(Rat::ZERO)
    }
}

/// The jobs of one task, in order. Jobs whose every subtask was dropped
/// (GIS) are omitted.
#[must_use]
pub fn jobs_of(sys: &TaskSystem, task: TaskId) -> Vec<Job> {
    let w = sys.task(task).weight;
    let e = w.e() as u64;
    let mut jobs: Vec<Job> = Vec::new();
    for st in sys.task_subtask_refs(task) {
        let s = sys.subtask(st);
        let number = (s.id.index - 1) / e + 1;
        if jobs.last().map(|j| j.number) != Some(number) {
            jobs.push(Job {
                task,
                number,
                subtasks: Vec::new(),
                deadline: 0, // refreshed below
            });
        }
        let job = jobs.last_mut().expect("just pushed or matched");
        job.subtasks.push(st);
        // The job deadline follows the offset of its most recent subtask
        // (IS delays within the job shift it right).
        job.deadline = s.theta + window::deadline(w, number * e);
    }
    jobs
}

/// All jobs of all tasks.
#[must_use]
pub fn all_jobs(sys: &TaskSystem) -> Vec<Job> {
    sys.tasks()
        .iter()
        .flat_map(|t| jobs_of(sys, t.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_sfq, FullQuantum};
    use pfair_taskmodel::release;

    #[test]
    fn periodic_jobs_partition_subtasks() {
        let sys = release::periodic(&[(3, 4)], 12); // 3 jobs × 3 subtasks
        let jobs = jobs_of(&sys, TaskId(0));
        assert_eq!(jobs.len(), 3);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(job.number, k as u64 + 1);
            assert_eq!(job.subtasks.len(), 3);
            assert_eq!(job.deadline, (k as i64 + 1) * 4);
        }
    }

    #[test]
    fn job_completion_and_tardiness() {
        let sys = release::periodic(&[(3, 4), (1, 4)], 8);
        let sched = simulate_sfq(&sys, 1, &Pd2, &mut FullQuantum);
        for job in all_jobs(&sys) {
            assert_eq!(job.tardiness(&sched), Rat::ZERO);
            assert!(job.completion(&sched) <= Rat::int(job.deadline));
        }
    }

    #[test]
    fn gis_thinned_jobs() {
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let spec = ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[],
            drops: &[2],
            early: 0,
        };
        let sys = structured(&[spec], 8).unwrap();
        let jobs = jobs_of(&sys, TaskId(0));
        assert_eq!(jobs[0].subtasks.len(), 2); // T_1 and T_3
        assert_eq!(jobs[0].deadline, 4);
        assert_eq!(jobs[1].subtasks.len(), 3);
    }

    #[test]
    fn is_delays_shift_job_deadlines() {
        use pfair_taskmodel::release::{structured, ReleaseSpec};
        let spec = ReleaseSpec {
            name: "T",
            e: 3,
            p: 4,
            delays: &[(3, 1)],
            drops: &[],
            early: 0,
        };
        let sys = structured(&[spec], 8).unwrap();
        let jobs = jobs_of(&sys, TaskId(0));
        // T_3 carries θ = 1 ⇒ job 1's deadline shifts to 5.
        assert_eq!(jobs[0].deadline, 5);
    }

    #[test]
    fn job_tardiness_never_exceeds_subtask_tardiness() {
        use pfair_sim::{simulate_dvq, FixedCosts};
        let sys = release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        );
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let max_sub = crate::tardiness::tardiness_stats(&sys, &sched).max;
        for job in all_jobs(&sys) {
            assert!(job.tardiness(&sched) <= max_sub);
        }
    }
}
