//! The slot-allocation view of a schedule — Eq. (1) of the paper.
//!
//! For SFQ schedules the paper defines a schedule as
//! `S : τ × N → {0, 1}` with `S(T, t) = 1` iff `T` is scheduled in slot
//! `t`, subject to `Σ_T S(T, t) ≤ M`. This module reconstructs that
//! matrix from a recorded [`Schedule`] and exposes the per-slot and
//! per-task sums classical Pfair arguments quantify over.
//!
//! For DVQ schedules, where the binary slot function is "not adequate"
//! (§3), [`slot_occupancy`] generalizes to the *fraction* of slot `t`
//! during which the task executes.

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::{TaskId, TaskSystem};

/// `S(T, t)` for slot-based schedules: `true` iff some subtask of `T`
/// commences in slot `t`.
#[must_use]
pub fn scheduled_in_slot(sys: &TaskSystem, sched: &Schedule, task: TaskId, t: i64) -> bool {
    sys.task_subtask_refs(task)
        .any(|st| sched.start(st).floor() == t && sched.start(st).is_integer())
}

/// The binary allocation matrix `S(T, t)` over slots `[0, horizon)`,
/// row-major by task.
///
/// Intended for SFQ schedules; commencements inside slots (DVQ) count
/// toward the slot containing them.
#[must_use]
pub fn allocation_matrix(sys: &TaskSystem, sched: &Schedule, horizon: i64) -> Vec<Vec<bool>> {
    let slots = usize::try_from(horizon.max(0)).expect("horizon fits usize");
    let mut matrix = vec![vec![false; slots]; sys.num_tasks()];
    for p in sched.placements() {
        let t = p.start.floor();
        if (0..horizon).contains(&t) {
            let task = sys.subtask(p.st).id.task;
            matrix[task.idx()][t as usize] = true;
        }
    }
    matrix
}

/// Fraction of slot `t` (`[t, t+1)`) during which task `T` executes —
/// the DVQ generalization of `S(T, t)`.
#[must_use]
pub fn slot_occupancy(sys: &TaskSystem, sched: &Schedule, task: TaskId, t: i64) -> Rat {
    let lo = Rat::int(t);
    let hi = Rat::int(t + 1);
    let mut total = Rat::ZERO;
    for st in sys.task_subtask_refs(task) {
        let p = sched.placement(st);
        let start = p.start.max(lo);
        let end = p.completion().min(hi);
        if end > start {
            total += end - start;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::release;

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn matrix_respects_processor_bound() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let m = allocation_matrix(&sys, &sched, 6);
        for t in 0..6 {
            let active: usize = m.iter().filter(|row| row[t]).count();
            assert!(active <= 2, "slot {t}: {active} > M");
        }
        // Full utilization + full costs: every slot fully used.
        for t in 0..6 {
            assert_eq!(m.iter().filter(|row| row[t]).count(), 2);
        }
    }

    #[test]
    fn per_task_allocations_match_weights_over_hyperperiod() {
        // Over one hyperperiod (6 slots), a weight-e/p task receives
        // 6·e/p quanta.
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let m = allocation_matrix(&sys, &sched, 6);
        for task in sys.tasks() {
            let quanta: usize = m[task.id.idx()].iter().filter(|&&b| b).count();
            let expected = (Rat::int(6) * task.weight.as_rat()).floor() as usize;
            assert_eq!(quanta, expected, "task {:?}", task.id);
        }
    }

    #[test]
    fn matrix_agrees_with_scheduled_in_slot_pointwise() {
        // `allocation_matrix` is the batch form of the paper's S(T, t);
        // the two definitions must agree cell for cell on SFQ schedules.
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let m = allocation_matrix(&sys, &sched, 6);
        for task in sys.tasks() {
            for t in 0..6 {
                assert_eq!(
                    m[task.id.idx()][usize::try_from(t).expect("small slot index")],
                    scheduled_in_slot(&sys, &sched, task.id, t),
                    "task {:?} slot {t}",
                    task.id
                );
            }
        }
    }

    #[test]
    fn no_intra_slot_parallelism() {
        // One task never occupies more than one full slot's worth of any
        // slot (Eq. (1)'s "parallelism is not allowed").
        let sys = fig2_system();
        let delta = Rat::new(1, 4);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(pfair_taskmodel::TaskId(0), 1, Rat::ONE - delta)
            .with(pfair_taskmodel::TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        for task in sys.tasks() {
            for t in 0..7 {
                let occ = slot_occupancy(&sys, &sched, task.id, t);
                assert!(occ <= Rat::ONE, "task {:?} slot {t}: {occ}", task.id);
            }
        }
    }

    #[test]
    fn occupancy_sums_to_cost() {
        let sys = release::periodic(&[(1, 2)], 4);
        let mut c = FixedCosts::new(Rat::new(3, 4));
        let sched = simulate_dvq(&sys, 1, &Pd2, &mut c);
        let total: Rat = (0..5)
            .map(|t| slot_occupancy(&sys, &sched, TaskId(0), t))
            .sum();
        // Two subtasks, 3/4 each.
        assert_eq!(total, Rat::new(3, 2));
    }
}
