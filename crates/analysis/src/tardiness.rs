//! Tardiness (Eq. (7)): `tardiness(T_i, S) = max(0, t − d(T_i))` where `t`
//! is the completion time of `T_i` in `S`.
//!
//! The tardiness of a task system under an algorithm is the maximum
//! subtask tardiness over any valid schedule; the paper's headline results
//! bound it by one quantum for PD^B under SFQ (Theorem 2) and PD² under
//! DVQ (Theorem 3).

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem};
use serde::{Deserialize, Serialize};

/// Tardiness of one subtask in a schedule.
#[must_use]
pub fn subtask_tardiness(sys: &TaskSystem, sched: &Schedule, st: SubtaskRef) -> Rat {
    let completion = sched.completion(st);
    let deadline = Rat::int(sys.subtask(st).deadline);
    (completion - deadline).max(Rat::ZERO)
}

/// Aggregate tardiness statistics for a schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TardinessStats {
    /// Maximum subtask tardiness.
    pub max: Rat,
    /// Sum of all subtask tardiness values.
    pub total: Rat,
    /// Number of released subtasks considered.
    pub subtasks: usize,
    /// Number of subtasks with strictly positive tardiness.
    pub misses: usize,
    /// The subtask attaining the maximum (`None` when no subtasks).
    pub worst: Option<SubtaskRef>,
}

impl TardinessStats {
    /// Mean tardiness over all subtasks (0 for an empty schedule).
    #[must_use]
    pub fn mean(&self) -> Rat {
        if self.subtasks == 0 {
            Rat::ZERO
        } else {
            self.total / Rat::int(self.subtasks as i64)
        }
    }

    /// Fraction of subtasks that missed their deadline, as `f64` (for
    /// reporting only).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.subtasks == 0 {
            0.0
        } else {
            self.misses as f64 / self.subtasks as f64
        }
    }
}

/// Computes [`TardinessStats`] over an entire schedule.
#[must_use]
pub fn tardiness_stats(sys: &TaskSystem, sched: &Schedule) -> TardinessStats {
    let mut stats = TardinessStats {
        max: Rat::ZERO,
        total: Rat::ZERO,
        subtasks: sys.num_subtasks(),
        misses: 0,
        worst: None,
    };
    for (st, _) in sys.iter_refs() {
        let t = subtask_tardiness(sys, sched, st);
        if t.is_positive() {
            stats.misses += 1;
            stats.total += t;
            if t > stats.max {
                stats.max = t;
                stats.worst = Some(st);
            }
        }
    }
    stats
}

/// Histogram of subtask tardiness: `buckets` equal-width bins over
/// `[0, 1]` quantum (values above 1 — impossible under the paper's bound
/// for PD²-DVQ/PD^B, but possible for ablated or overloaded runs — land
/// in the last bin). Bin 0 counts on-time subtasks.
#[must_use]
pub fn tardiness_histogram(sys: &TaskSystem, sched: &Schedule, buckets: usize) -> Vec<usize> {
    assert!(buckets >= 2, "need at least an on-time bin and a tardy bin");
    let mut hist = vec![0usize; buckets];
    let width = Rat::new(1, (buckets - 1) as i64);
    for (st, _) in sys.iter_refs() {
        let t = subtask_tardiness(sys, sched, st);
        let bin = if t.is_zero() {
            0
        } else {
            // Tardiness in (0, 1] maps to bins 1..buckets; anything beyond
            // the scale (including an out-of-usize ceiling) lands in the
            // last bin.
            usize::try_from((t / width).ceil()).map_or(buckets - 1, |bin| bin.min(buckets - 1))
        };
        hist[bin] += 1;
    }
    hist
}

/// Maximum *job* tardiness: subtasks are grouped into jobs of their task
/// (job `j` of a weight-`e/p` task consists of subtask indices
/// `(j−1)e+1 ..= je` and has deadline `θ-adjusted j·p`); a job completes
/// when its last released subtask completes.
///
/// Job deadlines coincide with the pseudo-deadline of each job's final
/// subtask, so bounded subtask tardiness gives the same bound on job
/// tardiness — this function exists to report the job-level view the
/// introduction frames (soft real-time guarantees for applications).
#[must_use]
pub fn max_job_tardiness(sys: &TaskSystem, sched: &Schedule) -> Rat {
    let mut max = Rat::ZERO;
    for task in sys.tasks() {
        let e = u64::try_from(task.weight.e()).expect("execution numerator is positive");
        for s in sys.task_subtasks(task.id) {
            // Last subtask of its job ⇔ index ≡ 0 (mod e).
            if s.id.index % e == 0 {
                let st = sys.find(s.id).expect("released subtask");
                let job_deadline = Rat::int(s.theta + (s.id.index / e) as i64 * task.weight.p());
                let t = (sched.completion(st) - job_deadline).max(Rat::ZERO);
                max = max.max(t);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FixedCosts, FullQuantum};
    use pfair_taskmodel::{release, TaskId};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn pd2_sfq_has_zero_tardiness() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let stats = tardiness_stats(&sys, &sched);
        assert_eq!(stats.max, Rat::ZERO);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.mean(), Rat::ZERO);
        assert_eq!(stats.worst, None);
        assert_eq!(max_job_tardiness(&sys, &sched), Rat::ZERO);
    }

    #[test]
    fn fig2b_dvq_tardiness_is_one_minus_delta() {
        let sys = fig2_system();
        let delta = Rat::new(1, 8);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let stats = tardiness_stats(&sys, &sched);
        assert_eq!(stats.max, Rat::ONE - delta);
        assert_eq!(stats.misses, 1);
        let worst = stats.worst.unwrap();
        assert_eq!(sys.subtask(worst).id.task, TaskId(5)); // F_2
        assert_eq!(sys.subtask(worst).id.index, 2);
        // Miss rate: 1 of 12 subtasks.
        assert!((stats.miss_rate() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_partition_the_subtasks() {
        let sys = fig2_system();
        let delta = Rat::new(1, 8);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let hist = tardiness_histogram(&sys, &sched, 5);
        assert_eq!(hist.iter().sum::<usize>(), sys.num_subtasks());
        assert_eq!(hist[0], sys.num_subtasks() - 1); // one miss
                                                     // Tardiness 7/8 lands in the last bin (width 1/4 × 4 bins).
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn job_tardiness_bounded_by_subtask_tardiness() {
        let sys = fig2_system();
        let delta = Rat::new(1, 8);
        let mut costs = FixedCosts::new(Rat::ONE)
            .with(TaskId(0), 1, Rat::ONE - delta)
            .with(TaskId(5), 1, Rat::ONE - delta);
        let sched = simulate_dvq(&sys, 2, &Pd2, &mut costs);
        let stats = tardiness_stats(&sys, &sched);
        assert!(max_job_tardiness(&sys, &sched) <= stats.max);
    }
}
