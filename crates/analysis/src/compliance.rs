//! The k-compliance construction of §3.3 (Theorem 2's proof machinery).
//!
//! To show PD^B's tardiness is at most one quantum, the paper right-shifts
//! every IS-window of the task system `τ^B` by one slot (yielding `τ`,
//! which PD² schedules with no misses) and then walks eligibility times
//! back down one subtask at a time, in the order (**rank**) in which PD^B
//! scheduled them:
//!
//! * `τ^k` is *k-compliant* to `τ^B` when windows are the shifted ones and
//!   exactly the `k` lowest-rank subtasks have their original eligibility
//!   times (the rest are shifted too);
//! * Lemma 6 shows a valid schedule exists for each `τ^k`, by induction.
//!
//! This module implements the constructions — [`ranks`] from a PD^B
//! schedule, [`k_compliant_system`] for any `k` — so tests can walk the
//! induction empirically: every `τ^k` is a feasible GIS system, and PD²
//! (optimal) schedules it with zero misses, which is the validity the
//! lemma needs at each step.

use pfair_sim::Schedule;
use pfair_taskmodel::{SubtaskRef, TaskSystem, TaskSystemBuilder};

/// The scheduling order of a (slot-based) schedule: subtasks sorted by
/// commencement time, ties by processor index (the order in which the
/// slot's scheduling decisions were made).
///
/// `result[i]` is the subtask of rank `i + 1` (ranks are 1-based in the
/// paper).
#[must_use]
pub fn ranks(sched: &Schedule) -> Vec<SubtaskRef> {
    // Placements are already sorted by (start, proc).
    sched.placements().iter().map(|p| p.st).collect()
}

/// Builds the task system `τ^k`: windows right-shifted by one slot
/// relative to `sys_b`, with the eligibility of the `k` lowest-rank
/// subtasks left *unshifted* (i.e. decreased back by one).
///
/// `rank_order` must be the output of [`ranks`] on a schedule of `sys_b`.
///
/// # Panics
/// Panics if `rank_order` does not cover `sys_b`'s subtasks, or `k`
/// exceeds their number.
#[must_use]
pub fn k_compliant_system(sys_b: &TaskSystem, rank_order: &[SubtaskRef], k: usize) -> TaskSystem {
    assert_eq!(
        rank_order.len(),
        sys_b.num_subtasks(),
        "rank order must cover every subtask"
    );
    assert!(k <= rank_order.len());
    let mut keep_eligibility = vec![false; sys_b.num_subtasks()];
    for &st in &rank_order[..k] {
        keep_eligibility[st.idx()] = true;
    }

    let mut b = TaskSystemBuilder::new();
    for task in sys_b.tasks() {
        let t = b.add_named_task(task.weight, task.name.clone());
        for st in sys_b.task_subtask_refs(task.id) {
            let s = sys_b.subtask(st);
            let eligible = if keep_eligibility[st.idx()] {
                s.eligible
            } else {
                s.eligible + 1
            };
            b.push(t, s.id.index, s.theta + 1, Some(eligible))
                .expect("shifted system satisfies the model constraints");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_numeric::Rat;
    use pfair_sim::{simulate_sfq, simulate_sfq_pdb, FullQuantum};
    use pfair_taskmodel::release;

    use crate::tardiness::tardiness_stats;
    use crate::validity::{check_structural, check_window_containment};

    fn fig6_system() -> TaskSystem {
        // Fig. 6: "three tasks of weight 1/6 each and three other tasks of
        // weight 1/2 each" — the Fig. 2 set.
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn ranks_cover_all_subtasks_in_schedule_order() {
        let sys = fig6_system();
        let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        let order = ranks(&sched);
        assert_eq!(order.len(), sys.num_subtasks());
        // Ranks are nondecreasing in start time.
        for w in order.windows(2) {
            assert!(sched.start(w[0]) <= sched.start(w[1]));
        }
    }

    #[test]
    fn zero_compliant_is_plain_right_shift() {
        let sys = fig6_system();
        let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        let order = ranks(&sched);
        let tau0 = k_compliant_system(&sys, &order, 0);
        let shifted = sys.shifted(1, 1);
        assert_eq!(tau0, shifted);
    }

    #[test]
    fn full_compliance_keeps_all_eligibilities() {
        let sys = fig6_system();
        let sched = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        let order = ranks(&sched);
        let n = sys.num_subtasks();
        let taun = k_compliant_system(&sys, &order, n);
        for (a, b) in sys.subtasks().iter().zip(taun.subtasks()) {
            assert_eq!(b.eligible, a.eligible);
            assert_eq!(b.release, a.release + 1);
            assert_eq!(b.deadline, a.deadline + 1);
        }
    }

    #[test]
    fn every_k_compliant_system_is_schedulable_by_pd2() {
        // The empirical walk of Lemma 6's induction: every τ^k is a
        // feasible GIS system, and PD² (optimal under SFQ) schedules it
        // with zero misses.
        let sys = fig6_system();
        let sched_b = simulate_sfq_pdb(&sys, 2, &mut FullQuantum);
        // Fig. 6(a): F_2 misses by exactly one quantum under PD^B.
        let stats_b = tardiness_stats(&sys, &sched_b);
        assert_eq!(stats_b.max, Rat::ONE);
        let order = ranks(&sched_b);
        for k in 0..=sys.num_subtasks() {
            let tau_k = k_compliant_system(&sys, &order, k);
            assert!(tau_k.is_feasible(2));
            let sched = simulate_sfq(&tau_k, 2, &Pd2, &mut FullQuantum);
            assert!(
                check_structural(&tau_k, &sched).is_empty(),
                "k = {k}: structural violation"
            );
            assert!(
                check_window_containment(&tau_k, &sched).is_empty(),
                "k = {k}: deadline miss"
            );
        }
    }
}
