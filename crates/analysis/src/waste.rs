//! Busy / idle / wasted-quantum accounting.
//!
//! The paper's §1 motivates the DVQ model with exactly this arithmetic:
//! "because WCET estimates are generally pessimistic, many task
//! invocations will execute for less than their WCETs. When a job
//! completes before the next quantum boundary, the rest of that quantum
//! (on the associated processor) is wasted." Under SFQ and the staggered
//! model the wasted tail of each quantum is unrecoverable; the DVQ model
//! reclaims it. Experiment E5 sweeps the mean actual cost and reports
//! these statistics for all three models.

use pfair_numeric::Rat;
use pfair_sim::Schedule;
use serde::{Deserialize, Serialize};

/// Aggregate processor-time accounting for one schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WasteStats {
    /// Total processor time actually executing subtasks (`Σ c(T_i)`).
    pub busy: Rat,
    /// Total processor time held by quanta but not executing
    /// (`Σ holds_until − completion`): the unreclaimed yield tails.
    pub wasted: Rat,
    /// Total processor time not held by any quantum, up to the makespan.
    pub idle: Rat,
    /// The makespan (latest completion).
    pub makespan: Rat,
    /// Number of processors.
    pub m: u32,
}

impl WasteStats {
    /// Fraction of total capacity (`m × makespan`) wasted inside quanta.
    #[must_use]
    pub fn wasted_fraction(&self) -> Rat {
        let cap = self.capacity();
        if cap.is_zero() {
            Rat::ZERO
        } else {
            self.wasted / cap
        }
    }

    /// Fraction of total capacity spent executing.
    #[must_use]
    pub fn busy_fraction(&self) -> Rat {
        let cap = self.capacity();
        if cap.is_zero() {
            Rat::ZERO
        } else {
            self.busy / cap
        }
    }

    /// Total capacity `m × makespan`.
    #[must_use]
    pub fn capacity(&self) -> Rat {
        Rat::int(i64::from(self.m)) * self.makespan
    }
}

/// Computes [`WasteStats`] for a schedule.
#[must_use]
pub fn waste_stats(sched: &Schedule) -> WasteStats {
    let mut busy = Rat::ZERO;
    let mut wasted = Rat::ZERO;
    let makespan = sched.makespan();
    for p in sched.placements() {
        busy += p.cost;
        // Clamp holds to the makespan so SFQ's final boundary hold does
        // not count as waste beyond the horizon of interest.
        let hold_end = p.holds_until.min(makespan).max(p.completion());
        wasted += hold_end - p.completion();
    }
    let capacity = Rat::int(i64::from(sched.m())) * makespan;
    let idle = capacity - busy - wasted;
    WasteStats {
        busy,
        wasted,
        idle,
        makespan,
        m: sched.m(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::Pd2;
    use pfair_sim::{simulate_dvq, simulate_sfq, FullQuantum, ScaledCost};
    use pfair_taskmodel::{release, TaskSystem};

    fn fig2_system() -> TaskSystem {
        release::periodic_named(
            &[
                ("A", 1, 6),
                ("B", 1, 6),
                ("C", 1, 6),
                ("D", 1, 2),
                ("E", 1, 2),
                ("F", 1, 2),
            ],
            6,
        )
    }

    #[test]
    fn full_costs_waste_nothing() {
        let sys = fig2_system();
        let sched = simulate_sfq(&sys, 2, &Pd2, &mut FullQuantum);
        let w = waste_stats(&sched);
        assert_eq!(w.wasted, Rat::ZERO);
        assert_eq!(w.busy, Rat::int(12)); // 12 subtasks × 1 quantum
        assert_eq!(w.makespan, Rat::int(6));
        assert_eq!(w.idle, Rat::ZERO); // full utilization, full costs
        assert_eq!(w.busy_fraction(), Rat::ONE);
    }

    #[test]
    fn sfq_wastes_yield_tails_dvq_reclaims() {
        let sys = fig2_system();
        let mut half = ScaledCost(Rat::new(1, 2));
        let sfq = waste_stats(&simulate_sfq(&sys, 2, &Pd2, &mut half.clone()));
        let dvq = waste_stats(&simulate_dvq(&sys, 2, &Pd2, &mut half));
        assert!(sfq.wasted.is_positive());
        assert_eq!(dvq.wasted, Rat::ZERO);
        // Same total work.
        assert_eq!(sfq.busy, dvq.busy);
        // DVQ finishes no later than SFQ.
        assert!(dvq.makespan <= sfq.makespan);
    }

    #[test]
    fn accounting_balances() {
        let sys = fig2_system();
        let mut c = ScaledCost(Rat::new(3, 4));
        for sched in [
            simulate_sfq(&sys, 2, &Pd2, &mut c.clone()),
            simulate_dvq(&sys, 2, &Pd2, &mut c),
        ] {
            let w = waste_stats(&sched);
            assert_eq!(w.busy + w.wasted + w.idle, w.capacity());
            assert!(!w.idle.is_negative());
        }
    }
}
