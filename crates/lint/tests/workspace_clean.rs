//! The whole workspace must lint clean — this is the same gate CI runs
//! via `cargo run -p pfair-lint`, wired into `cargo test` so a violation
//! fails locally before it fails in CI.

use std::path::Path;

use pfair_lint::{collect_workspace_files, lint_files};

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let files = collect_workspace_files(&root).expect("workspace sources are readable");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — collection is broken",
        files.len()
    );
    let diags = lint_files(&files);
    assert!(
        diags.is_empty(),
        "pfair-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
