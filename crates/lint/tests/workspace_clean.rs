//! The whole workspace must lint clean — this is the same gate CI runs
//! via `cargo run -p pfair-lint`, wired into `cargo test` so a violation
//! fails locally before it fails in CI. A second test mutates the real
//! DVQ engine in memory to prove emission-parity is load-bearing, not
//! vacuously green.

use std::path::Path;

use pfair_lint::{collect_workspace_files, lint_files};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let root = workspace_root();
    let files = collect_workspace_files(&root).expect("workspace sources are readable");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — collection is broken",
        files.len()
    );
    let diags = lint_files(&files);
    assert!(
        diags.is_empty(),
        "pfair-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Removing DVQ's terminal-event emission must fail emission-parity.
///
/// The real `dvq.rs` emits `QuantumEnd`/`DeadlineHit`/`DeadlineMiss`
/// through the shared `emit_end`/`flush_ends` helpers in `emit.rs`. We
/// rename those calls in DVQ's source (in memory only) so they resolve
/// to nothing — exactly what an engine refactor that forgot the
/// deadline bookkeeping would look like — and assert the linter notices
/// DVQ no longer reaches a `DeadlineMiss` construction while SFQ and
/// the staggered engine still do.
#[test]
fn removing_dvq_deadline_emission_fails_emission_parity() {
    let root = workspace_root();
    let mut files = collect_workspace_files(&root).expect("workspace sources are readable");
    let dvq = files
        .iter_mut()
        .find(|(path, _)| path.ends_with("crates/sim/src/dvq.rs"))
        .expect("the DVQ engine exists");
    assert!(
        dvq.1.contains("emit_end") && dvq.1.contains("flush_ends"),
        "dvq.rs emits terminal events via emit_end/flush_ends — update this \
         test if that plumbing moves"
    );
    dvq.1 = dvq
        .1
        .replace("emit_end", "emit_end_gone")
        .replace("flush_ends", "flush_ends_gone");
    let diags = lint_files(&files);
    let parity: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "emission-parity")
        .collect();
    assert!(
        parity
            .iter()
            .any(|d| d.message.contains("`dvq`") && d.message.contains("DeadlineMiss")),
        "severing DVQ's emit helpers must surface a `dvq` DeadlineMiss parity \
         finding; emission-parity reported: {parity:?}"
    );
}
