//! Fixture tests: every rule must fire on a planted violation with the
//! right `file:line`, stay silent out of scope, and honor (and police)
//! suppression comments. The v2 semantic rules (hot-path reachability,
//! emission parity, dead-pub) each get a fixture mini-crate with a
//! planted violation plus a scoping negative.

use pfair_lint::{lint_files, Diagnostic};

fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_files(&[(path.to_string(), src.to_string())])
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn no_float_time_fires_in_exact_crates_with_line() {
    let d = lint_one(
        "crates/sim/src/x.rs",
        "fn a() {}\nfn speed(x: f64) -> f64 {\n    x * 2.0\n}\n",
    );
    assert_eq!(rules_of(&d), ["no-float-time"]);
    assert_eq!(d[0].path, "crates/sim/src/x.rs");
    assert_eq!(d[0].line, 2);
}

#[test]
fn no_float_time_is_scoped_and_skips_strings_comments_tests() {
    // Report crates are out of scope.
    assert!(lint_one("crates/trace/src/x.rs", "fn f(x: f64) -> f64 { x }").is_empty());
    // Strings, comments and test modules never match.
    let src = "// f64 is mentioned here\nfn a() { let s = \"f64\"; }\n#[cfg(test)]\nmod tests {\n    fn approx() -> f64 { 0.5 }\n}\n";
    assert!(lint_one("crates/numeric/src/x.rs", src).is_empty());
}

#[test]
fn no_lossy_cast_fires_on_value_expressions_only() {
    let d = lint_one(
        "crates/analysis/src/x.rs",
        "fn f(lag: i128) -> i64 {\n    max_lag.num() as i64\n}\n",
    );
    assert_eq!(rules_of(&d), ["no-lossy-cast"]);
    assert_eq!(d[0].line, 2);
    // Index/counter casts are not value casts.
    assert!(lint_one(
        "crates/analysis/src/x.rs",
        "fn f(i: usize, n: u64) -> u32 {\n    (i + n as usize) as u32\n}\n"
    )
    .is_empty());
    // Widening to i128 is always fine.
    assert!(lint_one(
        "crates/analysis/src/x.rs",
        "fn f(deadline: i64) -> i128 { deadline as i128 }\n"
    )
    .is_empty());
}

#[test]
fn panic_policy_v2_fires_on_reachable_helpers_with_chain() {
    // `pick` is in no hot file-path heuristic's scope — it is hot because
    // the call graph reaches it from the `simulate_` entry point.
    let src = "fn simulate_fix(sys: &Sys) {\n    let order = prep(sys);\n    pick(sys, order);\n}\nfn prep(sys: &Sys) -> u32 { 0 }\nfn pick(sys: &Sys, order: u32) {\n    let a = sys.heap.peek().unwrap();\n    let b = sys.heap.peek().expect(\"\");\n    let c = sys.heap.peek().expect(\"heap nonempty: checked above\");\n    unreachable!()\n}\n";
    let d = lint_one("crates/conformance/src/x.rs", src);
    assert_eq!(
        rules_of(&d),
        ["panic-policy-v2", "panic-policy-v2", "panic-policy-v2"]
    );
    assert_eq!(
        d.iter().map(|d| d.line).collect::<Vec<_>>(),
        [7, 8, 10],
        "the diagnostic expect on line 9 is fine"
    );
    assert!(
        d[0].message.contains("reachable via simulate_fix → pick"),
        "chain witness missing: {}",
        d[0].message
    );
}

#[test]
fn panic_policy_v2_spares_unreachable_and_test_code() {
    // The same panic sites with NO hot entry point reaching them: cold
    // helper code may unwrap (it fails fast in analysis tooling).
    let cold = "fn pick(sys: &Sys) {\n    sys.heap.peek().unwrap();\n}\n";
    assert!(lint_one("crates/core/src/x.rs", cold).is_empty());
    // A `#[cfg(test)]` entry point does not make its callees hot.
    let test_entry = "#[cfg(test)]\nmod tests {\n    fn simulate_fix() {\n        pick();\n    }\n}\nfn pick() {\n    x.unwrap();\n}\n";
    assert!(lint_one("crates/sim/src/x.rs", test_entry).is_empty());
    // Hot entries in tests/ or shims/ don't produce findings there.
    let in_tests = "fn simulate_fix() {\n    x.unwrap();\n}\n";
    assert!(lint_one("tests/x.rs", in_tests).is_empty());
    assert!(lint_one("shims/fake/src/lib.rs", in_tests).is_empty());
}

#[test]
fn alloc_in_hot_loop_fires_inside_loops_only() {
    let src = "fn simulate_fix(items: &[u32]) {\n    let outside = Vec::new();\n    for i in items {\n        let v = Vec::new();\n        let s = i.to_string();\n    }\n    stage(items);\n}\nfn stage(items: &[u32]) {\n    while go() {\n        let label = format!(\"{items:?}\");\n    }\n}\n";
    let d = lint_one("crates/sim/src/x.rs", src);
    assert_eq!(
        rules_of(&d),
        [
            "alloc-in-hot-loop",
            "alloc-in-hot-loop",
            "alloc-in-hot-loop"
        ]
    );
    assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), [4, 5, 11]);
    assert!(
        d[2].message.contains("reachable via simulate_fix → stage"),
        "{}",
        d[2].message
    );
    // The same loop in a function no hot entry reaches is fine.
    let cold = "fn build_report(items: &[u32]) {\n    for i in items {\n        let v = Vec::new();\n    }\n}\n";
    assert!(lint_one("crates/sim/src/x.rs", cold).is_empty());
}

#[test]
fn emission_parity_flags_an_engine_missing_a_variant() {
    // Two engines; `dvq` never constructs `QuantumEnd`. The finding
    // anchors at the lagging engine's entry point and names the witness.
    let sfq = "fn simulate_sfq_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n    wrap_up(log);\n}\nfn wrap_up(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::QuantumEnd { at: 1 });\n}\n";
    let dvq = "fn simulate_dvq_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n}\n";
    let d = lint_files(&[
        ("crates/sim/src/sfq.rs".to_string(), sfq.to_string()),
        ("crates/sim/src/dvq.rs".to_string(), dvq.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["emission-parity"]);
    assert_eq!(d[0].path, "crates/sim/src/dvq.rs");
    assert_eq!(d[0].line, 1);
    assert!(
        d[0].message
            .contains("`dvq` never constructs `SchedEvent::QuantumEnd`"),
        "{}",
        d[0].message
    );
    assert!(
        d[0].message
            .contains("reachable via simulate_sfq_fix → wrap_up"),
        "witness chain missing: {}",
        d[0].message
    );
}

#[test]
fn emission_parity_honors_exemptions_and_flags_stale_ones() {
    // `Released` is exempt for the offline engines: only the online
    // engine constructing it is NOT a parity break…
    let sfq = "fn simulate_sfq_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n}\n";
    let dvq = "fn simulate_dvq_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n}\n";
    let online = "fn tick_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n    log.push(SchedEvent::Released { at: 0 });\n}\n";
    let clean = lint_files(&[
        ("crates/sim/src/sfq.rs".to_string(), sfq.to_string()),
        ("crates/sim/src/dvq.rs".to_string(), dvq.to_string()),
        ("crates/online/src/tick.rs".to_string(), online.to_string()),
    ]);
    assert!(clean.is_empty(), "{clean:?}");

    // …but an offline engine constructing its exempted variant is stale.
    let sfq_stale = "fn simulate_sfq_fix(log: &mut Vec<SchedEvent>) {\n    log.push(SchedEvent::Tick { at: 0 });\n    log.push(SchedEvent::Released { at: 0 });\n}\n";
    let d = lint_files(&[
        ("crates/sim/src/sfq.rs".to_string(), sfq_stale.to_string()),
        ("crates/sim/src/dvq.rs".to_string(), dvq.to_string()),
        ("crates/online/src/tick.rs".to_string(), online.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["emission-parity"]);
    assert_eq!(
        (d[0].path.as_str(), d[0].line),
        ("crates/sim/src/sfq.rs", 3)
    );
    assert!(d[0].message.contains("stale exemption"), "{}", d[0].message);
}

#[test]
fn emission_parity_requires_full_observer_matches() {
    let enum_decl = "pub enum SchedEvent {\n    Tick { at: i64 },\n    Idle { at: i64 },\n    Done { at: i64 },\n}\nfn touch(e: &SchedEvent) {}\n";
    // A wildcard arm swallows future variants silently.
    let wild = "fn digest(ev: &SchedEvent) {\n    match ev {\n        SchedEvent::Tick { .. } => {}\n        _ => {}\n    }\n}\n";
    let d = lint_files(&[
        ("crates/obs/src/event.rs".to_string(), enum_decl.to_string()),
        ("crates/obs/src/m.rs".to_string(), wild.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["emission-parity"]);
    assert_eq!((d[0].path.as_str(), d[0].line), ("crates/obs/src/m.rs", 2));
    assert!(d[0].message.contains("wildcard"), "{}", d[0].message);

    // A wildcard-free match missing a declared variant is flagged too.
    let partial = "fn digest(ev: &SchedEvent) {\n    match ev {\n        SchedEvent::Tick { .. } => {}\n        SchedEvent::Idle { .. } => {}\n    }\n}\n";
    let d = lint_files(&[
        ("crates/obs/src/event.rs".to_string(), enum_decl.to_string()),
        ("crates/obs/src/m.rs".to_string(), partial.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["emission-parity"]);
    assert!(d[0].message.contains("`Done`"), "{}", d[0].message);

    // Full enumeration is clean, and matches outside `crates/obs` (the
    // engines match events in tests, say) are out of scope.
    let full = "fn digest(ev: &SchedEvent) {\n    match ev {\n        SchedEvent::Tick { .. } => {}\n        SchedEvent::Idle { .. } => {}\n        SchedEvent::Done { .. } => {}\n    }\n}\n";
    assert!(lint_files(&[
        ("crates/obs/src/event.rs".to_string(), enum_decl.to_string()),
        ("crates/obs/src/m.rs".to_string(), full.to_string()),
    ])
    .is_empty());
    assert!(lint_files(&[
        ("crates/obs/src/event.rs".to_string(), enum_decl.to_string()),
        ("crates/sim/src/m.rs".to_string(), wild.to_string()),
    ])
    .is_empty());
}

#[test]
fn dead_pub_flags_unreferenced_crate_exports() {
    let lib = "pub fn used_entry() -> u64 { 7 }\npub fn dead_entry() -> u64 { 8 }\npub struct DeadMarker;\n";
    let user = "fn f() { let x = used_entry(); }\n";
    let d = lint_files(&[
        ("crates/analysis/src/lib.rs".to_string(), lib.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["dead-pub", "dead-pub"]);
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("dead_entry"));
    assert_eq!(d[1].line, 3);
    assert!(d[1].message.contains("DeadMarker"));
    // Usage from examples/ or tests/ keeps an export alive.
    let example_user = "fn main() { let x = dead_entry(); let m = DeadMarker; }\n";
    assert!(lint_files(&[
        ("crates/analysis/src/lib.rs".to_string(), lib.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
        ("examples/demo.rs".to_string(), example_user.to_string()),
    ])
    .is_empty());
    // `pub(crate)` is not an export; test-gated items are exempt.
    let scoped =
        "pub(crate) fn helper() {}\n#[cfg(test)]\npub fn test_support() {}\nfn f() { helper(); }\n";
    assert!(lint_one("crates/analysis/src/z.rs", scoped).is_empty());
}

#[test]
fn dead_pub_keeps_shim_drift_semantics_for_shims() {
    let shim = "pub fn used_helper() -> u64 { 7 }\npub fn dead_helper() -> u64 { 8 }\n";
    let user = "fn f() { let x = used_helper(); }\n";
    let d = lint_files(&[
        ("shims/fake/src/lib.rs".to_string(), shim.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["dead-pub"]);
    assert_eq!(d[0].path, "shims/fake/src/lib.rs");
    assert_eq!(d[0].line, 2);
    assert!(
        d[0].message
            .contains("shims may not grow surface beyond what the crates use"),
        "{}",
        d[0].message
    );
}

#[test]
fn dead_pub_sees_macros_and_skips_methods() {
    let shim = "#[macro_export]\nmacro_rules! dead_macro {\n    () => {};\n}\npub struct Thing;\nimpl Thing {\n    pub fn method_never_called_by_name(&self) {}\n}\n";
    let user = "fn f(t: Thing) {}\n";
    let d = lint_files(&[
        ("shims/fake/src/lib.rs".to_string(), shim.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
    ]);
    // Only the macro is dead: `Thing` is used, and methods ride their
    // type's usage.
    assert_eq!(rules_of(&d), ["dead-pub"]);
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("dead_macro"));
}

#[test]
fn misplaced_suppression_flags_doc_comment_allows() {
    let src = "/// pfair-lint: allow(no-float-time): this is rendered docs, not policy.\nfn speed(x: f64) -> f64 { x }\n";
    let d = lint_one("crates/sim/src/x.rs", src);
    assert_eq!(rules_of(&d), ["misplaced-suppression", "no-float-time"]);
    assert_eq!(d[0].line, 1);
    assert!(
        d[0].message.contains("inert") && d[0].message.contains("move it out of the docs"),
        "{}",
        d[0].message
    );
    // The same text in a plain comment suppresses the finding instead.
    let plain = "// pfair-lint: allow(no-float-time): sanctioned report-only exit.\nfn speed(x: f64) -> f64 { x }\n";
    assert!(lint_one("crates/sim/src/x.rs", plain).is_empty());
}

#[test]
fn suppression_with_justification_silences_a_finding() {
    let src = "// pfair-lint: allow(no-float-time): sanctioned report-only exit.\nfn to_float() -> f64 { 0.0 }\n";
    assert!(lint_one("crates/numeric/src/x.rs", src).is_empty());
    // Same-line form.
    let same = "fn to_float() -> f64 { 0.0 } // pfair-lint: allow(no-float-time): report-only.\n";
    assert!(lint_one("crates/numeric/src/x.rs", same).is_empty());
}

#[test]
fn suppression_without_justification_is_a_finding() {
    let src = "// pfair-lint: allow(no-float-time)\nfn to_float() -> f64 { 0.0 }\n";
    let d = lint_one("crates/numeric/src/x.rs", src);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("justification"));
}

#[test]
fn suppression_of_nothing_or_unknown_rule_is_a_finding() {
    let unused = "// pfair-lint: allow(no-float-time): this guards nothing.\nfn f() {}\n";
    let d = lint_one("crates/numeric/src/x.rs", unused);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("suppresses nothing"));

    let unknown = "// pfair-lint: allow(no-such-rule): whatever.\nfn f() {}\n";
    let d = lint_one("crates/numeric/src/x.rs", unknown);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("unknown rule"));

    // The retired v1 rule names are unknown now: stale allows surface.
    let retired = "// pfair-lint: allow(panic-policy): kept from v1.\nfn f() {}\n";
    let d = lint_one("crates/numeric/src/x.rs", retired);
    assert_eq!(rules_of(&d), ["suppression"]);
}

#[test]
fn suppression_does_not_leak_to_other_rules_or_lines() {
    let src = "// pfair-lint: allow(no-float-time): floats ok here.\nlet t = Instant::now();\n";
    let d = lint_one("crates/sim/src/x.rs", src);
    // The nondeterminism finding survives; the allow is also flagged as
    // suppressing nothing.
    assert_eq!(rules_of(&d), ["suppression", "no-nondeterminism"]);
}

#[test]
fn no_nondeterminism_fires_on_clocks_and_hash_iteration() {
    let src = "use std::collections::HashMap;\nfn f() {\n    let t = Instant::now();\n}\n";
    let d = lint_one("crates/conformance/src/x.rs", src);
    assert_eq!(rules_of(&d), ["no-nondeterminism", "no-nondeterminism"]);
    assert_eq!(d[0].line, 1);
    assert_eq!(d[1].line, 3);
    // BTreeMap is the sanctioned replacement.
    assert!(lint_one(
        "crates/sim/src/x.rs",
        "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) {}\n"
    )
    .is_empty());
    // Analysis/report crates are out of scope.
    assert!(lint_one("crates/analysis/src/x.rs", "use std::collections::HashMap;").is_empty());
}

#[test]
fn no_nondeterminism_covers_the_runtime_crate_including_thread_spawns() {
    // The runtime crate is deterministic-scope: wall clocks AND bare
    // thread spawns need a justified allow.
    let src = "fn run() {\n    crossbeam::scope(|s| {});\n    let t = Instant::now();\n}\n";
    let d = lint_one("crates/runtime/src/x.rs", src);
    assert_eq!(rules_of(&d), ["no-nondeterminism", "no-nondeterminism"]);
    assert_eq!(d[0].line, 2);
    assert!(
        d[0].message.contains("crossbeam::scope"),
        "thread-specific message missing: {}",
        d[0].message
    );
    assert_eq!(d[1].line, 3);
    // std thread entry points are flagged the same way.
    let d = lint_one(
        "crates/runtime/src/x.rs",
        "fn run() {\n    std::thread::spawn(|| {});\n}\n",
    );
    assert_eq!(rules_of(&d), ["no-nondeterminism"]);
    // A justified allow on the spawn site is the sanctioned escape hatch —
    // this is how `exec.rs` hosts the one real spawn while the
    // deterministic-mode dispatch core stays allow-free.
    assert!(lint_one(
        "crates/runtime/src/x.rs",
        "fn run() {\n    // pfair-lint: allow(no-nondeterminism): decisions come from the deterministic core; the race is replay-proven.\n    crossbeam::scope(|s| {});\n}\n",
    )
    .is_empty());
    // Thread spawns outside deterministic scope are not the lint's business.
    assert!(lint_one(
        "crates/trace/src/x.rs",
        "fn run() {\n    crossbeam::scope(|s| {});\n}\n"
    )
    .is_empty());
}

#[test]
fn observer_gating_requires_enabled_guard() {
    let ungated =
        "fn drive<O: Observer>(obs: &mut O) {\n    obs.on_event(&SchedEvent::Tick { at });\n}\n";
    let d = lint_one("crates/sim/src/x.rs", ungated);
    assert_eq!(rules_of(&d), ["observer-gating"]);
    assert_eq!(d[0].line, 2);

    let gated = "fn drive<O: Observer>(obs: &mut O) {\n    if O::ENABLED {\n        obs.on_event(&SchedEvent::Tick { at });\n    }\n}\n";
    assert!(lint_one("crates/sim/src/x.rs", gated).is_empty());

    let single_line =
        "fn drive<O: Observer>(obs: &mut O) {\n    if O::ENABLED { obs.on_event(&e); }\n}\n";
    assert!(lint_one("crates/online/src/x.rs", single_line).is_empty());

    // Forwarding inside an observer's own `fn on_event` is exempt.
    let forward = "impl<A: Observer> Observer for W<A> {\n    fn on_event(&mut self, e: &SchedEvent) {\n        self.0.on_event(e);\n    }\n}\n";
    assert!(lint_one("crates/obs/src/x.rs", forward).is_empty());
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let d = lint_one("crates/sim/src/x.rs", "fn f(x: f64) {}\n");
    assert_eq!(d.len(), 1);
    let shown = d[0].to_string();
    assert!(
        shown.starts_with("crates/sim/src/x.rs:1: [no-float-time]"),
        "{shown}"
    );
}
