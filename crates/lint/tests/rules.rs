//! Fixture tests: every rule must fire on a planted violation with the
//! right `file:line`, stay silent out of scope, and honor (and police)
//! suppression comments.

use pfair_lint::{lint_files, Diagnostic};

fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_files(&[(path.to_string(), src.to_string())])
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn no_float_time_fires_in_exact_crates_with_line() {
    let d = lint_one(
        "crates/sim/src/x.rs",
        "fn a() {}\npub fn speed(x: f64) -> f64 {\n    x * 2.0\n}\n",
    );
    assert_eq!(rules_of(&d), ["no-float-time"]);
    assert_eq!(d[0].path, "crates/sim/src/x.rs");
    assert_eq!(d[0].line, 2);
}

#[test]
fn no_float_time_is_scoped_and_skips_strings_comments_tests() {
    // Report crates are out of scope.
    assert!(lint_one("crates/trace/src/x.rs", "pub fn f(x: f64) -> f64 { x }").is_empty());
    // Strings, comments and test modules never match.
    let src = "// f64 is mentioned here\nfn a() { let s = \"f64\"; }\n#[cfg(test)]\nmod tests {\n    fn approx() -> f64 { 0.5 }\n}\n";
    assert!(lint_one("crates/numeric/src/x.rs", src).is_empty());
}

#[test]
fn no_lossy_cast_fires_on_value_expressions_only() {
    let d = lint_one(
        "crates/analysis/src/x.rs",
        "fn f(lag: i128) -> i64 {\n    max_lag.num() as i64\n}\n",
    );
    assert_eq!(rules_of(&d), ["no-lossy-cast"]);
    assert_eq!(d[0].line, 2);
    // Index/counter casts are not value casts.
    assert!(lint_one(
        "crates/analysis/src/x.rs",
        "fn f(i: usize, n: u64) -> u32 {\n    (i + n as usize) as u32\n}\n"
    )
    .is_empty());
    // Widening to i128 is always fine.
    assert!(lint_one(
        "crates/analysis/src/x.rs",
        "fn f(deadline: i64) -> i128 { deadline as i128 }\n"
    )
    .is_empty());
}

#[test]
fn panic_policy_fires_in_hot_paths() {
    let src = "fn pick() {\n    let a = heap.peek().unwrap();\n    let b = heap.peek().expect(\"\");\n    let c = heap.peek().expect(\"heap nonempty: checked above\");\n    unreachable!()\n}\n";
    let d = lint_one("crates/core/src/x.rs", src);
    assert_eq!(
        rules_of(&d),
        ["panic-policy", "panic-policy", "panic-policy"]
    );
    assert_eq!(
        d.iter().map(|d| d.line).collect::<Vec<_>>(),
        [2, 3, 5],
        "the diagnostic expect on line 4 is fine"
    );
    // Out of hot-path scope: workload generators may unwrap.
    assert!(lint_one("crates/workload/src/x.rs", "fn f() { x.unwrap(); }").is_empty());
    // Messages make panics acceptable.
    assert!(lint_one(
        "crates/sim/src/x.rs",
        "fn f() { unreachable!(\"slot {t} exhausted\") }"
    )
    .is_empty());
}

#[test]
fn no_nondeterminism_fires_on_clocks_and_hash_iteration() {
    let src = "use std::collections::HashMap;\nfn f() {\n    let t = Instant::now();\n}\n";
    let d = lint_one("crates/conformance/src/x.rs", src);
    assert_eq!(rules_of(&d), ["no-nondeterminism", "no-nondeterminism"]);
    assert_eq!(d[0].line, 1);
    assert_eq!(d[1].line, 3);
    // BTreeMap is the sanctioned replacement.
    assert!(lint_one(
        "crates/sim/src/x.rs",
        "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) {}\n"
    )
    .is_empty());
    // Analysis/report crates are out of scope.
    assert!(lint_one("crates/analysis/src/x.rs", "use std::collections::HashMap;").is_empty());
}

#[test]
fn observer_gating_requires_enabled_guard() {
    let ungated =
        "fn drive<O: Observer>(obs: &mut O) {\n    obs.on_event(&SchedEvent::Tick { at });\n}\n";
    let d = lint_one("crates/sim/src/x.rs", ungated);
    assert_eq!(rules_of(&d), ["observer-gating"]);
    assert_eq!(d[0].line, 2);

    let gated = "fn drive<O: Observer>(obs: &mut O) {\n    if O::ENABLED {\n        obs.on_event(&SchedEvent::Tick { at });\n    }\n}\n";
    assert!(lint_one("crates/sim/src/x.rs", gated).is_empty());

    let single_line =
        "fn drive<O: Observer>(obs: &mut O) {\n    if O::ENABLED { obs.on_event(&e); }\n}\n";
    assert!(lint_one("crates/online/src/x.rs", single_line).is_empty());

    // Forwarding inside an observer's own `fn on_event` is exempt.
    let forward = "impl<A: Observer> Observer for W<A> {\n    fn on_event(&mut self, e: &SchedEvent) {\n        self.0.on_event(e);\n    }\n}\n";
    assert!(lint_one("crates/obs/src/x.rs", forward).is_empty());
}

#[test]
fn shim_drift_flags_unused_surface() {
    let shim = "pub fn used_helper() -> u64 { 7 }\npub fn dead_helper() -> u64 { 8 }\n";
    let user = "fn f() { let x = used_helper(); }\n";
    let d = lint_files(&[
        ("shims/fake/src/lib.rs".to_string(), shim.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
    ]);
    assert_eq!(rules_of(&d), ["shim-drift"]);
    assert_eq!(d[0].path, "shims/fake/src/lib.rs");
    assert_eq!(d[0].line, 2);
    assert!(d[0].message.contains("dead_helper"));
}

#[test]
fn shim_drift_sees_macros_and_skips_methods() {
    let shim = "#[macro_export]\nmacro_rules! dead_macro {\n    () => {};\n}\npub struct Thing;\nimpl Thing {\n    pub fn method_never_called_by_name(&self) {}\n}\n";
    let user = "fn f(t: Thing) {}\n";
    let d = lint_files(&[
        ("shims/fake/src/lib.rs".to_string(), shim.to_string()),
        ("crates/sim/src/y.rs".to_string(), user.to_string()),
    ]);
    // Only the macro is dead: `Thing` is used, and methods ride their
    // type's usage.
    assert_eq!(rules_of(&d), ["shim-drift"]);
    assert!(d[0].message.contains("dead_macro"));
}

#[test]
fn suppression_with_justification_silences_a_finding() {
    let src = "// pfair-lint: allow(no-float-time): sanctioned report-only exit.\npub fn to_float() -> f64 { 0.0 }\n";
    assert!(lint_one("crates/numeric/src/x.rs", src).is_empty());
    // Same-line form.
    let same =
        "pub fn to_float() -> f64 { 0.0 } // pfair-lint: allow(no-float-time): report-only.\n";
    assert!(lint_one("crates/numeric/src/x.rs", same).is_empty());
}

#[test]
fn suppression_without_justification_is_a_finding() {
    let src = "// pfair-lint: allow(no-float-time)\npub fn to_float() -> f64 { 0.0 }\n";
    let d = lint_one("crates/numeric/src/x.rs", src);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("justification"));
}

#[test]
fn suppression_of_nothing_or_unknown_rule_is_a_finding() {
    let unused = "// pfair-lint: allow(no-float-time): this guards nothing.\nfn f() {}\n";
    let d = lint_one("crates/numeric/src/x.rs", unused);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("suppresses nothing"));

    let unknown = "// pfair-lint: allow(no-such-rule): whatever.\nfn f() {}\n";
    let d = lint_one("crates/numeric/src/x.rs", unknown);
    assert_eq!(rules_of(&d), ["suppression"]);
    assert!(d[0].message.contains("unknown rule"));
}

#[test]
fn suppression_does_not_leak_to_other_rules_or_lines() {
    let src = "// pfair-lint: allow(no-float-time): floats ok here.\nlet t = Instant::now();\n";
    let d = lint_one("crates/sim/src/x.rs", src);
    // The nondeterminism finding survives; the allow is also flagged as
    // suppressing nothing.
    assert_eq!(rules_of(&d), ["suppression", "no-nondeterminism"]);
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let d = lint_one("crates/sim/src/x.rs", "pub fn f(x: f64) {}\n");
    assert_eq!(d.len(), 1);
    let shown = d[0].to_string();
    assert!(
        shown.starts_with("crates/sim/src/x.rs:1: [no-float-time]"),
        "{shown}"
    );
}
